//! Property tests for [`StreamingVerifier`] checkpoint/restore — the
//! sealed state replicas persist through the Vfs seam between catch-up
//! batches. Two edge cases matter beyond the unit tests' fixed cuts:
//!
//! * **Restore-then-checkpoint idempotence**: sealing, restoring, and
//!   sealing again must yield a byte-identical blob at *any* cut point,
//!   or a replica that power-cycles twice in a row would drift from the
//!   state it proved.
//! * **Empty-stream offset-0 resume**: a checkpoint sealed before any
//!   record arrived must restore to a verifier whose proof-of-position
//!   is the empty rolling digest — resuming "from zero" is the same as
//!   starting fresh, not an error.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tep_core::hashing::HashingStrategy;
use tep_core::provenance::collect;
use tep_core::streaming::RecordStreamDigest;
use tep_core::verify::StreamingVerifier;
use tep_core::{ProvenanceRecord, ProvenanceTracker, TrackerConfig};
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{CertificateAuthority, KeyDirectory, Participant, ParticipantId};
use tep_model::{ObjectId, Value};
use tep_storage::ProvenanceDb;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

struct World {
    keys: KeyDirectory,
    signer: Participant,
}

static WORLD: OnceLock<World> = OnceLock::new();

fn world() -> &'static World {
    WORLD.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x0C11E7);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let signer = ca.enroll(ParticipantId(1), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(signer.certificate().clone()).unwrap();
        World { keys, signer }
    })
}

/// One honest linear chain over `values`, with its object hash.
fn chain(values: &[i64]) -> (Vec<ProvenanceRecord>, Vec<u8>, ObjectId) {
    let w = world();
    let db = Arc::new(ProvenanceDb::in_memory());
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            strategy: HashingStrategy::Economical,
        },
        Arc::clone(&db),
    );
    let (oid, _) = tracker
        .insert(&w.signer, Value::Int(values[0]), None)
        .unwrap();
    for &v in &values[1..] {
        tracker.update(&w.signer, oid, Value::Int(v)).unwrap();
    }
    let prov = collect(&db, oid).unwrap();
    let hash = tracker.object_hash(oid).unwrap();
    (prov.records, hash, oid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn restore_then_checkpoint_is_byte_identical(
        values in proptest::collection::vec(-1000i64..1000, 1..8),
        cut_frac in 0usize..=100,
    ) {
        let w = world();
        let (records, _hash, oid) = chain(&values);
        let cut = (cut_frac * records.len() / 100).min(records.len());

        let mut sv = StreamingVerifier::new(&w.keys, ALG, oid);
        for r in &records[..cut] {
            prop_assert_eq!(sv.push_record(r), 0);
        }
        let blob1 = sv.checkpoint().expect("clean verifier checkpoints");
        let restored = StreamingVerifier::restore(&w.keys, &blob1).unwrap();
        prop_assert_eq!(restored.records_checked(), cut);
        prop_assert_eq!(restored.stream_digest(), sv.stream_digest());
        let blob2 = restored.checkpoint().expect("restored verifier re-checkpoints");
        prop_assert_eq!(blob1, blob2);
    }

    #[test]
    fn checkpoint_cut_resume_matches_uncut_run(
        values in proptest::collection::vec(-1000i64..1000, 1..8),
        cut_frac in 0usize..=100,
    ) {
        let w = world();
        let (records, hash, oid) = chain(&values);
        let cut = (cut_frac * records.len() / 100).min(records.len());

        let mut uncut = StreamingVerifier::new(&w.keys, ALG, oid);
        for r in &records {
            uncut.push_record(r);
        }

        let mut sv = StreamingVerifier::new(&w.keys, ALG, oid);
        for r in &records[..cut] {
            sv.push_record(r);
        }
        let blob = sv.checkpoint().expect("clean verifier checkpoints");
        let mut resumed = StreamingVerifier::restore(&w.keys, &blob).unwrap();
        for r in &records[cut..] {
            resumed.push_record(r);
        }
        prop_assert_eq!(resumed.records_checked(), records.len());
        prop_assert_eq!(resumed.stream_digest(), uncut.stream_digest());

        let cut_verdict = resumed.finish(&hash);
        prop_assert!(cut_verdict.verified(), "{:?}", cut_verdict.issues);
        let uncut_verdict = uncut.finish(&hash);
        prop_assert!(uncut_verdict.verified());
    }

    #[test]
    fn empty_stream_checkpoint_resumes_from_offset_zero(
        values in proptest::collection::vec(-1000i64..1000, 1..8),
    ) {
        let w = world();
        let (records, hash, oid) = chain(&values);

        let fresh = StreamingVerifier::new(&w.keys, ALG, oid);
        prop_assert_eq!(fresh.records_checked(), 0);
        let empty_digest = RecordStreamDigest::new(ALG, oid);
        prop_assert_eq!(
            fresh.stream_digest(),
            empty_digest.current(),
            "offset-0 proof-of-position must be the empty rolling digest"
        );
        let blob = fresh.checkpoint().expect("an empty verifier checkpoints");
        let mut resumed = StreamingVerifier::restore(&w.keys, &blob).unwrap();
        prop_assert_eq!(resumed.records_checked(), 0);
        for r in &records {
            prop_assert_eq!(resumed.push_record(r), 0);
        }
        let verdict = resumed.finish(&hash);
        prop_assert!(verdict.verified(), "{:?}", verdict.issues);
    }
}
