//! Omission torture tests for authenticated denial: property tests over
//! random shard populations that pin the three claims DESIGN.md §13
//! makes about non-membership and completeness proofs:
//!
//! * **Honest denials verify**: for any shard population, every absent ID
//!   admits a gap proof that verifies against the signed root — "no such
//!   entry" is never unfalsifiable.
//! * **Present IDs admit no denial**: `DenialProof::prove` refuses them,
//!   and a forged denial built from the neighbouring honest witnesses is
//!   rejected with a typed fault.
//! * **Every single-bit mutation is caught and attributed**: flipping any
//!   one bit of an encoded `SignedDenial`/`SignedRange` either fails to
//!   decode, decodes to a different denial target (the client's
//!   anti-replay echo check), or fails verification — and the verifier
//!   attributes the failure to the right [`EvidenceKind`]
//!   (`forged_denial` / `incomplete_response`), never to a generic error
//!   and never silently.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tep_core::denial::{
    DenialFault, DenialProof, RangeProof, SignedDenial, SignedRange, SignedRoot,
};
use tep_core::merkle::ShardTree;
use tep_core::verify::{EvidenceKind, TamperEvidence, Verifier};
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{CertificateAuthority, KeyDirectory, Participant, ParticipantId};
use tep_model::ObjectId;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

struct World {
    keys: KeyDirectory,
    signer: Participant,
}

static WORLD: OnceLock<World> = OnceLock::new();

fn world() -> &'static World {
    WORLD.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xDE_11A1);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let signer = ca.enroll(ParticipantId(1), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(signer.certificate().clone()).unwrap();
        World { keys, signer }
    })
}

/// Builds a shard over the given IDs (deduplicated, any order).
fn tree_of(ids: &[u64]) -> ShardTree {
    let mut sorted: Vec<u64> = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    ShardTree::build(
        ALG,
        sorted
            .into_iter()
            .map(|i| (ObjectId(i), ALG.digest(&i.to_be_bytes())))
            .collect(),
    )
}

/// Population strategy: a set of even IDs, so every odd ID is a
/// guaranteed-absent denial target in the same numeric neighbourhood.
fn even_ids() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..500, 0..24).prop_map(|v| v.into_iter().map(|i| i * 2).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any absent ID over any population yields a verifying gap proof,
    /// and the full signed bundle survives an encode/decode round trip.
    #[test]
    fn absent_ids_yield_verifying_denials(ids in even_ids(), target in 0u64..500) {
        let w = world();
        let tree = tree_of(&ids);
        let absent = ObjectId(target * 2 + 1);
        let proof = DenialProof::prove(&tree, absent).expect("odd IDs are absent");
        prop_assert_eq!(proof.check(ALG, &tree.root(), tree.leaf_count()), Ok(()));

        let denial = SignedDenial {
            root: SignedRoot::sign(&tree, tree.leaf_count(), &w.signer).unwrap(),
            proof,
        };
        prop_assert_eq!(denial.check(&w.keys), Ok(()));
        let rt = SignedDenial::from_bytes(&denial.to_bytes()).unwrap();
        prop_assert_eq!(rt, denial.clone());
        let verifier = Verifier::new(&w.keys, ALG);
        prop_assert!(verifier.verify_denial(&denial).verified());
    }

    /// Present IDs admit no denial: `prove` refuses them, and a denial
    /// forged from the honest witnesses around a neighbouring gap is
    /// rejected with a typed fault and attributed as `ForgedDenial`.
    #[test]
    fn present_ids_admit_no_denial(ids in even_ids(), pick in 0usize..4096) {
        prop_assume!(!ids.is_empty());
        let w = world();
        let tree = tree_of(&ids);
        let present = ObjectId(ids[pick % ids.len()]);
        prop_assert!(DenialProof::prove(&tree, present).is_none());

        // Forge: take the honest proof for the odd neighbour and relabel
        // its target as the present ID.
        let mut forged = DenialProof::prove(&tree, ObjectId(present.raw() + 1))
            .expect("odd neighbour is absent");
        forged.absent = present;
        let fault = forged
            .check(ALG, &tree.root(), tree.leaf_count())
            .expect_err("present ID must not verify as absent");
        prop_assert!(
            matches!(fault, DenialFault::OrderViolation | DenialFault::MissingWitness),
            "unexpected fault {fault:?}"
        );
        let denial = SignedDenial {
            root: SignedRoot::sign(&tree, tree.leaf_count(), &w.signer).unwrap(),
            proof: forged,
        };
        let verifier = Verifier::new(&w.keys, ALG);
        let v = verifier.verify_denial(&denial);
        prop_assert_eq!(
            v.issues,
            vec![TamperEvidence::ForgedDenial { oid: present }]
        );
    }

    /// Flipping any single bit of an encoded `SignedDenial` is caught:
    /// the mutation fails to decode, or decodes to a different target
    /// (anti-replay echo check), or fails verification attributed as
    /// `ForgedDenial` — it never passes off as the honest denial.
    #[test]
    fn every_denial_bit_flip_is_caught(ids in even_ids(), target in 0u64..500) {
        let w = world();
        let tree = tree_of(&ids);
        let absent = ObjectId(target * 2 + 1);
        let denial = SignedDenial {
            root: SignedRoot::sign(&tree, tree.leaf_count(), &w.signer).unwrap(),
            proof: DenialProof::prove(&tree, absent).unwrap(),
        };
        let honest = denial.to_bytes();
        let verifier = Verifier::new(&w.keys, ALG);
        for bit in 0..honest.len() * 8 {
            let mut bytes = honest.clone();
            bytes[bit / 8] ^= 1 << (bit % 8);
            let Ok(mutated) = SignedDenial::from_bytes(&bytes) else {
                continue; // malformed: the client rejects it undecoded
            };
            prop_assert!(mutated != denial, "bit {bit} round-trips");
            if mutated.proof.absent != absent {
                continue; // replayed denial of a different ID: echo check
            }
            let v = verifier.verify_denial(&mutated);
            prop_assert_eq!(
                v.issues.clone(),
                vec![TamperEvidence::ForgedDenial { oid: absent }],
                "bit {} escaped attribution", bit
            );
        }
    }

    /// Honest range proofs return exactly the sorted members in bounds;
    /// flipping any single bit of the encoded `SignedRange` is caught:
    /// decode failure, bounds-echo mismatch, proof failure
    /// (`ForgedDenial`), or a proven-member set that exposes the served
    /// answer as incomplete/padded.
    #[test]
    fn every_range_bit_flip_is_caught(ids in even_ids(), lo in 0u64..500, span in 0u64..40) {
        let w = world();
        let tree = tree_of(&ids);
        let (lo, hi) = (ObjectId(lo), ObjectId(lo + span));
        let proof = RangeProof::prove(&tree, lo, hi);
        let range = SignedRange {
            root: SignedRoot::sign(&tree, tree.leaf_count(), &w.signer).unwrap(),
            proof,
        };
        let answered = range.check(&w.keys).expect("honest range verifies");
        let mut expect: Vec<ObjectId> = {
            let mut v: Vec<u64> = ids.to_vec();
            v.sort_unstable();
            v.dedup();
            v.into_iter()
                .filter(|&i| lo.raw() <= i && i <= hi.raw())
                .map(ObjectId)
                .collect()
        };
        expect.sort_unstable_by_key(|o| o.raw());
        prop_assert_eq!(&answered, &expect);
        let verifier = Verifier::new(&w.keys, ALG);
        prop_assert!(verifier.verify_range(&range, &answered).verified());

        let honest = range.to_bytes();
        for bit in 0..honest.len() * 8 {
            let mut bytes = honest.clone();
            bytes[bit / 8] ^= 1 << (bit % 8);
            let Ok(mutated) = SignedRange::from_bytes(&bytes) else {
                continue; // malformed: rejected undecoded
            };
            prop_assert!(mutated != range, "bit {bit} round-trips");
            if mutated.proof.lo != lo || mutated.proof.hi != hi {
                continue; // bounds-echo mismatch: the client rejects it
            }
            let v = verifier.verify_range(&mutated, &answered);
            prop_assert!(!v.verified(), "bit {} escaped verification", bit);
            prop_assert!(
                v.issues.iter().all(|i| matches!(
                    i,
                    TamperEvidence::ForgedDenial { .. }
                        | TamperEvidence::IncompleteResponse { .. }
                )),
                "bit {} misattributed: {:?}", bit, v.issues
            );
        }
    }

    /// A range answer that silently drops a proven member is attributed
    /// as `IncompleteResponse` for exactly the queried bounds, and one
    /// padded with an unproven extra is `ForgedDenial` for that extra.
    #[test]
    fn withheld_and_padded_answers_are_attributed(
        ids in even_ids(),
        drop in 0usize..4096,
    ) {
        prop_assume!(!ids.is_empty());
        let w = world();
        let tree = tree_of(&ids);
        let (lo, hi) = (ObjectId(0), ObjectId(1000));
        let range = SignedRange {
            root: SignedRoot::sign(&tree, tree.leaf_count(), &w.signer).unwrap(),
            proof: RangeProof::prove(&tree, lo, hi),
        };
        let full = range.check(&w.keys).unwrap();
        prop_assume!(!full.is_empty());
        let verifier = Verifier::new(&w.keys, ALG);

        let withheld = full[drop % full.len()];
        let served: Vec<ObjectId> = full.iter().copied().filter(|&o| o != withheld).collect();
        let v = verifier.verify_range(&range, &served);
        prop_assert_eq!(
            v.issues,
            vec![TamperEvidence::IncompleteResponse { lo, hi }]
        );

        let extra = ObjectId(1001);
        let mut padded = full.clone();
        padded.push(extra);
        let v = verifier.verify_range(&range, &padded);
        prop_assert_eq!(v.issues, vec![TamperEvidence::ForgedDenial { oid: extra }]);
    }
}

/// Attribution lands in the observability registry under the exact
/// per-kind counter names the conformance matrix accounts against.
#[test]
fn attributed_evidence_reaches_per_kind_counters() {
    let w = world();
    let registry = tep_obs::Registry::new();
    let mut verifier = Verifier::new(&w.keys, ALG);
    verifier.attach_obs(&registry);

    let tree = tree_of(&[2, 4, 6, 8]);
    let root = SignedRoot::sign(&tree, 4, &w.signer).unwrap();

    // Forged denial: target a present ID with the neighbouring witnesses.
    let mut proof = DenialProof::prove(&tree, ObjectId(5)).unwrap();
    proof.absent = ObjectId(4);
    assert!(!verifier
        .verify_denial(&SignedDenial {
            root: root.clone(),
            proof,
        })
        .verified());

    // Incomplete response: withhold a proven member from the answer.
    let range = SignedRange {
        root,
        proof: RangeProof::prove(&tree, ObjectId(2), ObjectId(8)),
    };
    assert!(!verifier
        .verify_range(&range, &[ObjectId(2), ObjectId(4), ObjectId(6)])
        .verified());

    let count = |name: &str| {
        registry
            .snapshot()
            .into_iter()
            .find(|s| s.name == name)
            .map(|s| s.value.deterministic_count())
            .unwrap_or(0)
    };
    assert_eq!(count(&EvidenceKind::ForgedDenial.counter_name()), 1);
    assert_eq!(count(&EvidenceKind::IncompleteResponse.counter_name()), 1);
}
