//! Read-only query interface over a provenance store.
//!
//! Recording tamper-evident provenance is only half the story — consumers
//! also need to *ask questions* of it: who last touched this object, where
//! did it come from, what did a participant do. This module provides those
//! queries over a [`ProvenanceDb`] without mutating anything.

use crate::error::CoreError;
use crate::record::{ProvenanceRecord, RecordKind};
use std::cell::OnceCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tep_crypto::pki::ParticipantId;
use tep_model::ObjectId;
use tep_storage::ProvenanceDb;

/// Reverse derivation-edge index: object → the aggregate records that
/// consumed it as an input. Built from the append-ordered record log and
/// kept current with [`EdgeIndex::sync`] (which only reads records
/// appended since the last sync), so a consumers lookup is O(out-degree)
/// instead of an O(n) full-log scan.
///
/// Undecodable records are skipped — attributing damage is the verifier's
/// job; the index answers questions about what *can* be read.
#[derive(Clone, Debug, Default)]
pub struct EdgeIndex {
    synced: usize,
    consumers: BTreeMap<ObjectId, Vec<(ObjectId, u64)>>,
}

impl EdgeIndex {
    /// An empty index; call [`Self::sync`] to populate it.
    pub fn new() -> Self {
        EdgeIndex::default()
    }

    /// Indexes every record appended since the last sync, returning how
    /// many records were read.
    pub fn sync(&mut self, db: &ProvenanceDb) -> usize {
        let fresh = db.records_from(self.synced);
        for stored in &fresh {
            if let Ok(rec) = ProvenanceRecord::from_stored(stored) {
                if rec.kind == RecordKind::Aggregate {
                    for input in &rec.inputs {
                        if input.oid != rec.output_oid {
                            self.consumers
                                .entry(input.oid)
                                .or_default()
                                .push((rec.output_oid, rec.seq_id));
                        }
                    }
                }
            }
        }
        self.synced += fresh.len();
        fresh.len()
    }

    /// Log position up to which this index is current.
    pub fn synced(&self) -> usize {
        self.synced
    }

    /// The aggregate records `(output, seq_id)` that consumed `oid`, in
    /// append order.
    pub fn consumers_of(&self, oid: ObjectId) -> &[(ObjectId, u64)] {
        self.consumers.get(&oid).map_or(&[], Vec::as_slice)
    }

    /// Total number of derivation edges indexed.
    pub fn edge_count(&self) -> usize {
        self.consumers.values().map(Vec::len).sum()
    }

    /// Iterates `(source, consumers)` pairs in object order — the
    /// serialization feed for index sidecars.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &[(ObjectId, u64)])> {
        self.consumers.iter().map(|(&oid, v)| (oid, v.as_slice()))
    }

    /// Reassembles an index from persisted parts. `synced` must be the
    /// log position the entries reflect; callers are responsible for
    /// validating that binding (e.g. against the checksum of the last
    /// indexed record) before trusting a sidecar.
    pub fn from_parts(
        synced: usize,
        entries: impl IntoIterator<Item = (ObjectId, Vec<(ObjectId, u64)>)>,
    ) -> Self {
        EdgeIndex {
            synced,
            consumers: entries.into_iter().collect(),
        }
    }
}

/// Read-only provenance queries.
///
/// ```
/// use std::sync::Arc;
/// use rand::{rngs::StdRng, SeedableRng};
/// use tep_core::prelude::*;
/// use tep_model::Value;
///
/// let mut rng = StdRng::seed_from_u64(4);
/// let ca = CertificateAuthority::new(512, HashAlgorithm::Sha256, &mut rng);
/// let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
/// let mut ledger = AtomicLedger::new(HashAlgorithm::Sha256, Arc::new(ProvenanceDb::in_memory()));
/// let a = ledger.insert(&alice, Value::Int(1)).unwrap();
/// ledger.update(&alice, a, Value::Int(2)).unwrap();
///
/// let q = ProvenanceQuery::new(ledger.db());
/// assert_eq!(q.blame(a), Some((alice.id(), 1)));
/// assert_eq!(q.history_of(a).unwrap().len(), 2);
/// ```
pub struct ProvenanceQuery<'a> {
    db: &'a ProvenanceDb,
    edges: OnceCell<EdgeIndex>,
}

/// Aggregate statistics over a provenance store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Total records.
    pub records: usize,
    /// Distinct objects with at least one record.
    pub objects: usize,
    /// Insert records.
    pub inserts: usize,
    /// Update records (actual + inherited).
    pub updates: usize,
    /// Aggregate records.
    pub aggregates: usize,
    /// Distinct participants.
    pub participants: usize,
    /// Total checksum-row bytes (the paper's space metric).
    pub row_bytes: u64,
}

impl<'a> ProvenanceQuery<'a> {
    /// Wraps a provenance store for querying.
    pub fn new(db: &'a ProvenanceDb) -> Self {
        ProvenanceQuery {
            db,
            edges: OnceCell::new(),
        }
    }

    /// The reverse-edge index, built lazily on first use over the records
    /// present at that moment (this is a read-only snapshot wrapper; use
    /// [`EdgeIndex`] directly for a long-lived, incrementally synced
    /// index).
    fn edge_index(&self) -> &EdgeIndex {
        self.edges.get_or_init(|| {
            let mut ix = EdgeIndex::new();
            ix.sync(self.db);
            ix
        })
    }

    /// Ceiling on BFS visits: proportional to the store so honest queries
    /// never hit it, finite so adversarial edge structures (cycles, fanout
    /// bombs) can't loop or blow memory.
    fn bfs_cap(&self) -> usize {
        self.db.len().saturating_mul(4).max(1024)
    }

    /// The decoded history of one object, in `seqID` order.
    pub fn history_of(&self, oid: ObjectId) -> Result<Vec<ProvenanceRecord>, CoreError> {
        self.db
            .records_for(oid)
            .iter()
            .map(|s| ProvenanceRecord::from_stored(s).map_err(CoreError::from))
            .collect()
    }

    /// Every participant that ever touched `oid` (directly or through an
    /// inherited record on it).
    pub fn participants_of(&self, oid: ObjectId) -> Result<BTreeSet<ParticipantId>, CoreError> {
        Ok(self
            .history_of(oid)?
            .into_iter()
            .map(|r| r.participant)
            .collect())
    }

    /// Who performed the most recent operation on `oid`, and at which seq.
    pub fn blame(&self, oid: ObjectId) -> Option<(ParticipantId, u64)> {
        self.db.latest_for(oid).map(|r| (r.participant, r.seq_id))
    }

    /// All records authored by `participant`, in `(object, seq)` order.
    pub fn records_by_participant(
        &self,
        participant: ParticipantId,
    ) -> Result<Vec<ProvenanceRecord>, CoreError> {
        let mut out: Vec<ProvenanceRecord> = self
            .db
            .all_records()
            .iter()
            .filter(|s| s.participant == participant)
            .map(|s| ProvenanceRecord::from_stored(s).map_err(CoreError::from))
            .collect::<Result<_, _>>()?;
        out.sort_by_key(|r| (r.output_oid, r.seq_id));
        Ok(out)
    }

    /// Objects that `oid` (transitively) derives from through aggregation:
    /// its lineage closure, nearest first (BFS order). Visits are bounded
    /// by [`Self::bfs_cap`] so adversarial edge structures terminate.
    pub fn derivation_sources(&self, oid: ObjectId) -> Result<Vec<ObjectId>, CoreError> {
        let cap = self.bfs_cap();
        let mut seen: BTreeSet<ObjectId> = BTreeSet::new();
        let mut order = Vec::new();
        let mut queue = VecDeque::from([oid]);
        while let Some(cur) = queue.pop_front() {
            for rec in self.history_of(cur)? {
                if rec.kind != RecordKind::Aggregate {
                    continue;
                }
                for input in &rec.inputs {
                    if seen.len() >= cap {
                        return Ok(order);
                    }
                    if input.oid != cur && seen.insert(input.oid) {
                        order.push(input.oid);
                        queue.push_back(input.oid);
                    }
                }
            }
        }
        Ok(order)
    }

    /// `true` iff `oid` derives (transitively) from `source` via
    /// aggregation. Early-exits on the first path found; the visited set
    /// doubles as a cycle guard and is bounded by [`Self::bfs_cap`].
    pub fn derives_from(&self, oid: ObjectId, source: ObjectId) -> Result<bool, CoreError> {
        let cap = self.bfs_cap();
        let mut seen: BTreeSet<ObjectId> = BTreeSet::from([oid]);
        let mut queue = VecDeque::from([oid]);
        while let Some(cur) = queue.pop_front() {
            for rec in self.history_of(cur)? {
                if rec.kind != RecordKind::Aggregate {
                    continue;
                }
                for input in &rec.inputs {
                    if input.oid == cur {
                        continue;
                    }
                    if input.oid == source {
                        return Ok(true);
                    }
                    if seen.len() < cap && seen.insert(input.oid) {
                        queue.push_back(input.oid);
                    }
                }
            }
        }
        Ok(false)
    }

    /// Objects whose aggregations consumed `oid` (direct consumers only),
    /// answered from the reverse-edge index in O(out-degree).
    pub fn consumers_of(&self, oid: ObjectId) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = self
            .edge_index()
            .consumers_of(oid)
            .iter()
            .map(|&(consumer, _)| consumer)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Per-participant record counts (activity profile).
    pub fn activity(&self) -> BTreeMap<ParticipantId, usize> {
        let mut out = BTreeMap::new();
        for r in self.db.all_records() {
            *out.entry(r.participant).or_insert(0) += 1;
        }
        out
    }

    /// Store-wide statistics.
    pub fn stats(&self) -> Result<DbStats, CoreError> {
        let mut stats = DbStats {
            records: self.db.len(),
            objects: self.db.object_ids().len(),
            row_bytes: self.db.paper_row_bytes(),
            ..Default::default()
        };
        let mut participants = BTreeSet::new();
        for stored in self.db.all_records() {
            let rec = ProvenanceRecord::from_stored(&stored)?;
            participants.insert(rec.participant);
            match rec.kind {
                RecordKind::Insert => stats.inserts += 1,
                RecordKind::Update => stats.updates += 1,
                RecordKind::Aggregate => stats.aggregates += 1,
            }
        }
        stats.participants = participants.len();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::HashingStrategy;
    use crate::tracker::{ProvenanceTracker, TrackerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tep_crypto::digest::HashAlgorithm;
    use tep_crypto::pki::{CertificateAuthority, Participant};
    use tep_model::{AggregateMode, Value};

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn world() -> (ProvenanceTracker, Participant, Participant) {
        let mut rng = StdRng::seed_from_u64(17);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let bob = ca.enroll(ParticipantId(2), 512, &mut rng);
        let tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                strategy: HashingStrategy::Economical,
            },
            Arc::new(ProvenanceDb::in_memory()),
        );
        (tracker, alice, bob)
    }

    #[test]
    fn history_and_blame() {
        let (mut t, alice, bob) = world();
        let (a, _) = t.insert(&alice, Value::Int(1), None).unwrap();
        t.update(&bob, a, Value::Int(2)).unwrap();
        let q = ProvenanceQuery::new(t.db());
        let hist = q.history_of(a).unwrap();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].kind, RecordKind::Insert);
        assert_eq!(hist[1].participant, bob.id());
        assert_eq!(q.blame(a), Some((bob.id(), 1)));
        assert_eq!(q.blame(ObjectId(999)), None);
    }

    #[test]
    fn participants_and_activity() {
        let (mut t, alice, bob) = world();
        let (a, _) = t.insert(&alice, Value::Int(1), None).unwrap();
        t.update(&bob, a, Value::Int(2)).unwrap();
        t.update(&bob, a, Value::Int(3)).unwrap();
        let q = ProvenanceQuery::new(t.db());
        let ps = q.participants_of(a).unwrap();
        assert!(ps.contains(&alice.id()) && ps.contains(&bob.id()));
        let activity = q.activity();
        assert_eq!(activity[&alice.id()], 1);
        assert_eq!(activity[&bob.id()], 2);
        assert_eq!(q.records_by_participant(bob.id()).unwrap().len(), 2);
    }

    #[test]
    fn lineage_queries() {
        let (mut t, alice, _) = world();
        let (a, _) = t.insert(&alice, Value::Int(1), None).unwrap();
        let (b, _) = t.insert(&alice, Value::Int(2), None).unwrap();
        let (c, _) = t
            .aggregate(&alice, &[a, b], Value::Int(3), AggregateMode::Atomic)
            .unwrap();
        let (d, _) = t
            .aggregate(&alice, &[c], Value::Int(4), AggregateMode::Atomic)
            .unwrap();
        let q = ProvenanceQuery::new(t.db());
        // d derives from c directly and a, b transitively.
        let sources = q.derivation_sources(d).unwrap();
        assert_eq!(sources[0], c);
        assert!(sources.contains(&a) && sources.contains(&b));
        assert!(q.derives_from(d, a).unwrap());
        assert!(!q.derives_from(a, d).unwrap());
        // a's consumers: only c (directly).
        assert_eq!(q.consumers_of(a), vec![c]);
        assert_eq!(q.consumers_of(d), Vec::<ObjectId>::new());
    }

    #[test]
    fn edge_index_syncs_incrementally() {
        let (mut t, alice, _) = world();
        let (a, _) = t.insert(&alice, Value::Int(1), None).unwrap();
        let (b, _) = t.insert(&alice, Value::Int(2), None).unwrap();
        let (c, _) = t
            .aggregate(&alice, &[a, b], Value::Int(3), AggregateMode::Atomic)
            .unwrap();
        let mut ix = EdgeIndex::new();
        let first = ix.sync(t.db());
        assert_eq!(first, t.db().len());
        // Aggregate seq = 1 + max input seq: c is (a,b) at seq 1.
        assert_eq!(ix.consumers_of(a), &[(c, 1)]);
        assert_eq!(ix.consumers_of(b), &[(c, 1)]);
        assert_eq!(ix.edge_count(), 2);

        // Appending more records only reads the tail.
        let (d, _) = t
            .aggregate(&alice, &[a, c], Value::Int(4), AggregateMode::Atomic)
            .unwrap();
        let second = ix.sync(t.db());
        assert_eq!(first + second, t.db().len());
        assert_eq!(ix.consumers_of(a), &[(c, 1), (d, 2)]);
        assert_eq!(ix.consumers_of(c), &[(d, 2)]);
        assert_eq!(ix.sync(t.db()), 0);
        assert_eq!(ix.synced(), t.db().len());

        // The rerouted lookup agrees with what a full scan used to say.
        let q = ProvenanceQuery::new(t.db());
        assert_eq!(q.consumers_of(a), vec![c, d]);
        assert_eq!(q.consumers_of(d), Vec::<ObjectId>::new());
    }

    #[test]
    fn stats_reflect_store() {
        let (mut t, alice, bob) = world();
        let (root, _) = t.insert(&alice, Value::text("db"), None).unwrap();
        let (leaf, _) = t.insert(&bob, Value::Int(1), Some(root)).unwrap();
        t.update(&alice, leaf, Value::Int(2)).unwrap();
        let (x, _) = t.insert(&alice, Value::Int(9), None).unwrap();
        t.aggregate(&bob, &[root, x], Value::Null, AggregateMode::Atomic)
            .unwrap();
        let q = ProvenanceQuery::new(t.db());
        let stats = q.stats().unwrap();
        assert_eq!(stats.records, t.db().len());
        assert_eq!(stats.participants, 2);
        assert_eq!(stats.aggregates, 1);
        assert_eq!(stats.inserts, 3); // root, leaf, x
        assert!(stats.updates >= 2); // leaf update + inherited root records
        assert_eq!(
            stats.records,
            stats.inserts + stats.updates + stats.aggregates
        );
        assert!(stats.row_bytes > 0);
    }

    #[test]
    fn empty_store_queries() {
        let db = ProvenanceDb::in_memory();
        let q = ProvenanceQuery::new(&db);
        assert!(q.history_of(ObjectId(1)).unwrap().is_empty());
        assert_eq!(q.stats().unwrap(), DbStats::default());
        assert!(q.activity().is_empty());
        assert!(q.derivation_sources(ObjectId(1)).unwrap().is_empty());
    }
}
