//! Recipient-side verification (§3, verification conditions 1–2; §3.1
//! security analysis).
//!
//! Given a data object (its current hash), its claimed [`ProvenanceObject`]
//! and a [`KeyDirectory`] of CA-certified participant keys, the
//! [`Verifier`] checks:
//!
//! 1. the most recent record's output matches the delivered object
//!    (guarantees **R4**/**R5** — no undocumented modification, no
//!    provenance reassignment);
//! 2. every checksum verifies under its participant's public key over the
//!    record's own fields and the *stored* predecessor checksums
//!    (**R1**/**R8** — record contents and attribution);
//! 3. every chain is structurally sound — predecessors present
//!    (**R2**/**R7** removal detection), no forks or dangling records
//!    (**R3**/**R6** insertion detection), kinds well-formed.
//!
//! All violations found are reported, not just the first, so attack
//! forensics can see the full blast radius.

use crate::parallel::parallel_map;
use crate::provenance::ProvenanceObject;
use crate::record::{checksum_message, ProvenanceRecord, RecordKind};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{KeyDirectory, ParticipantId};
use tep_model::ObjectId;

/// A specific piece of evidence that provenance was tampered with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TamperEvidence {
    /// The delivered object does not match the most recent record's output
    /// (violates R4: undocumented data modification, or R5: provenance
    /// reassigned from another object).
    OutputMismatch {
        /// The object under verification.
        oid: ObjectId,
    },
    /// A record's checksum fails signature verification (R1: contents
    /// modified, or R8: forged attribution).
    BadSignature {
        /// Output object of the offending record.
        oid: ObjectId,
        /// Its sequence id.
        seq: u64,
    },
    /// A record referenced as predecessor is absent (R2/R7: records were
    /// removed).
    MissingRecord {
        /// The missing record's object.
        oid: ObjectId,
        /// The missing record's sequence id.
        seq: u64,
    },
    /// Successive records of one object's chain do not link (insertion,
    /// reordering, or splicing — R3/R6).
    BrokenChain {
        /// The object whose chain is inconsistent.
        oid: ObjectId,
        /// Sequence id of the record that fails to link.
        seq: u64,
    },
    /// A presented record is not reachable from the target's most recent
    /// record (R3/R6: inserted records).
    ExtraneousRecord {
        /// The unreachable record's object.
        oid: ObjectId,
        /// Its sequence id.
        seq: u64,
    },
    /// Two records claim the same `(object, seqID)` slot — a forked chain.
    DuplicateRecord {
        /// The contested object.
        oid: ObjectId,
        /// The contested sequence id.
        seq: u64,
    },
    /// The record names a participant with no certified key.
    UnknownParticipant {
        /// The unknown participant.
        participant: ParticipantId,
    },
    /// A record's structure violates its kind's invariants.
    MalformedRecord {
        /// The offending record's object.
        oid: ObjectId,
        /// Its sequence id.
        seq: u64,
        /// What is wrong.
        why: &'static str,
    },
    /// No records were presented for the target object.
    NoRecords {
        /// The target object.
        oid: ObjectId,
    },
    /// A previously trusted record (a [`crate::checkpoint::TrustAnchor`])
    /// is no longer present with its original checksum — the chain was
    /// truncated, rolled back, or re-signed across the anchor.
    AnchorViolation {
        /// The anchored object.
        oid: ObjectId,
        /// The anchored sequence id.
        seq: u64,
    },
}

impl fmt::Display for TamperEvidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamperEvidence::OutputMismatch { oid } => {
                write!(
                    f,
                    "object {oid} does not match its most recent provenance record (R4/R5)"
                )
            }
            TamperEvidence::BadSignature { oid, seq } => {
                write!(
                    f,
                    "checksum of record ({oid}, seq {seq}) fails verification (R1/R8)"
                )
            }
            TamperEvidence::MissingRecord { oid, seq } => {
                write!(f, "referenced record ({oid}, seq {seq}) is missing (R2/R7)")
            }
            TamperEvidence::BrokenChain { oid, seq } => {
                write!(
                    f,
                    "record ({oid}, seq {seq}) does not link to its predecessor (R3/R6)"
                )
            }
            TamperEvidence::ExtraneousRecord { oid, seq } => {
                write!(
                    f,
                    "record ({oid}, seq {seq}) is not part of the target's history (R3/R6)"
                )
            }
            TamperEvidence::DuplicateRecord { oid, seq } => {
                write!(
                    f,
                    "multiple records claim ({oid}, seq {seq}) — forked chain"
                )
            }
            TamperEvidence::UnknownParticipant { participant } => {
                write!(f, "no certified key for participant {participant}")
            }
            TamperEvidence::MalformedRecord { oid, seq, why } => {
                write!(f, "record ({oid}, seq {seq}) is malformed: {why}")
            }
            TamperEvidence::NoRecords { oid } => {
                write!(f, "no provenance records for object {oid}")
            }
            TamperEvidence::AnchorViolation { oid, seq } => {
                write!(
                    f,
                    "trusted record ({oid}, seq {seq}) is missing or altered — history truncated or rolled back"
                )
            }
        }
    }
}

/// The outcome of verifying one provenance object.
#[derive(Clone, Debug, Default)]
pub struct Verification {
    /// All evidence of tampering found (empty ⇒ verified).
    pub issues: Vec<TamperEvidence>,
    /// Number of records whose signatures were checked.
    pub records_checked: usize,
    /// Participants appearing in the provenance.
    pub participants: BTreeSet<ParticipantId>,
}

impl Verification {
    /// `true` iff no tampering evidence was found.
    pub fn verified(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Recipient-side provenance verifier.
pub struct Verifier<'a> {
    keys: &'a KeyDirectory,
    alg: HashAlgorithm,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier resolving participants through `keys`.
    pub fn new(keys: &'a KeyDirectory, alg: HashAlgorithm) -> Self {
        Verifier { keys, alg }
    }

    /// Verifies that `prov` is an untampered history of the object whose
    /// current hash is `object_hash`.
    pub fn verify(&self, object_hash: &[u8], prov: &ProvenanceObject) -> Verification {
        let mut v = Verification::default();
        let target = prov.target;

        // Index records; detect forks.
        let mut index: HashMap<(ObjectId, u64), &ProvenanceRecord> = HashMap::new();
        for r in &prov.records {
            let key = (r.output_oid, r.seq_id);
            if index.insert(key, r).is_some() {
                v.issues.push(TamperEvidence::DuplicateRecord {
                    oid: key.0,
                    seq: key.1,
                });
            }
        }

        // Condition 1: the delivered object matches the newest record.
        let latest = match prov.latest() {
            Some(r) => r,
            None => {
                v.issues.push(TamperEvidence::NoRecords { oid: target });
                return v;
            }
        };
        if latest.output_hash != object_hash {
            v.issues
                .push(TamperEvidence::OutputMismatch { oid: target });
        }

        // Structural checks per object chain.
        let mut by_object: HashMap<ObjectId, Vec<&ProvenanceRecord>> = HashMap::new();
        for r in &prov.records {
            by_object.entry(r.output_oid).or_default().push(r);
        }
        for (oid, mut chain) in by_object {
            chain.sort_by_key(|r| r.seq_id);
            for (i, r) in chain.iter().enumerate() {
                self.check_shape(r, &mut v);
                let links_to_prior = match r.kind {
                    RecordKind::Insert | RecordKind::Aggregate => None,
                    RecordKind::Update => r.inputs.first().and_then(|inp| inp.prev_seq),
                };
                if i == 0 {
                    // Chain start: must not claim a predecessor we can't see
                    // ... unless it's an aggregate (whose "predecessors" are
                    // the input objects, checked below) or a first-touch
                    // update (prev None).
                    if let Some(prev) = links_to_prior {
                        v.issues
                            .push(TamperEvidence::MissingRecord { oid, seq: prev });
                    }
                } else {
                    let prior = chain[i - 1];
                    match (r.kind, links_to_prior) {
                        (RecordKind::Update, Some(prev)) if prev == prior.seq_id => {}
                        _ => {
                            v.issues
                                .push(TamperEvidence::BrokenChain { oid, seq: r.seq_id });
                        }
                    }
                }
            }
        }

        // Condition 2: every checksum verifies over the record's fields and
        // the stored predecessor checksums.
        for r in &prov.records {
            self.check_signature(r, &index, &mut v);
            v.records_checked += 1;
            v.participants.insert(r.participant);
        }

        // Reachability: everything presented must be part of the target's
        // history (dangling records indicate insertion).
        let mut reachable: HashSet<(ObjectId, u64)> = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back((target, latest.seq_id));
        while let Some(key) = queue.pop_front() {
            if !reachable.insert(key) {
                continue;
            }
            let Some(r) = index.get(&key) else { continue };
            for input in &r.inputs {
                if let Some(prev) = input.prev_seq {
                    queue.push_back((input.oid, prev));
                }
            }
        }
        for r in &prov.records {
            if !reachable.contains(&(r.output_oid, r.seq_id)) {
                v.issues.push(TamperEvidence::ExtraneousRecord {
                    oid: r.output_oid,
                    seq: r.seq_id,
                });
            }
        }

        v
    }

    /// Verifies many `(object hash, provenance object)` pairs concurrently
    /// on `threads` workers, returning one [`Verification`] per pair in
    /// input order.
    ///
    /// Each pair is an independent read-only computation over the shared
    /// [`KeyDirectory`] — distinct objects' chains share no mutable state
    /// (§3.2 per-object chaining) — so the verdicts are exactly those of
    /// calling [`Self::verify`] sequentially; only operations on the *same*
    /// object must stay within one job.
    pub fn verify_all_parallel(
        &self,
        jobs: &[(Vec<u8>, ProvenanceObject)],
        threads: usize,
    ) -> Vec<Verification> {
        parallel_map(threads, jobs, |_, (hash, prov)| self.verify(hash, prov))
    }

    fn check_shape(&self, r: &ProvenanceRecord, v: &mut Verification) {
        let flag = |v: &mut Verification, why| {
            v.issues.push(TamperEvidence::MalformedRecord {
                oid: r.output_oid,
                seq: r.seq_id,
                why,
            })
        };
        match r.kind {
            RecordKind::Insert => {
                if !r.inputs.is_empty() {
                    flag(v, "insert records must have no inputs");
                }
            }
            RecordKind::Update => {
                if r.inputs.len() != 1 {
                    flag(v, "update records must have exactly one input");
                } else if r.inputs[0].oid != r.output_oid {
                    flag(v, "update input must be the output object itself");
                }
            }
            RecordKind::Aggregate => {
                if r.inputs.is_empty() {
                    flag(v, "aggregate records must have at least one input");
                }
                if r.inputs.windows(2).any(|w| w[0].oid >= w[1].oid) {
                    flag(v, "aggregate inputs must be sorted and distinct");
                }
                if r.inputs.iter().any(|i| i.oid == r.output_oid) {
                    flag(v, "aggregate output must be a fresh object");
                }
            }
        }
    }

    fn check_signature(
        &self,
        r: &ProvenanceRecord,
        index: &HashMap<(ObjectId, u64), &ProvenanceRecord>,
        v: &mut Verification,
    ) {
        // Resolve predecessor checksums; missing ones are R2/R7 evidence.
        let mut prev_checksums: Vec<&[u8]> = Vec::new();
        let mut resolvable = true;
        for input in &r.inputs {
            let Some(prev) = input.prev_seq else { continue };
            match index.get(&(input.oid, prev)) {
                Some(p) => prev_checksums.push(&p.checksum),
                None => {
                    v.issues.push(TamperEvidence::MissingRecord {
                        oid: input.oid,
                        seq: prev,
                    });
                    resolvable = false;
                }
            }
        }
        if !resolvable {
            return;
        }

        let key = match self.keys.public_key(r.participant) {
            Ok(k) => k,
            Err(_) => {
                v.issues.push(TamperEvidence::UnknownParticipant {
                    participant: r.participant,
                });
                return;
            }
        };
        let msg = checksum_message(
            self.alg,
            r.kind,
            r.seq_id,
            &r.inputs,
            r.output_oid,
            &r.output_hash,
            &r.annotation,
            &prev_checksums,
        );
        if key.verify(self.alg, &msg, &r.checksum).is_err() {
            v.issues.push(TamperEvidence::BadSignature {
                oid: r.output_oid,
                seq: r.seq_id,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::HashingStrategy;
    use crate::provenance::collect;
    use crate::tracker::{ProvenanceTracker, TrackerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tep_crypto::pki::{CertificateAuthority, Participant};
    use tep_model::{AggregateMode, Value};
    use tep_storage::ProvenanceDb;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    struct World {
        tracker: ProvenanceTracker,
        keys: KeyDirectory,
        alice: Participant,
        bob: Participant,
    }

    fn world() -> World {
        let mut rng = StdRng::seed_from_u64(55);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let bob = ca.enroll(ParticipantId(2), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(alice.certificate().clone()).unwrap();
        keys.register(bob.certificate().clone()).unwrap();
        let tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                strategy: HashingStrategy::Economical,
            },
            Arc::new(ProvenanceDb::in_memory()),
        );
        World {
            tracker,
            keys,
            alice,
            bob,
        }
    }

    #[test]
    fn honest_linear_history_verifies() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        w.tracker.update(&w.bob, a, Value::Int(2)).unwrap();
        w.tracker.update(&w.alice, a, Value::Int(3)).unwrap();
        let prov = collect(w.tracker.db(), a).unwrap();
        let hash = w.tracker.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v.verified(), "issues: {:?}", v.issues);
        assert_eq!(v.records_checked, 3);
        assert_eq!(v.participants.len(), 2);
    }

    #[test]
    fn honest_nonlinear_history_verifies() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::text("a1"), None).unwrap();
        let (b, _) = w.tracker.insert(&w.alice, Value::text("b1"), None).unwrap();
        w.tracker.update(&w.bob, b, Value::text("b2")).unwrap();
        let (c, _) = w
            .tracker
            .aggregate(&w.bob, &[a, b], Value::text("c1"), AggregateMode::Atomic)
            .unwrap();
        w.tracker.update(&w.alice, a, Value::text("a2")).unwrap();
        let (d, _) = w
            .tracker
            .aggregate(&w.alice, &[a, c], Value::text("d1"), AggregateMode::Atomic)
            .unwrap();
        let prov = collect(w.tracker.db(), d).unwrap();
        let hash = w.tracker.object_hash(d).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v.verified(), "issues: {:?}", v.issues);
        assert_eq!(v.records_checked, 6);
    }

    #[test]
    fn honest_compound_history_verifies() {
        let mut w = world();
        let (root, _) = w.tracker.insert(&w.alice, Value::text("db"), None).unwrap();
        let (table, _) = w
            .tracker
            .insert(&w.alice, Value::text("t"), Some(root))
            .unwrap();
        let (row, _) = w.tracker.insert(&w.bob, Value::Null, Some(table)).unwrap();
        let (cell, _) = w.tracker.insert(&w.bob, Value::Int(1), Some(row)).unwrap();
        w.tracker.update(&w.alice, cell, Value::Int(2)).unwrap();
        w.tracker.delete(&w.bob, cell).unwrap();
        // Verify the root's (inherited) chain.
        let prov = collect(w.tracker.db(), root).unwrap();
        let hash = w.tracker.object_hash(root).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v.verified(), "issues: {:?}", v.issues);
    }

    #[test]
    fn r1_modified_record_detected() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        w.tracker.update(&w.bob, a, Value::Int(2)).unwrap();
        let mut prov = collect(w.tracker.db(), a).unwrap();
        // Bob's record claims a different input value.
        let idx = prov.records.iter().position(|r| r.seq_id == 1).unwrap();
        prov.records[idx].inputs[0].hash[0] ^= 0xFF;
        let hash = w.tracker.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v
            .issues
            .contains(&TamperEvidence::BadSignature { oid: a, seq: 1 }));
    }

    #[test]
    fn r2_removed_record_detected() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        w.tracker.update(&w.bob, a, Value::Int(2)).unwrap();
        w.tracker.update(&w.alice, a, Value::Int(3)).unwrap();
        let mut prov = collect(w.tracker.db(), a).unwrap();
        // Remove Bob's middle record (seq 1).
        prov.records.retain(|r| r.seq_id != 1);
        let hash = w.tracker.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(!v.verified());
        assert!(v.issues.iter().any(|i| matches!(
            i,
            TamperEvidence::MissingRecord { .. } | TamperEvidence::BrokenChain { .. }
        )));
    }

    #[test]
    fn r4_unrecorded_data_change_detected() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        let prov = collect(w.tracker.db(), a).unwrap();
        // Attacker changes the data out-of-band: hash no longer matches.
        let fake_hash = crate::hashing::hash_atom(ALG, a, &Value::Int(999));
        let v = Verifier::new(&w.keys, ALG).verify(&fake_hash, &prov);
        assert!(v
            .issues
            .contains(&TamperEvidence::OutputMismatch { oid: a }));
    }

    #[test]
    fn r5_reassigned_provenance_detected() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        let (b, _) = w.tracker.insert(&w.bob, Value::Int(1), None).unwrap();
        // Present B's data with A's provenance.
        let prov_a = collect(w.tracker.db(), a).unwrap();
        let hash_b = w.tracker.object_hash(b).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash_b, &prov_a);
        assert!(v
            .issues
            .contains(&TamperEvidence::OutputMismatch { oid: a }));
    }

    #[test]
    fn unknown_participant_detected() {
        let mut w = world();
        let mut rng = StdRng::seed_from_u64(99);
        let rogue_ca = CertificateAuthority::new(512, ALG, &mut rng);
        let mallory = rogue_ca.enroll(ParticipantId(66), 512, &mut rng);
        let (a, _) = w.tracker.insert(&mallory, Value::Int(1), None).unwrap();
        let prov = collect(w.tracker.db(), a).unwrap();
        let hash = w.tracker.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v.issues.contains(&TamperEvidence::UnknownParticipant {
            participant: ParticipantId(66)
        }));
    }

    #[test]
    fn duplicate_seq_detected() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        w.tracker.update(&w.bob, a, Value::Int(2)).unwrap();
        let mut prov = collect(w.tracker.db(), a).unwrap();
        let dup = prov.records[1].clone();
        prov.records.push(dup);
        let hash = w.tracker.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v
            .issues
            .contains(&TamperEvidence::DuplicateRecord { oid: a, seq: 1 }));
    }

    #[test]
    fn parallel_verdicts_identical_to_sequential() {
        let mut w = world();
        // A mix of honest and tampered histories across several objects.
        let mut oids = Vec::new();
        for i in 0..6 {
            let (a, _) = w.tracker.insert(&w.alice, Value::Int(i), None).unwrap();
            w.tracker.update(&w.bob, a, Value::Int(i + 100)).unwrap();
            oids.push(a);
        }
        let (agg, _) = w
            .tracker
            .aggregate(
                &w.bob,
                &[oids[0], oids[1]],
                Value::Int(0),
                AggregateMode::Atomic,
            )
            .unwrap();
        oids.push(agg);

        let mut jobs: Vec<(Vec<u8>, ProvenanceObject)> = oids
            .iter()
            .map(|&oid| {
                (
                    w.tracker.object_hash(oid).unwrap(),
                    collect(w.tracker.db(), oid).unwrap(),
                )
            })
            .collect();
        // Tamper with two of them in different ways.
        jobs[2].0[0] ^= 0xFF; // output mismatch
        jobs[4].1.records[0].checksum[3] ^= 0x01; // bad signature

        let verifier = Verifier::new(&w.keys, ALG);
        let sequential: Vec<Verification> =
            jobs.iter().map(|(h, p)| verifier.verify(h, p)).collect();
        for threads in [1, 2, 8] {
            let parallel = verifier.verify_all_parallel(&jobs, threads);
            assert_eq!(parallel.len(), sequential.len());
            for (par, seq) in parallel.iter().zip(&sequential) {
                assert_eq!(par.issues, seq.issues);
                assert_eq!(par.records_checked, seq.records_checked);
                assert_eq!(par.participants, seq.participants);
            }
        }
    }

    #[test]
    fn empty_provenance_flagged() {
        let w = world();
        let prov = ProvenanceObject {
            target: ObjectId(5),
            records: vec![],
        };
        let v = Verifier::new(&w.keys, ALG).verify(&[0u8; 32], &prov);
        assert_eq!(
            v.issues,
            vec![TamperEvidence::NoRecords { oid: ObjectId(5) }]
        );
    }
}
