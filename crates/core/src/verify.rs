//! Recipient-side verification (§3, verification conditions 1–2; §3.1
//! security analysis).
//!
//! Given a data object (its current hash), its claimed [`ProvenanceObject`]
//! and a [`KeyDirectory`] of CA-certified participant keys, the
//! [`Verifier`] checks:
//!
//! 1. the most recent record's output matches the delivered object
//!    (guarantees **R4**/**R5** — no undocumented modification, no
//!    provenance reassignment);
//! 2. every checksum verifies under its participant's public key over the
//!    record's own fields and the *stored* predecessor checksums
//!    (**R1**/**R8** — record contents and attribution);
//! 3. every chain is structurally sound — predecessors present
//!    (**R2**/**R7** removal detection), no forks or dangling records
//!    (**R3**/**R6** insertion detection), kinds well-formed.
//!
//! All violations found are reported, not just the first, so attack
//! forensics can see the full blast radius.

use crate::parallel::parallel_map;
use crate::provenance::ProvenanceObject;
use crate::record::{checksum_message, ProvenanceRecord, RecordKind};
use crate::slice::{
    backward_closure, forward_closure, polynomial_over, AggEdge, QueryAnswer, QueryOp, SliceProof,
};
use crate::streaming::{CheckpointError, RecordSlot, RecordStreamDigest, VerifierCheckpoint};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{KeyDirectory, ParticipantId};
use tep_model::ObjectId;
use tep_obs::{Counter, Histogram, Registry};

/// The kind of a piece of tamper evidence, independent of the offending
/// record's identity — the unit both verify paths (batch/recovered and the
/// tep-net streaming client) report through, and the key of the
/// `tep_core_evidence_<kind>_total` counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EvidenceKind {
    /// [`TamperEvidence::OutputMismatch`].
    OutputMismatch,
    /// [`TamperEvidence::BadSignature`].
    BadSignature,
    /// [`TamperEvidence::MissingRecord`].
    MissingRecord,
    /// [`TamperEvidence::BrokenChain`].
    BrokenChain,
    /// [`TamperEvidence::ExtraneousRecord`].
    ExtraneousRecord,
    /// [`TamperEvidence::DuplicateRecord`].
    DuplicateRecord,
    /// [`TamperEvidence::UnknownParticipant`].
    UnknownParticipant,
    /// [`TamperEvidence::MalformedRecord`].
    MalformedRecord,
    /// [`TamperEvidence::NoRecords`].
    NoRecords,
    /// [`TamperEvidence::AnchorViolation`].
    AnchorViolation,
    /// [`TamperEvidence::StorageQuarantine`].
    StorageQuarantine,
    /// A provenance stream aborted with undecodable bytes — reported by
    /// the tep-net client when a PROV/DATA frame fails structural
    /// decoding. Has no [`TamperEvidence`] counterpart (the record never
    /// existed to point at) but shares this enum so transport-layer
    /// tamper shows up in the same counter family.
    MalformedStream,
    /// [`TamperEvidence::ResumeMismatch`].
    ResumeMismatch,
    /// [`TamperEvidence::ReplicaDivergence`].
    ReplicaDivergence,
    /// [`TamperEvidence::ForgedRoot`].
    ForgedRoot,
    /// [`TamperEvidence::ForgedDenial`].
    ForgedDenial,
    /// [`TamperEvidence::IncompleteResponse`].
    IncompleteResponse,
    /// [`TamperEvidence::CheckpointMismatch`].
    CheckpointMismatch,
}

impl EvidenceKind {
    /// Every kind, in counter/display order.
    pub const ALL: [EvidenceKind; 18] = [
        EvidenceKind::OutputMismatch,
        EvidenceKind::BadSignature,
        EvidenceKind::MissingRecord,
        EvidenceKind::BrokenChain,
        EvidenceKind::ExtraneousRecord,
        EvidenceKind::DuplicateRecord,
        EvidenceKind::UnknownParticipant,
        EvidenceKind::MalformedRecord,
        EvidenceKind::NoRecords,
        EvidenceKind::AnchorViolation,
        EvidenceKind::StorageQuarantine,
        EvidenceKind::MalformedStream,
        EvidenceKind::ResumeMismatch,
        EvidenceKind::ReplicaDivergence,
        EvidenceKind::ForgedRoot,
        EvidenceKind::ForgedDenial,
        EvidenceKind::IncompleteResponse,
        EvidenceKind::CheckpointMismatch,
    ];

    /// Stable snake_case name, used as the counter-name suffix.
    pub fn name(self) -> &'static str {
        match self {
            EvidenceKind::OutputMismatch => "output_mismatch",
            EvidenceKind::BadSignature => "bad_signature",
            EvidenceKind::MissingRecord => "missing_record",
            EvidenceKind::BrokenChain => "broken_chain",
            EvidenceKind::ExtraneousRecord => "extraneous_record",
            EvidenceKind::DuplicateRecord => "duplicate_record",
            EvidenceKind::UnknownParticipant => "unknown_participant",
            EvidenceKind::MalformedRecord => "malformed_record",
            EvidenceKind::NoRecords => "no_records",
            EvidenceKind::AnchorViolation => "anchor_violation",
            EvidenceKind::StorageQuarantine => "storage_quarantine",
            EvidenceKind::MalformedStream => "malformed_stream",
            EvidenceKind::ResumeMismatch => "resume_mismatch",
            EvidenceKind::ReplicaDivergence => "replica_divergence",
            EvidenceKind::ForgedRoot => "forged_root",
            EvidenceKind::ForgedDenial => "forged_denial",
            EvidenceKind::IncompleteResponse => "incomplete_response",
            EvidenceKind::CheckpointMismatch => "checkpoint_mismatch",
        }
    }

    /// Name of the tep-obs counter this kind increments
    /// (`tep_core_evidence_<kind>_total`).
    pub fn counter_name(self) -> String {
        format!("tep_core_evidence_{}_total", self.name())
    }
}

impl fmt::Display for EvidenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One [`Counter`] per [`EvidenceKind`], registered as
/// `tep_core_evidence_<kind>_total`. Cheap to clone; every verify surface
/// (batch, recovered, streaming, tep-net client) attached to the same
/// [`Registry`] shares the same counters.
#[derive(Clone)]
pub struct EvidenceCounters {
    counters: Vec<Counter>,
}

impl EvidenceCounters {
    /// Registers (or re-resolves) the per-kind counters in `registry`.
    pub fn new(registry: &Registry) -> Self {
        EvidenceCounters {
            counters: EvidenceKind::ALL
                .iter()
                .map(|k| registry.counter(&k.counter_name()))
                .collect(),
        }
    }

    /// Counts one piece of evidence of `kind`.
    pub fn record(&self, kind: EvidenceKind) {
        self.counters[kind as usize].inc();
    }

    /// Counts every issue in `issues` by kind.
    pub fn record_issues(&self, issues: &[TamperEvidence]) {
        for issue in issues {
            self.record(issue.kind());
        }
    }
}

/// Verifier-side metrics bundle: run/record/tamper counters, verify
/// latency, and the per-kind [`EvidenceCounters`].
#[derive(Clone)]
struct VerifyObs {
    runs: Counter,
    records: Counter,
    tampered_runs: Counter,
    latency_ns: Histogram,
    evidence: EvidenceCounters,
}

impl VerifyObs {
    fn new(registry: &Registry) -> Self {
        VerifyObs {
            runs: registry.counter("tep_core_verify_runs_total"),
            records: registry.counter("tep_core_verify_records_total"),
            tampered_runs: registry.counter("tep_core_verify_tampered_total"),
            latency_ns: registry.latency_histogram("tep_core_verify_ns"),
            evidence: EvidenceCounters::new(registry),
        }
    }

    fn record_outcome(&self, v: &Verification) {
        self.runs.inc();
        self.records.add(v.records_checked as u64);
        if !v.verified() {
            self.tampered_runs.inc();
        }
        self.evidence.record_issues(&v.issues);
    }
}

/// A specific piece of evidence that provenance was tampered with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TamperEvidence {
    /// The delivered object does not match the most recent record's output
    /// (violates R4: undocumented data modification, or R5: provenance
    /// reassigned from another object).
    OutputMismatch {
        /// The object under verification.
        oid: ObjectId,
    },
    /// A record's checksum fails signature verification (R1: contents
    /// modified, or R8: forged attribution).
    BadSignature {
        /// Output object of the offending record.
        oid: ObjectId,
        /// Its sequence id.
        seq: u64,
    },
    /// A record referenced as predecessor is absent (R2/R7: records were
    /// removed).
    MissingRecord {
        /// The missing record's object.
        oid: ObjectId,
        /// The missing record's sequence id.
        seq: u64,
    },
    /// Successive records of one object's chain do not link (insertion,
    /// reordering, or splicing — R3/R6).
    BrokenChain {
        /// The object whose chain is inconsistent.
        oid: ObjectId,
        /// Sequence id of the record that fails to link.
        seq: u64,
    },
    /// A presented record is not reachable from the target's most recent
    /// record (R3/R6: inserted records).
    ExtraneousRecord {
        /// The unreachable record's object.
        oid: ObjectId,
        /// Its sequence id.
        seq: u64,
    },
    /// Two records claim the same `(object, seqID)` slot — a forked chain.
    DuplicateRecord {
        /// The contested object.
        oid: ObjectId,
        /// The contested sequence id.
        seq: u64,
    },
    /// The record names a participant with no certified key.
    UnknownParticipant {
        /// The unknown participant.
        participant: ParticipantId,
    },
    /// A record's structure violates its kind's invariants.
    MalformedRecord {
        /// The offending record's object.
        oid: ObjectId,
        /// Its sequence id.
        seq: u64,
        /// What is wrong.
        why: &'static str,
    },
    /// No records were presented for the target object.
    NoRecords {
        /// The target object.
        oid: ObjectId,
    },
    /// A previously trusted record (a [`crate::checkpoint::TrustAnchor`])
    /// is no longer present with its original checksum — the chain was
    /// truncated, rolled back, or re-signed across the anchor.
    AnchorViolation {
        /// The anchored object.
        oid: ObjectId,
        /// The anchored sequence id.
        seq: u64,
    },
    /// The durable store recovered in degraded mode: interior log
    /// corruption was excised into the quarantine sidecar (or CRC-valid
    /// frames failed to decode), so records are missing for a
    /// storage-layer reason. Whatever chains the damage touched also
    /// surface as [`TamperEvidence::MissingRecord`] /
    /// [`TamperEvidence::BrokenChain`] (R2/R3); this evidence attributes
    /// them to quarantined storage rather than an unexplained absence.
    StorageQuarantine {
        /// Number of quarantined ranges plus undecodable records.
        gaps: u64,
        /// Corrupt bytes moved to the quarantine sidecar.
        bytes: u64,
    },
    /// A resumable transfer's RESUME handshake failed: the server's record
    /// stream up to the claimed resume point is **not** byte-identical to
    /// the records the client already verified (its rolling
    /// [`RecordStreamDigest`](crate::streaming::RecordStreamDigest)
    /// disagrees), or the server claims a different resume offset than the
    /// checkpoint proves. Either the server's history changed between
    /// connections or the peer is lying about where the transfer stopped —
    /// both are R2/R3-grade discontinuities, so the transfer is rejected
    /// and never retried.
    ResumeMismatch {
        /// The object being transferred.
        oid: ObjectId,
        /// Records the client's checkpoint covers.
        claimed: u64,
        /// Records the peer confirmed (its echoed resume offset, or
        /// `claimed` when the offsets agree but the digests do not).
        confirmed: u64,
    },
    /// Anti-entropy located an object whose record history differs between
    /// a replica and its primary: the per-shard Merkle trees disagree at a
    /// leaf, and re-fetching that object did not produce a stream that
    /// both verifies *and* extends the replica's verified local prefix.
    /// One of the two histories was tampered with (a bit-flipped replica
    /// log, a lying primary, or a fork where both sides verify but
    /// diverge) — an R2/R3-grade discontinuity attributed to replication,
    /// never silently "repaired" by overwriting verified local state.
    ReplicaDivergence {
        /// The divergent object.
        oid: ObjectId,
        /// Merkle levels descended to locate the leaf (the anti-entropy
        /// round-trip count for this divergence).
        depth: u32,
    },
    /// An anti-entropy response failed structural self-authentication:
    /// the child hashes a peer presented do not recombine to the parent
    /// hash the same peer claimed one round earlier. No valid tree can do
    /// this regardless of which side's data is correct, so the root (or an
    /// interior node) was forged in flight or by the peer itself.
    ForgedRoot {
        /// Tree level of the node whose children fail to authenticate
        /// (leaves are level 0).
        level: u32,
        /// Index of that node within its level.
        index: u64,
    },
    /// A NOT_FOUND answer's non-membership proof
    /// ([`crate::denial::SignedDenial`]) failed verification: the root
    /// signature is bad, a witness path does not authenticate, the
    /// witnesses are not adjacent, or the target is in fact covered by a
    /// leaf. Either the server denied an object it *does* hold, or the
    /// proof was forged/mutated in flight — an attributable omission
    /// attack (R2/R7-grade: records withheld rather than removed).
    ForgedDenial {
        /// The object whose absence was (falsely) claimed. For a range
        /// completeness proof that fails verification, the range's lower
        /// bound.
        oid: ObjectId,
    },
    /// A range answer omitted a member its own completeness proof
    /// ([`crate::denial::SignedRange`]) shows to exist: the proof verifies
    /// — so the leaf run is authentic and gap-free — but the served
    /// answer is missing at least one proven member. The server withheld a
    /// match it provably holds (R2/R7-grade omission).
    IncompleteResponse {
        /// Inclusive lower bound of the range queried.
        lo: ObjectId,
        /// Inclusive upper bound of the range queried.
        hi: ObjectId,
    },
    /// A sealed compaction checkpoint
    /// ([`crate::checkpoint::SealedCheckpoint`]) conflicts with the
    /// presented provenance: the seal itself fails signature verification,
    /// or a record at an anchored `(object, seqID)` slot carries a
    /// different checksum than the checkpoint attests — the excised
    /// history was swapped out from under the checkpoint (R2/R3 across
    /// the compaction boundary).
    CheckpointMismatch {
        /// The anchored object (the verification target when the seal
        /// itself fails).
        oid: ObjectId,
        /// The anchored sequence id (0 when the seal itself fails).
        seq: u64,
    },
}

impl TamperEvidence {
    /// The kind of this evidence, for counting and cross-path comparison.
    pub fn kind(&self) -> EvidenceKind {
        match self {
            TamperEvidence::OutputMismatch { .. } => EvidenceKind::OutputMismatch,
            TamperEvidence::BadSignature { .. } => EvidenceKind::BadSignature,
            TamperEvidence::MissingRecord { .. } => EvidenceKind::MissingRecord,
            TamperEvidence::BrokenChain { .. } => EvidenceKind::BrokenChain,
            TamperEvidence::ExtraneousRecord { .. } => EvidenceKind::ExtraneousRecord,
            TamperEvidence::DuplicateRecord { .. } => EvidenceKind::DuplicateRecord,
            TamperEvidence::UnknownParticipant { .. } => EvidenceKind::UnknownParticipant,
            TamperEvidence::MalformedRecord { .. } => EvidenceKind::MalformedRecord,
            TamperEvidence::NoRecords { .. } => EvidenceKind::NoRecords,
            TamperEvidence::AnchorViolation { .. } => EvidenceKind::AnchorViolation,
            TamperEvidence::StorageQuarantine { .. } => EvidenceKind::StorageQuarantine,
            TamperEvidence::ResumeMismatch { .. } => EvidenceKind::ResumeMismatch,
            TamperEvidence::ReplicaDivergence { .. } => EvidenceKind::ReplicaDivergence,
            TamperEvidence::ForgedRoot { .. } => EvidenceKind::ForgedRoot,
            TamperEvidence::ForgedDenial { .. } => EvidenceKind::ForgedDenial,
            TamperEvidence::IncompleteResponse { .. } => EvidenceKind::IncompleteResponse,
            TamperEvidence::CheckpointMismatch { .. } => EvidenceKind::CheckpointMismatch,
        }
    }
}

impl fmt::Display for TamperEvidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamperEvidence::OutputMismatch { oid } => {
                write!(
                    f,
                    "object {oid} does not match its most recent provenance record (R4/R5)"
                )
            }
            TamperEvidence::BadSignature { oid, seq } => {
                write!(
                    f,
                    "checksum of record ({oid}, seq {seq}) fails verification (R1/R8)"
                )
            }
            TamperEvidence::MissingRecord { oid, seq } => {
                write!(f, "referenced record ({oid}, seq {seq}) is missing (R2/R7)")
            }
            TamperEvidence::BrokenChain { oid, seq } => {
                write!(
                    f,
                    "record ({oid}, seq {seq}) does not link to its predecessor (R3/R6)"
                )
            }
            TamperEvidence::ExtraneousRecord { oid, seq } => {
                write!(
                    f,
                    "record ({oid}, seq {seq}) is not part of the target's history (R3/R6)"
                )
            }
            TamperEvidence::DuplicateRecord { oid, seq } => {
                write!(
                    f,
                    "multiple records claim ({oid}, seq {seq}) — forked chain"
                )
            }
            TamperEvidence::UnknownParticipant { participant } => {
                write!(f, "no certified key for participant {participant}")
            }
            TamperEvidence::MalformedRecord { oid, seq, why } => {
                write!(f, "record ({oid}, seq {seq}) is malformed: {why}")
            }
            TamperEvidence::NoRecords { oid } => {
                write!(f, "no provenance records for object {oid}")
            }
            TamperEvidence::AnchorViolation { oid, seq } => {
                write!(
                    f,
                    "trusted record ({oid}, seq {seq}) is missing or altered — history truncated or rolled back"
                )
            }
            TamperEvidence::StorageQuarantine { gaps, bytes } => {
                write!(
                    f,
                    "provenance store recovered in degraded mode: {gaps} corrupt range(s), {bytes} byte(s) quarantined (R2/R3 continuity not attestable)"
                )
            }
            TamperEvidence::ResumeMismatch {
                oid,
                claimed,
                confirmed,
            } => {
                write!(
                    f,
                    "resume point for object {oid} does not verify: checkpoint proves {claimed} record(s), peer confirmed {confirmed} — history diverged or peer is lying (R2/R3)"
                )
            }
            TamperEvidence::ReplicaDivergence { oid, depth } => {
                write!(
                    f,
                    "replica and primary histories diverge at object {oid} (located in {depth} anti-entropy round(s)) — replicated history altered or forked (R2/R3)"
                )
            }
            TamperEvidence::ForgedRoot { level, index } => {
                write!(
                    f,
                    "anti-entropy node (level {level}, index {index}) fails self-authentication: presented children do not hash to the claimed parent — forged root or tree (R1/R8)"
                )
            }
            TamperEvidence::ForgedDenial { oid } => {
                write!(
                    f,
                    "non-membership proof for object {oid} fails verification — denial forged or the object is held and withheld (R2/R7)"
                )
            }
            TamperEvidence::IncompleteResponse { lo, hi } => {
                write!(
                    f,
                    "range answer [{lo}, {hi}] omits a member its own completeness proof covers — match withheld (R2/R7)"
                )
            }
            TamperEvidence::CheckpointMismatch { oid, seq } => {
                write!(
                    f,
                    "sealed checkpoint conflicts with presented provenance at ({oid}, seq {seq}) — excised history swapped across the compaction boundary (R2/R3)"
                )
            }
        }
    }
}

/// The outcome of verifying one provenance object.
#[derive(Clone, Debug, Default)]
pub struct Verification {
    /// All evidence of tampering found (empty ⇒ verified).
    pub issues: Vec<TamperEvidence>,
    /// Number of records whose signatures were checked.
    pub records_checked: usize,
    /// Participants appearing in the provenance.
    pub participants: BTreeSet<ParticipantId>,
}

impl Verification {
    /// `true` iff no tampering evidence was found.
    pub fn verified(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Recipient-side provenance verifier.
pub struct Verifier<'a> {
    keys: &'a KeyDirectory,
    alg: HashAlgorithm,
    obs: Option<VerifyObs>,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier resolving participants through `keys`.
    pub fn new(keys: &'a KeyDirectory, alg: HashAlgorithm) -> Self {
        Verifier {
            keys,
            alg,
            obs: None,
        }
    }

    /// Attaches tep-obs instrumentation: per-run/record counters, verify
    /// latency, and `tep_core_evidence_<kind>_total` counters.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(VerifyObs::new(registry));
    }

    /// Verifies that `prov` is an untampered history of the object whose
    /// current hash is `object_hash`.
    pub fn verify(&self, object_hash: &[u8], prov: &ProvenanceObject) -> Verification {
        let timer = self.obs.as_ref().map(|o| o.latency_ns.start_timer());
        let v = self.verify_inner(object_hash, prov);
        if let Some(obs) = &self.obs {
            obs.record_outcome(&v);
        }
        drop(timer);
        v
    }

    fn verify_inner(&self, object_hash: &[u8], prov: &ProvenanceObject) -> Verification {
        self.verify_inner_with_prior(object_hash, prov, &HashMap::new())
    }

    /// Like [`Self::verify_inner`], but with a map of *attested prior
    /// records*: `oid → (seq, checksum)` slots a sealed compaction
    /// checkpoint vouches for. A chain-start record whose predecessor was
    /// compacted away resolves through this map — both structurally and
    /// for signature verification (the anchor checksum substitutes for the
    /// excised record's) — instead of surfacing as `MissingRecord`.
    pub(crate) fn verify_inner_with_prior(
        &self,
        object_hash: &[u8],
        prov: &ProvenanceObject,
        prior: &HashMap<ObjectId, (u64, Vec<u8>)>,
    ) -> Verification {
        let mut v = Verification::default();
        let target = prov.target;

        // Index records; detect forks.
        let mut index: HashMap<(ObjectId, u64), &ProvenanceRecord> = HashMap::new();
        for r in &prov.records {
            let key = (r.output_oid, r.seq_id);
            if index.insert(key, r).is_some() {
                v.issues.push(TamperEvidence::DuplicateRecord {
                    oid: key.0,
                    seq: key.1,
                });
            }
        }

        // Condition 1: the delivered object matches the newest record.
        let latest = match prov.latest() {
            Some(r) => r,
            None => {
                v.issues.push(TamperEvidence::NoRecords { oid: target });
                return v;
            }
        };
        if latest.output_hash != object_hash {
            v.issues
                .push(TamperEvidence::OutputMismatch { oid: target });
        }

        // Structural checks per object chain.
        let mut by_object: HashMap<ObjectId, Vec<&ProvenanceRecord>> = HashMap::new();
        for r in &prov.records {
            by_object.entry(r.output_oid).or_default().push(r);
        }
        for (oid, mut chain) in by_object {
            chain.sort_by_key(|r| r.seq_id);
            for (i, r) in chain.iter().enumerate() {
                self.check_shape(r, &mut v);
                let links_to_prior = match r.kind {
                    RecordKind::Insert | RecordKind::Aggregate => None,
                    RecordKind::Update => r.inputs.first().and_then(|inp| inp.prev_seq),
                };
                if i == 0 {
                    // Chain start: must not claim a predecessor we can't see
                    // ... unless it's an aggregate (whose "predecessors" are
                    // the input objects, checked below), a first-touch
                    // update (prev None), or the predecessor is an attested
                    // prior slot (compacted away behind a sealed
                    // checkpoint).
                    if let Some(prev) = links_to_prior {
                        let attested = prior.get(&oid).is_some_and(|(seq, _)| *seq == prev);
                        if !attested {
                            v.issues
                                .push(TamperEvidence::MissingRecord { oid, seq: prev });
                        }
                    }
                } else {
                    let prior = chain[i - 1];
                    match (r.kind, links_to_prior) {
                        (RecordKind::Update, Some(prev)) if prev == prior.seq_id => {}
                        _ => {
                            v.issues
                                .push(TamperEvidence::BrokenChain { oid, seq: r.seq_id });
                        }
                    }
                }
            }
        }

        // Condition 2: every checksum verifies over the record's fields and
        // the stored predecessor checksums (attested prior checksums
        // substitute for compacted-away predecessors).
        for r in &prov.records {
            self.check_signature(r, &index, prior, &mut v);
            v.records_checked += 1;
            v.participants.insert(r.participant);
        }

        // Reachability: everything presented must be part of the target's
        // history (dangling records indicate insertion).
        let mut reachable: HashSet<(ObjectId, u64)> = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back((target, latest.seq_id));
        while let Some(key) = queue.pop_front() {
            if !reachable.insert(key) {
                continue;
            }
            let Some(r) = index.get(&key) else { continue };
            for input in &r.inputs {
                if let Some(prev) = input.prev_seq {
                    queue.push_back((input.oid, prev));
                }
            }
        }
        for r in &prov.records {
            if !reachable.contains(&(r.output_oid, r.seq_id)) {
                v.issues.push(TamperEvidence::ExtraneousRecord {
                    oid: r.output_oid,
                    seq: r.seq_id,
                });
            }
        }

        v
    }

    /// Like [`Self::verify`], but for provenance collected from a durable
    /// store that went through crash recovery: `report` is what
    /// [`tep_storage::ProvenanceDb::recovery`] found at open. A degraded
    /// recovery (quarantined ranges or undecodable records) adds
    /// [`TamperEvidence::StorageQuarantine`], so damaged chains never
    /// verify clean and the `MissingRecord`/`BrokenChain` findings the
    /// gaps cause are attributed to quarantined storage. A benign torn
    /// tail (unacknowledged final append) adds nothing.
    pub fn verify_recovered(
        &self,
        object_hash: &[u8],
        prov: &ProvenanceObject,
        report: &tep_storage::RecoveryReport,
    ) -> Verification {
        let mut v = self.verify(object_hash, prov);
        if report.is_degraded() {
            // Count only *corruption* gaps: compaction-excised ranges are
            // intentional holes (attested by the compaction stamp), not
            // quarantined damage.
            let evidence = TamperEvidence::StorageQuarantine {
                gaps: report.corruption_gaps() as u64 + report.decode_failures,
                bytes: report.quarantined_bytes,
            };
            if let Some(obs) = &self.obs {
                obs.evidence.record(evidence.kind());
                if v.verified() {
                    // The quarantine finding flips this run to tampered.
                    obs.tampered_runs.inc();
                }
            }
            v.issues.push(evidence);
        }
        v
    }

    /// Verifies many `(object hash, provenance object)` pairs concurrently
    /// on `threads` workers, returning one [`Verification`] per pair in
    /// input order.
    ///
    /// Each pair is an independent read-only computation over the shared
    /// [`KeyDirectory`] — distinct objects' chains share no mutable state
    /// (§3.2 per-object chaining) — so the verdicts are exactly those of
    /// calling [`Self::verify`] sequentially; only operations on the *same*
    /// object must stay within one job.
    pub fn verify_all_parallel(
        &self,
        jobs: &[(Vec<u8>, ProvenanceObject)],
        threads: usize,
    ) -> Vec<Verification> {
        parallel_map(threads, jobs, |_, (hash, prov)| self.verify(hash, prov))
    }

    /// Re-verifies a query [`SliceProof`] without trusting the server that
    /// produced it: re-runs the R1–R8 checks over just the slice and
    /// re-computes the answer from the records.
    ///
    /// Checks, in order:
    ///
    /// 1. algorithm agreement and canonical `(oid, seq)` ordering of
    ///    records and boundary links (reordered slices are
    ///    `MalformedRecord`, forks `DuplicateRecord`);
    /// 2. every record's structural shape and checksum signature, with
    ///    predecessor checksums resolving through the slice first and the
    ///    boundary links second — an unresolvable predecessor is
    ///    `MissingRecord`, a forged record `BadSignature`;
    /// 3. **coverage**: the operator's own traversal is re-run over the
    ///    slice. In-bounds nodes the traversal demands must be present as
    ///    records (`MissingRecord`), out-of-bounds crossings must carry a
    ///    boundary checksum (`MissingRecord`), and records or boundary
    ///    links the traversal never touches are `ExtraneousRecord`;
    /// 4. the shipped answer must equal the answer recomputed from the
    ///    slice, else `OutputMismatch`.
    ///
    /// Soundness caveat (also in the `slice` module docs): backward
    /// queries are complete relative to the signed records; for
    /// descendants/audit slices a server can omit qualifying records
    /// undetectably until authenticated denial lands — every record it
    /// *does* return is still fully verified.
    pub fn verify_slice(&self, proof: &SliceProof) -> Verification {
        let timer = self.obs.as_ref().map(|o| o.latency_ns.start_timer());
        let v = self.verify_slice_inner(proof);
        if let Some(obs) = &self.obs {
            obs.record_outcome(&v);
        }
        drop(timer);
        v
    }

    fn verify_slice_inner(&self, proof: &SliceProof) -> Verification {
        let mut v = Verification::default();
        let spec = &proof.spec;

        if proof.alg != self.alg {
            v.issues.push(TamperEvidence::MalformedRecord {
                oid: spec.target,
                seq: proof.target_seq,
                why: "slice hash algorithm mismatch",
            });
            return v;
        }

        // Canonical ordering: the encoding is bijective, so enforcing
        // sorted order here means a reordered slice can never verify.
        for w in proof.records.windows(2) {
            if (w[0].output_oid, w[0].seq_id) >= (w[1].output_oid, w[1].seq_id) {
                v.issues.push(TamperEvidence::MalformedRecord {
                    oid: w[1].output_oid,
                    seq: w[1].seq_id,
                    why: "slice records out of canonical order",
                });
            }
        }
        for w in proof.boundary.windows(2) {
            if (w[0].oid, w[0].seq) >= (w[1].oid, w[1].seq) {
                v.issues.push(TamperEvidence::MalformedRecord {
                    oid: w[1].oid,
                    seq: w[1].seq,
                    why: "boundary links out of canonical order",
                });
            }
        }

        // Index the slice; forks inside it are duplicates, and a boundary
        // link shadowing an in-slice record is a fork too.
        let mut index: HashMap<(ObjectId, u64), &ProvenanceRecord> = HashMap::new();
        for r in &proof.records {
            if index.insert((r.output_oid, r.seq_id), r).is_some() {
                v.issues.push(TamperEvidence::DuplicateRecord {
                    oid: r.output_oid,
                    seq: r.seq_id,
                });
            }
        }
        let mut boundary: HashMap<(ObjectId, u64), &[u8]> = HashMap::new();
        for b in &proof.boundary {
            let key = (b.oid, b.seq);
            if index.contains_key(&key) || boundary.insert(key, &b.checksum).is_some() {
                v.issues.push(TamperEvidence::DuplicateRecord {
                    oid: b.oid,
                    seq: b.seq,
                });
            }
        }

        // Shape + signature of every record, predecessor checksums
        // resolving slice-first, boundary-second. The boundary checksums
        // are covered by the in-slice signatures that chain to them, so a
        // flipped boundary link surfaces as BadSignature.
        for r in &proof.records {
            check_record_shape(r, &mut v.issues);
            check_record_signature(
                self.keys,
                self.alg,
                r,
                |oid, seq| {
                    index
                        .get(&(oid, seq))
                        .map(|p| p.checksum.clone())
                        .or_else(|| boundary.get(&(oid, seq)).map(|c| c.to_vec()))
                },
                &mut v.issues,
            );
            v.records_checked += 1;
            v.participants.insert(r.participant);
        }

        // Coverage + answer recomputation, per operator. `allowed_boundary`
        // accumulates every (oid, seq) a boundary link may legitimately
        // stand for; anything else shipped in the boundary is extraneous.
        let mut allowed_boundary: HashSet<(ObjectId, u64)> = proof
            .records
            .iter()
            .flat_map(|r| {
                r.inputs
                    .iter()
                    .filter_map(|i| i.prev_seq.map(|p| (i.oid, p)))
            })
            .collect();

        let expected = match spec.op {
            QueryOp::Ancestors | QueryOp::LineageSlice | QueryOp::Polynomial => {
                let closure = backward_closure(
                    &spec.bounds,
                    (spec.target, proof.target_seq),
                    usize::MAX,
                    |oid, seq| index.get(&(oid, seq)).map(|r| (*r).clone()),
                );
                for &(oid, seq) in &closure.missing {
                    v.issues.push(TamperEvidence::MissingRecord { oid, seq });
                }
                let kept: HashSet<(ObjectId, u64)> = closure.kept.iter().copied().collect();
                for r in &proof.records {
                    if !kept.contains(&(r.output_oid, r.seq_id)) {
                        v.issues.push(TamperEvidence::ExtraneousRecord {
                            oid: r.output_oid,
                            seq: r.seq_id,
                        });
                    }
                }
                // Every clipped crossing must ship its checksum so the
                // recipient can keep auditing past the bounds.
                for &(oid, seq) in &closure.clipped {
                    allowed_boundary.insert((oid, seq));
                    if !boundary.contains_key(&(oid, seq)) {
                        v.issues.push(TamperEvidence::MissingRecord { oid, seq });
                    }
                }
                if spec.op == QueryOp::Polynomial {
                    QueryAnswer::Polynomial(polynomial_over(
                        &proof.records,
                        (spec.target, proof.target_seq),
                    ))
                } else {
                    let mut oids: Vec<ObjectId> = closure
                        .kept
                        .iter()
                        .map(|&(o, _)| o)
                        .filter(|&o| o != spec.target)
                        .collect();
                    oids.sort();
                    oids.dedup();
                    QueryAnswer::Objects(oids)
                }
            }
            QueryOp::Descendants => {
                // Anchor: the target's record at target_seq proves the
                // subject exists and pins the traversal root.
                let anchor = (spec.target, proof.target_seq);
                if !index.contains_key(&anchor) {
                    v.issues.push(TamperEvidence::MissingRecord {
                        oid: anchor.0,
                        seq: anchor.1,
                    });
                }
                let aggs: Vec<AggEdge> = proof
                    .records
                    .iter()
                    .filter(|r| r.kind == RecordKind::Aggregate)
                    .map(|r| {
                        (
                            r.output_oid,
                            r.seq_id,
                            r.inputs.iter().map(|i| i.oid).collect(),
                        )
                    })
                    .collect();
                let (kept_idx, depth) = forward_closure(&spec.bounds, spec.target, &aggs);
                let kept: HashSet<(ObjectId, u64)> =
                    kept_idx.iter().map(|&i| (aggs[i].0, aggs[i].1)).collect();
                for r in &proof.records {
                    let key = (r.output_oid, r.seq_id);
                    if key != anchor && !kept.contains(&key) {
                        v.issues.push(TamperEvidence::ExtraneousRecord {
                            oid: key.0,
                            seq: key.1,
                        });
                    }
                }
                QueryAnswer::Objects(
                    depth
                        .keys()
                        .copied()
                        .filter(|&o| o != spec.target)
                        .collect(),
                )
            }
            QueryOp::AuditSlice => {
                let Some(who) = spec.participant else {
                    v.issues.push(TamperEvidence::MalformedRecord {
                        oid: spec.target,
                        seq: proof.target_seq,
                        why: "audit slice without a participant",
                    });
                    return v;
                };
                for r in &proof.records {
                    if r.participant != who || !spec.bounds.seq_in_range(r.seq_id) {
                        v.issues.push(TamperEvidence::ExtraneousRecord {
                            oid: r.output_oid,
                            seq: r.seq_id,
                        });
                    }
                }
                let mut oids: Vec<ObjectId> = proof.records.iter().map(|r| r.output_oid).collect();
                oids.sort();
                oids.dedup();
                QueryAnswer::Objects(oids)
            }
        };

        for b in &proof.boundary {
            if !allowed_boundary.contains(&(b.oid, b.seq)) && !index.contains_key(&(b.oid, b.seq)) {
                v.issues.push(TamperEvidence::ExtraneousRecord {
                    oid: b.oid,
                    seq: b.seq,
                });
            }
        }

        if expected != proof.answer {
            v.issues
                .push(TamperEvidence::OutputMismatch { oid: spec.target });
        }

        v
    }

    fn check_shape(&self, r: &ProvenanceRecord, v: &mut Verification) {
        check_record_shape(r, &mut v.issues);
    }

    fn check_signature(
        &self,
        r: &ProvenanceRecord,
        index: &HashMap<(ObjectId, u64), &ProvenanceRecord>,
        prior: &HashMap<ObjectId, (u64, Vec<u8>)>,
        v: &mut Verification,
    ) {
        check_record_signature(
            self.keys,
            self.alg,
            r,
            |oid, seq| {
                index
                    .get(&(oid, seq))
                    .map(|p| p.checksum.clone())
                    .or_else(|| {
                        prior
                            .get(&oid)
                            .filter(|(s, _)| *s == seq)
                            .map(|(_, c)| c.clone())
                    })
            },
            &mut v.issues,
        );
    }

    /// Resolves the key directory for crate-internal verify surfaces
    /// (checkpoint-attested verification lives in `checkpoint.rs`).
    pub(crate) fn keys(&self) -> &KeyDirectory {
        self.keys
    }

    /// Records a finished verification in the attached observability (if
    /// any) — for crate-internal verify surfaces built outside this
    /// module.
    pub(crate) fn record_outcome(&self, v: &Verification) {
        if let Some(obs) = &self.obs {
            obs.record_outcome(v);
        }
    }

    /// Verifies a signed non-membership proof. A proof that fails — bad
    /// root signature, non-authenticating witness path, non-adjacent
    /// witnesses, or a target the witnesses do not straddle — yields
    /// [`TamperEvidence::ForgedDenial`], attributed to the signing (or
    /// claimed) server. An empty issue list means the denial is honest:
    /// the object provably has no leaf under the signed root.
    pub fn verify_denial(&self, denial: &crate::denial::SignedDenial) -> Verification {
        let timer = self.obs.as_ref().map(|o| o.latency_ns.start_timer());
        let mut v = Verification::default();
        if denial.check(self.keys).is_err() {
            v.issues.push(TamperEvidence::ForgedDenial {
                oid: denial.proof.absent,
            });
        }
        if let Some(obs) = &self.obs {
            obs.record_outcome(&v);
        }
        drop(timer);
        v
    }

    /// Verifies a range answer against its signed completeness proof.
    /// `answered` is the member set the server actually served. A proof
    /// that fails verification is [`TamperEvidence::ForgedDenial`] (forged
    /// proof material, anchored at the range's lower bound); a proof that
    /// *verifies* while `answered` omits one of its proven members is
    /// [`TamperEvidence::IncompleteResponse`] (the server withheld a match
    /// it provably holds). Members in `answered` that the proof does not
    /// cover are also `ForgedDenial` — the proof denies them.
    pub fn verify_range(
        &self,
        range: &crate::denial::SignedRange,
        answered: &[ObjectId],
    ) -> Verification {
        let timer = self.obs.as_ref().map(|o| o.latency_ns.start_timer());
        let mut v = Verification::default();
        match range.check(self.keys) {
            Err(_) => {
                v.issues.push(TamperEvidence::ForgedDenial {
                    oid: range.proof.lo,
                });
            }
            Ok(proven) => {
                let proven_set: HashSet<ObjectId> = proven.iter().copied().collect();
                let answered_set: HashSet<ObjectId> = answered.iter().copied().collect();
                if proven.iter().any(|m| !answered_set.contains(m)) {
                    v.issues.push(TamperEvidence::IncompleteResponse {
                        lo: range.proof.lo,
                        hi: range.proof.hi,
                    });
                }
                for &extra in answered {
                    if !proven_set.contains(&extra) {
                        v.issues.push(TamperEvidence::ForgedDenial { oid: extra });
                    }
                }
            }
        }
        if let Some(obs) = &self.obs {
            obs.record_outcome(&v);
        }
        drop(timer);
        v
    }
}

/// Checks one record's structural invariants for its kind; shared by the
/// batch [`Verifier`] and the [`StreamingVerifier`].
fn check_record_shape(r: &ProvenanceRecord, issues: &mut Vec<TamperEvidence>) {
    let flag = |issues: &mut Vec<TamperEvidence>, why| {
        issues.push(TamperEvidence::MalformedRecord {
            oid: r.output_oid,
            seq: r.seq_id,
            why,
        })
    };
    match r.kind {
        RecordKind::Insert => {
            if !r.inputs.is_empty() {
                flag(issues, "insert records must have no inputs");
            }
        }
        RecordKind::Update => {
            if r.inputs.len() != 1 {
                flag(issues, "update records must have exactly one input");
            } else if r.inputs[0].oid != r.output_oid {
                flag(issues, "update input must be the output object itself");
            }
        }
        RecordKind::Aggregate => {
            if r.inputs.is_empty() {
                flag(issues, "aggregate records must have at least one input");
            }
            if r.inputs.windows(2).any(|w| w[0].oid >= w[1].oid) {
                flag(issues, "aggregate inputs must be sorted and distinct");
            }
            if r.inputs.iter().any(|i| i.oid == r.output_oid) {
                flag(issues, "aggregate output must be a fresh object");
            }
        }
    }
}

/// Checks one record's checksum signature, resolving predecessor checksums
/// through `lookup_prev`; missing predecessors are R2/R7 evidence and skip
/// the signature check (it could not possibly pass).
fn check_record_signature(
    keys: &KeyDirectory,
    alg: HashAlgorithm,
    r: &ProvenanceRecord,
    lookup_prev: impl Fn(ObjectId, u64) -> Option<Vec<u8>>,
    issues: &mut Vec<TamperEvidence>,
) {
    let mut prev_checksums: Vec<Vec<u8>> = Vec::new();
    let mut resolvable = true;
    for input in &r.inputs {
        let Some(prev) = input.prev_seq else { continue };
        match lookup_prev(input.oid, prev) {
            Some(c) => prev_checksums.push(c),
            None => {
                issues.push(TamperEvidence::MissingRecord {
                    oid: input.oid,
                    seq: prev,
                });
                resolvable = false;
            }
        }
    }
    if !resolvable {
        return;
    }

    if keys.public_key(r.participant).is_err() {
        issues.push(TamperEvidence::UnknownParticipant {
            participant: r.participant,
        });
        return;
    }
    let prev_refs: Vec<&[u8]> = prev_checksums.iter().map(Vec::as_slice).collect();
    let msg = checksum_message(
        alg,
        r.kind,
        r.seq_id,
        &r.inputs,
        r.output_oid,
        &r.output_hash,
        &r.annotation,
        &prev_refs,
    );
    if keys
        .verify_signature(r.participant, alg, &msg, &r.checksum)
        .is_err()
    {
        issues.push(TamperEvidence::BadSignature {
            oid: r.output_oid,
            seq: r.seq_id,
        });
    }
}

/// Incremental verifier for provenance that arrives **one record at a
/// time** — e.g. over `tep-net` PROV frames — so a recipient can reject a
/// transfer at the first bad record instead of buffering the whole history.
///
/// Records must arrive sorted by `(output_oid, seq_id)`. That order is
/// topological for the provenance DAG (an aggregate's inputs always carry
/// smaller object ids than its freshly allocated output; a chain's earlier
/// records carry smaller sequence ids), so every predecessor checksum a
/// record's signature covers has already been seen. A sender that deviates
/// from the order surfaces as `MissingRecord`/`BrokenChain` evidence —
/// deviation is itself suspicious.
///
/// On the same sorted input, [`finish`](Self::finish) reports the same
/// issue multiset as [`Verifier::verify`] (ordering within the list may
/// differ; both report *all* evidence found). One intentional difference:
/// when the stream carried records but none for the target object, the
/// batch verifier stops at `NoRecords` while the streaming verifier also
/// retains the per-record evidence it already emitted.
pub struct StreamingVerifier<'a> {
    keys: &'a KeyDirectory,
    alg: HashAlgorithm,
    target: ObjectId,
    issues: Vec<TamperEvidence>,
    records_checked: usize,
    participants: BTreeSet<ParticipantId>,
    /// Checksums of every accepted record, for predecessor resolution.
    checksums: HashMap<(ObjectId, u64), Vec<u8>>,
    /// Push order (including duplicate slots), for reachability reporting.
    order: Vec<(ObjectId, u64)>,
    /// Predecessor edges for the final reachability sweep.
    edges: HashMap<(ObjectId, u64), Vec<(ObjectId, u64)>>,
    /// Highest sequence id seen so far per object chain.
    chain_tail: HashMap<ObjectId, u64>,
    /// `(seq_id, output_hash)` of the newest target record.
    latest_target: Option<(u64, Vec<u8>)>,
    /// Rolling digest of the accepted records' canonical bytes, for
    /// proving a resume point to a sender ([`Self::stream_digest`]).
    digest: RecordStreamDigest,
    /// Optional tep-obs instrumentation (shared counter names with the
    /// batch [`Verifier`]).
    obs: Option<VerifyObs>,
}

impl<'a> StreamingVerifier<'a> {
    /// Starts verifying the history of `target`.
    pub fn new(keys: &'a KeyDirectory, alg: HashAlgorithm, target: ObjectId) -> Self {
        StreamingVerifier {
            keys,
            alg,
            target,
            issues: Vec::new(),
            records_checked: 0,
            participants: BTreeSet::new(),
            checksums: HashMap::new(),
            order: Vec::new(),
            edges: HashMap::new(),
            chain_tail: HashMap::new(),
            latest_target: None,
            digest: RecordStreamDigest::new(alg, target),
            obs: None,
        }
    }

    /// Attaches tep-obs instrumentation; evidence found at push/finish time
    /// increments the same `tep_core_evidence_<kind>_total` counters the
    /// batch [`Verifier`] uses.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(VerifyObs::new(registry));
    }

    /// The object whose history is being verified.
    pub fn target(&self) -> ObjectId {
        self.target
    }

    /// All evidence accumulated so far.
    pub fn issues(&self) -> &[TamperEvidence] {
        &self.issues
    }

    /// Records pushed so far.
    pub fn records_checked(&self) -> usize {
        self.records_checked
    }

    /// Feeds the next record; returns how many **new** pieces of evidence
    /// this record produced (0 ⇒ clean so far), letting a transport abort
    /// mid-transfer and attribute the failure to this record's frame.
    pub fn push_record(&mut self, r: &ProvenanceRecord) -> usize {
        let before = self.issues.len();
        let key = (r.output_oid, r.seq_id);

        if self.checksums.contains_key(&key) {
            self.issues.push(TamperEvidence::DuplicateRecord {
                oid: key.0,
                seq: key.1,
            });
        }

        check_record_shape(r, &mut self.issues);

        // Chain structure against the tail seen so far.
        let links_to_prior = match r.kind {
            RecordKind::Insert | RecordKind::Aggregate => None,
            RecordKind::Update => r.inputs.first().and_then(|inp| inp.prev_seq),
        };
        match self.chain_tail.get(&r.output_oid) {
            None => {
                if let Some(prev) = links_to_prior {
                    self.issues.push(TamperEvidence::MissingRecord {
                        oid: r.output_oid,
                        seq: prev,
                    });
                }
            }
            Some(&prior) => match (r.kind, links_to_prior) {
                (RecordKind::Update, Some(prev)) if prev == prior => {}
                _ => {
                    self.issues.push(TamperEvidence::BrokenChain {
                        oid: r.output_oid,
                        seq: r.seq_id,
                    });
                }
            },
        }
        self.chain_tail.insert(r.output_oid, r.seq_id);

        // Signature over the record's fields and already-seen predecessor
        // checksums (topological order guarantees they have arrived).
        let checksums = &self.checksums;
        check_record_signature(
            self.keys,
            self.alg,
            r,
            |oid, seq| checksums.get(&(oid, seq)).cloned(),
            &mut self.issues,
        );

        self.checksums.insert(key, r.checksum.clone());
        self.order.push(key);
        let preds: Vec<(ObjectId, u64)> = r
            .inputs
            .iter()
            .filter_map(|i| i.prev_seq.map(|p| (i.oid, p)))
            .collect();
        self.edges.insert(key, preds);

        if r.output_oid == self.target {
            let newer = self
                .latest_target
                .as_ref()
                .is_none_or(|(seq, _)| r.seq_id >= *seq);
            if newer {
                self.latest_target = Some((r.seq_id, r.output_hash.clone()));
            }
        }

        self.records_checked += 1;
        self.participants.insert(r.participant);
        self.digest.push(&r.to_stored().to_bytes());
        let new_evidence = self.issues.len() - before;
        if let Some(obs) = &self.obs {
            obs.records.inc();
            obs.evidence.record_issues(&self.issues[before..]);
        }
        new_evidence
    }

    /// The rolling digest over the canonical bytes of every record pushed
    /// so far — the proof-of-position a resumable transfer sends in its
    /// RESUME frame.
    pub fn stream_digest(&self) -> &[u8] {
        self.digest.current()
    }

    /// Serializes the verifier's full state into a sealed, self-
    /// authenticating blob (see
    /// [`VerifierCheckpoint`](crate::streaming::VerifierCheckpoint)), or
    /// `None` if any tamper evidence has been found — evidence is
    /// terminal, never suspended and resumed past.
    pub fn checkpoint(&self) -> Option<Vec<u8>> {
        if !self.issues.is_empty() {
            return None;
        }
        let mut participants: Vec<ParticipantId> = self.participants.iter().copied().collect();
        participants.sort();
        let mut chain_tail: Vec<RecordSlot> =
            self.chain_tail.iter().map(|(&o, &s)| (o, s)).collect();
        chain_tail.sort();
        let mut checksums: Vec<(RecordSlot, Vec<u8>)> = self
            .checksums
            .iter()
            .map(|(&k, c)| (k, c.clone()))
            .collect();
        checksums.sort_by_key(|(k, _)| *k);
        let mut edges: Vec<(RecordSlot, Vec<RecordSlot>)> =
            self.edges.iter().map(|(&k, p)| (k, p.clone())).collect();
        edges.sort_by_key(|(k, _)| *k);
        Some(
            VerifierCheckpoint {
                alg: self.alg,
                target: self.target,
                records: self.records_checked as u64,
                stream_digest: self.digest.current().to_vec(),
                latest_target: self.latest_target.clone(),
                participants,
                chain_tail,
                order: self.order.clone(),
                checksums,
                edges,
            }
            .seal(),
        )
    }

    /// Rebuilds a verifier from a sealed checkpoint blob. The blob is
    /// authenticated before anything is trusted; corruption anywhere
    /// yields a [`CheckpointError`], never a silently different verifier.
    /// The restored verifier continues exactly where [`Self::checkpoint`]
    /// stopped: pushing the remaining records and finishing produces the
    /// same verdict as an uninterrupted run.
    pub fn restore(keys: &'a KeyDirectory, blob: &[u8]) -> Result<Self, CheckpointError> {
        let cp = VerifierCheckpoint::open(blob)?;
        Ok(StreamingVerifier {
            keys,
            alg: cp.alg,
            target: cp.target,
            issues: Vec::new(),
            records_checked: cp.records as usize,
            participants: cp.participants.into_iter().collect(),
            checksums: cp.checksums.into_iter().collect(),
            order: cp.order,
            edges: cp.edges.into_iter().collect(),
            chain_tail: cp.chain_tail.into_iter().collect(),
            latest_target: cp.latest_target,
            digest: RecordStreamDigest::resume(cp.alg, cp.stream_digest),
            obs: None,
        })
    }

    /// Finishes: checks the delivered object hash against the newest target
    /// record and sweeps for records unreachable from it.
    pub fn finish(mut self, object_hash: &[u8]) -> Verification {
        let before_finish = self.issues.len();
        let Some((latest_seq, latest_hash)) = self.latest_target.take() else {
            self.issues
                .push(TamperEvidence::NoRecords { oid: self.target });
            return self.conclude(before_finish);
        };
        if latest_hash != object_hash {
            self.issues
                .push(TamperEvidence::OutputMismatch { oid: self.target });
        }

        let mut reachable: HashSet<(ObjectId, u64)> = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back((self.target, latest_seq));
        while let Some(key) = queue.pop_front() {
            if !reachable.insert(key) {
                continue;
            }
            let Some(preds) = self.edges.get(&key) else {
                continue;
            };
            for &p in preds {
                queue.push_back(p);
            }
        }
        for &(oid, seq) in &self.order {
            if !reachable.contains(&(oid, seq)) {
                self.issues
                    .push(TamperEvidence::ExtraneousRecord { oid, seq });
            }
        }

        self.conclude(before_finish)
    }

    /// Records obs for the finish-time evidence and the run as a whole,
    /// then assembles the final [`Verification`].
    fn conclude(mut self, before_finish: usize) -> Verification {
        if let Some(obs) = self.obs.take() {
            obs.evidence.record_issues(&self.issues[before_finish..]);
            obs.runs.inc();
            if !self.issues.is_empty() {
                obs.tampered_runs.inc();
            }
        }
        Verification {
            issues: self.issues,
            records_checked: self.records_checked,
            participants: self.participants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::HashingStrategy;
    use crate::provenance::collect;
    use crate::tracker::{ProvenanceTracker, TrackerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tep_crypto::pki::{CertificateAuthority, Participant};
    use tep_model::{AggregateMode, Value};
    use tep_storage::ProvenanceDb;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    struct World {
        tracker: ProvenanceTracker,
        keys: KeyDirectory,
        alice: Participant,
        bob: Participant,
    }

    fn world() -> World {
        let mut rng = StdRng::seed_from_u64(55);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let bob = ca.enroll(ParticipantId(2), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(alice.certificate().clone()).unwrap();
        keys.register(bob.certificate().clone()).unwrap();
        let tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                strategy: HashingStrategy::Economical,
            },
            Arc::new(ProvenanceDb::in_memory()),
        );
        World {
            tracker,
            keys,
            alice,
            bob,
        }
    }

    #[test]
    fn honest_linear_history_verifies() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        w.tracker.update(&w.bob, a, Value::Int(2)).unwrap();
        w.tracker.update(&w.alice, a, Value::Int(3)).unwrap();
        let prov = collect(w.tracker.db(), a).unwrap();
        let hash = w.tracker.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v.verified(), "issues: {:?}", v.issues);
        assert_eq!(v.records_checked, 3);
        assert_eq!(v.participants.len(), 2);
    }

    #[test]
    fn honest_nonlinear_history_verifies() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::text("a1"), None).unwrap();
        let (b, _) = w.tracker.insert(&w.alice, Value::text("b1"), None).unwrap();
        w.tracker.update(&w.bob, b, Value::text("b2")).unwrap();
        let (c, _) = w
            .tracker
            .aggregate(&w.bob, &[a, b], Value::text("c1"), AggregateMode::Atomic)
            .unwrap();
        w.tracker.update(&w.alice, a, Value::text("a2")).unwrap();
        let (d, _) = w
            .tracker
            .aggregate(&w.alice, &[a, c], Value::text("d1"), AggregateMode::Atomic)
            .unwrap();
        let prov = collect(w.tracker.db(), d).unwrap();
        let hash = w.tracker.object_hash(d).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v.verified(), "issues: {:?}", v.issues);
        assert_eq!(v.records_checked, 6);
    }

    #[test]
    fn honest_compound_history_verifies() {
        let mut w = world();
        let (root, _) = w.tracker.insert(&w.alice, Value::text("db"), None).unwrap();
        let (table, _) = w
            .tracker
            .insert(&w.alice, Value::text("t"), Some(root))
            .unwrap();
        let (row, _) = w.tracker.insert(&w.bob, Value::Null, Some(table)).unwrap();
        let (cell, _) = w.tracker.insert(&w.bob, Value::Int(1), Some(row)).unwrap();
        w.tracker.update(&w.alice, cell, Value::Int(2)).unwrap();
        w.tracker.delete(&w.bob, cell).unwrap();
        // Verify the root's (inherited) chain.
        let prov = collect(w.tracker.db(), root).unwrap();
        let hash = w.tracker.object_hash(root).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v.verified(), "issues: {:?}", v.issues);
    }

    #[test]
    fn degraded_recovery_adds_storage_quarantine_evidence() {
        use tep_storage::{GapKind, LogGap, RecoveryReport};
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        w.tracker.update(&w.bob, a, Value::Int(2)).unwrap();
        let prov = collect(w.tracker.db(), a).unwrap();
        let hash = w.tracker.object_hash(a).unwrap();
        let verifier = Verifier::new(&w.keys, ALG);

        // Clean recovery (even with a benign torn tail) changes nothing.
        let clean = RecoveryReport {
            truncated_bytes: 17,
            ..RecoveryReport::default()
        };
        assert!(verifier.verify_recovered(&hash, &prov, &clean).verified());

        // A quarantined gap must surface even when the surviving chain is
        // internally consistent.
        let degraded = RecoveryReport {
            truncated_bytes: 0,
            gaps: vec![LogGap {
                kind: GapKind::Corruption,
                preceding_frames: 1,
                offset: 40,
                bytes: 64,
            }],
            quarantined_bytes: 64,
            decode_failures: 1,
            compaction: None,
        };
        let v = verifier.verify_recovered(&hash, &prov, &degraded);
        assert!(!v.verified());
        assert!(v
            .issues
            .contains(&TamperEvidence::StorageQuarantine { gaps: 2, bytes: 64 }));
    }

    /// Regression: a compaction-excised gap is an *intentional* hole — it
    /// must never inflate `StorageQuarantine` counts or flip a clean
    /// history to degraded, even alongside a real corruption gap.
    #[test]
    fn compaction_gap_is_not_storage_quarantine() {
        use tep_storage::{GapKind, LogGap, RecoveryReport};
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        let prov = collect(w.tracker.db(), a).unwrap();
        let hash = w.tracker.object_hash(a).unwrap();
        let verifier = Verifier::new(&w.keys, ALG);

        // Compaction-only recovery stays clean.
        let compacted = RecoveryReport {
            gaps: vec![LogGap {
                kind: GapKind::Compacted,
                preceding_frames: 0,
                offset: 12,
                bytes: 4096,
            }],
            ..RecoveryReport::default()
        };
        assert!(
            verifier
                .verify_recovered(&hash, &prov, &compacted)
                .verified(),
            "compaction gap must not degrade recovery"
        );

        // Mixed compaction + corruption: only the corruption gap counts.
        let mixed = RecoveryReport {
            gaps: vec![
                LogGap {
                    kind: GapKind::Compacted,
                    preceding_frames: 0,
                    offset: 12,
                    bytes: 4096,
                },
                LogGap {
                    kind: GapKind::Corruption,
                    preceding_frames: 3,
                    offset: 512,
                    bytes: 64,
                },
            ],
            quarantined_bytes: 64,
            ..RecoveryReport::default()
        };
        let v = verifier.verify_recovered(&hash, &prov, &mixed);
        assert!(v
            .issues
            .contains(&TamperEvidence::StorageQuarantine { gaps: 1, bytes: 64 }));
    }

    #[test]
    fn r1_modified_record_detected() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        w.tracker.update(&w.bob, a, Value::Int(2)).unwrap();
        let mut prov = collect(w.tracker.db(), a).unwrap();
        // Bob's record claims a different input value.
        let idx = prov.records.iter().position(|r| r.seq_id == 1).unwrap();
        prov.records[idx].inputs[0].hash[0] ^= 0xFF;
        let hash = w.tracker.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v
            .issues
            .contains(&TamperEvidence::BadSignature { oid: a, seq: 1 }));
    }

    #[test]
    fn r2_removed_record_detected() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        w.tracker.update(&w.bob, a, Value::Int(2)).unwrap();
        w.tracker.update(&w.alice, a, Value::Int(3)).unwrap();
        let mut prov = collect(w.tracker.db(), a).unwrap();
        // Remove Bob's middle record (seq 1).
        prov.records.retain(|r| r.seq_id != 1);
        let hash = w.tracker.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(!v.verified());
        assert!(v.issues.iter().any(|i| matches!(
            i,
            TamperEvidence::MissingRecord { .. } | TamperEvidence::BrokenChain { .. }
        )));
    }

    #[test]
    fn r4_unrecorded_data_change_detected() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        let prov = collect(w.tracker.db(), a).unwrap();
        // Attacker changes the data out-of-band: hash no longer matches.
        let fake_hash = crate::hashing::hash_atom(ALG, a, &Value::Int(999));
        let v = Verifier::new(&w.keys, ALG).verify(&fake_hash, &prov);
        assert!(v
            .issues
            .contains(&TamperEvidence::OutputMismatch { oid: a }));
    }

    #[test]
    fn r5_reassigned_provenance_detected() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        let (b, _) = w.tracker.insert(&w.bob, Value::Int(1), None).unwrap();
        // Present B's data with A's provenance.
        let prov_a = collect(w.tracker.db(), a).unwrap();
        let hash_b = w.tracker.object_hash(b).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash_b, &prov_a);
        assert!(v
            .issues
            .contains(&TamperEvidence::OutputMismatch { oid: a }));
    }

    #[test]
    fn unknown_participant_detected() {
        let mut w = world();
        let mut rng = StdRng::seed_from_u64(99);
        let rogue_ca = CertificateAuthority::new(512, ALG, &mut rng);
        let mallory = rogue_ca.enroll(ParticipantId(66), 512, &mut rng);
        let (a, _) = w.tracker.insert(&mallory, Value::Int(1), None).unwrap();
        let prov = collect(w.tracker.db(), a).unwrap();
        let hash = w.tracker.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v.issues.contains(&TamperEvidence::UnknownParticipant {
            participant: ParticipantId(66)
        }));
    }

    #[test]
    fn duplicate_seq_detected() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        w.tracker.update(&w.bob, a, Value::Int(2)).unwrap();
        let mut prov = collect(w.tracker.db(), a).unwrap();
        let dup = prov.records[1].clone();
        prov.records.push(dup);
        let hash = w.tracker.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v
            .issues
            .contains(&TamperEvidence::DuplicateRecord { oid: a, seq: 1 }));
    }

    #[test]
    fn parallel_verdicts_identical_to_sequential() {
        let mut w = world();
        // A mix of honest and tampered histories across several objects.
        let mut oids = Vec::new();
        for i in 0..6 {
            let (a, _) = w.tracker.insert(&w.alice, Value::Int(i), None).unwrap();
            w.tracker.update(&w.bob, a, Value::Int(i + 100)).unwrap();
            oids.push(a);
        }
        let (agg, _) = w
            .tracker
            .aggregate(
                &w.bob,
                &[oids[0], oids[1]],
                Value::Int(0),
                AggregateMode::Atomic,
            )
            .unwrap();
        oids.push(agg);

        let mut jobs: Vec<(Vec<u8>, ProvenanceObject)> = oids
            .iter()
            .map(|&oid| {
                (
                    w.tracker.object_hash(oid).unwrap(),
                    collect(w.tracker.db(), oid).unwrap(),
                )
            })
            .collect();
        // Tamper with two of them in different ways.
        jobs[2].0[0] ^= 0xFF; // output mismatch
        jobs[4].1.records[0].checksum[3] ^= 0x01; // bad signature

        let verifier = Verifier::new(&w.keys, ALG);
        let sequential: Vec<Verification> =
            jobs.iter().map(|(h, p)| verifier.verify(h, p)).collect();
        for threads in [1, 2, 8] {
            let parallel = verifier.verify_all_parallel(&jobs, threads);
            assert_eq!(parallel.len(), sequential.len());
            for (par, seq) in parallel.iter().zip(&sequential) {
                assert_eq!(par.issues, seq.issues);
                assert_eq!(par.records_checked, seq.records_checked);
                assert_eq!(par.participants, seq.participants);
            }
        }
    }

    /// Issue lists as order-independent multisets (batch iterates HashMaps,
    /// so intra-list order is not meaningful).
    fn multiset(issues: &[TamperEvidence]) -> Vec<String> {
        let mut v: Vec<String> = issues.iter().map(|i| format!("{i:?}")).collect();
        v.sort();
        v
    }

    /// Records in the wire order `tep-net` sends them: sorted by
    /// `(output_oid, seq_id)`, which is topological for the DAG.
    fn wire_order(prov: &ProvenanceObject) -> Vec<ProvenanceRecord> {
        let mut recs = prov.records.clone();
        recs.sort_by_key(|r| (r.output_oid, r.seq_id));
        recs
    }

    fn dag_world() -> (World, ObjectId) {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::text("a1"), None).unwrap();
        let (b, _) = w.tracker.insert(&w.alice, Value::text("b1"), None).unwrap();
        w.tracker.update(&w.bob, b, Value::text("b2")).unwrap();
        let (c, _) = w
            .tracker
            .aggregate(&w.bob, &[a, b], Value::text("c1"), AggregateMode::Atomic)
            .unwrap();
        w.tracker.update(&w.alice, a, Value::text("a2")).unwrap();
        let (d, _) = w
            .tracker
            .aggregate(&w.alice, &[a, c], Value::text("d1"), AggregateMode::Atomic)
            .unwrap();
        (w, d)
    }

    #[test]
    fn streaming_verifier_accepts_honest_history() {
        let (mut w, d) = dag_world();
        let prov = collect(w.tracker.db(), d).unwrap();
        let hash = w.tracker.object_hash(d).unwrap();

        let mut sv = StreamingVerifier::new(&w.keys, ALG, d);
        for r in &wire_order(&prov) {
            assert_eq!(sv.push_record(r), 0, "clean record flagged: {r:?}");
        }
        let stream = sv.finish(&hash);
        assert!(stream.verified(), "issues: {:?}", stream.issues);

        let batch = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert_eq!(stream.records_checked, batch.records_checked);
        assert_eq!(stream.participants, batch.participants);
    }

    #[test]
    fn streaming_verifier_matches_batch_under_every_tamper() {
        let (mut w, d) = dag_world();
        let prov = collect(w.tracker.db(), d).unwrap();
        let hash = w.tracker.object_hash(d).unwrap();

        for tamper in crate::attack::all_single_record_tampers(&prov, w.bob.id()) {
            let mut tampered = prov.clone();
            assert!(
                crate::attack::apply_tamper(&mut tampered, &tamper),
                "tamper did not apply: {tamper:?}"
            );
            let batch = Verifier::new(&w.keys, ALG).verify(&hash, &tampered);

            let mut sv = StreamingVerifier::new(&w.keys, ALG, d);
            for r in &wire_order(&tampered) {
                sv.push_record(r);
            }
            let stream = sv.finish(&hash);

            assert!(!stream.verified(), "tamper undetected: {tamper:?}");
            assert_eq!(
                multiset(&stream.issues),
                multiset(&batch.issues),
                "verdicts diverge for {tamper:?}"
            );
        }
    }

    #[test]
    fn streaming_verifier_attributes_bad_record_at_push_time() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        w.tracker.update(&w.bob, a, Value::Int(2)).unwrap();
        w.tracker.update(&w.alice, a, Value::Int(3)).unwrap();
        let prov = collect(w.tracker.db(), a).unwrap();
        let hash = w.tracker.object_hash(a).unwrap();

        let mut recs = wire_order(&prov);
        // Corrupt the middle record's checksum: a signature failure a
        // transport must be able to pin on that exact frame.
        let bad_idx = recs.iter().position(|r| r.seq_id == 1).unwrap();
        recs[bad_idx].checksum[5] ^= 0x20;

        let mut sv = StreamingVerifier::new(&w.keys, ALG, a);
        let mut first_bad = None;
        for (i, r) in recs.iter().enumerate() {
            if sv.push_record(r) > 0 && first_bad.is_none() {
                first_bad = Some(i);
            }
        }
        assert_eq!(first_bad, Some(bad_idx), "failure not pinned to the frame");
        assert!(sv
            .issues()
            .contains(&TamperEvidence::BadSignature { oid: a, seq: 1 }));
        assert!(!sv.finish(&hash).verified());
    }

    #[test]
    fn checkpoint_restore_continues_identically_at_every_cut() {
        let (mut w, d) = dag_world();
        let prov = collect(w.tracker.db(), d).unwrap();
        let hash = w.tracker.object_hash(d).unwrap();
        let recs = wire_order(&prov);

        // Uncut baseline.
        let mut sv = StreamingVerifier::new(&w.keys, ALG, d);
        for r in &recs {
            sv.push_record(r);
        }
        let full_digest = sv.stream_digest().to_vec();
        let baseline = sv.finish(&hash);
        assert!(baseline.verified());

        for cut in 0..=recs.len() {
            let mut first = StreamingVerifier::new(&w.keys, ALG, d);
            for r in &recs[..cut] {
                first.push_record(r);
            }
            let blob = first.checkpoint().expect("clean verifier checkpoints");
            let mut resumed = StreamingVerifier::restore(&w.keys, &blob).unwrap();
            assert_eq!(resumed.records_checked(), cut);
            assert_eq!(resumed.stream_digest(), first.stream_digest());
            for r in &recs[cut..] {
                assert_eq!(resumed.push_record(r), 0, "cut {cut} flagged clean record");
            }
            assert_eq!(resumed.stream_digest(), full_digest.as_slice());
            let v = resumed.finish(&hash);
            assert!(v.verified(), "cut {cut}: {:?}", v.issues);
            assert_eq!(v.records_checked, baseline.records_checked);
            assert_eq!(v.participants, baseline.participants);
        }
    }

    #[test]
    fn checkpoint_restore_preserves_tamper_verdict() {
        let (mut w, d) = dag_world();
        let prov = collect(w.tracker.db(), d).unwrap();
        let hash = w.tracker.object_hash(d).unwrap();
        let mut recs = wire_order(&prov);
        let bad_idx = recs.len() - 2;
        recs[bad_idx].checksum[7] ^= 0x40;

        // Uncut tampered run.
        let mut sv = StreamingVerifier::new(&w.keys, ALG, d);
        for r in &recs {
            sv.push_record(r);
        }
        let uncut = sv.finish(&hash);
        assert!(!uncut.verified());

        // Cut before the tampered record, resume, continue: same verdict,
        // same evidence kinds.
        let cut = bad_idx; // tampered record arrives after the resume
        let mut first = StreamingVerifier::new(&w.keys, ALG, d);
        for r in &recs[..cut] {
            first.push_record(r);
        }
        let blob = first.checkpoint().unwrap();
        let mut resumed = StreamingVerifier::restore(&w.keys, &blob).unwrap();
        for r in &recs[cut..] {
            resumed.push_record(r);
        }
        let v = resumed.finish(&hash);
        assert_eq!(multiset(&v.issues), multiset(&uncut.issues));
    }

    #[test]
    fn tampered_verifier_refuses_to_checkpoint() {
        let mut w = world();
        let (a, _) = w.tracker.insert(&w.alice, Value::Int(1), None).unwrap();
        let prov = collect(w.tracker.db(), a).unwrap();
        let mut rec = wire_order(&prov)[0].clone();
        rec.checksum[0] ^= 0xFF;
        let mut sv = StreamingVerifier::new(&w.keys, ALG, a);
        assert!(sv.push_record(&rec) > 0);
        assert!(
            sv.checkpoint().is_none(),
            "evidence must never be suspended into a checkpoint"
        );
    }

    #[test]
    fn streaming_verifier_flags_empty_stream() {
        let w = world();
        let sv = StreamingVerifier::new(&w.keys, ALG, ObjectId(9));
        let v = sv.finish(&[0u8; 32]);
        assert_eq!(
            v.issues,
            vec![TamperEvidence::NoRecords { oid: ObjectId(9) }]
        );
    }

    #[test]
    fn empty_provenance_flagged() {
        let w = world();
        let prov = ProvenanceObject {
            target: ObjectId(5),
            records: vec![],
        };
        let v = Verifier::new(&w.keys, ALG).verify(&[0u8; 32], &prov);
        assert_eq!(
            v.issues,
            vec![TamperEvidence::NoRecords { oid: ObjectId(5) }]
        );
    }
}
