//! Provenance garbage collection.
//!
//! The paper notes (§2.1, footnote 3) that *"after an object has been
//! deleted, its provenance object is no longer relevant"* — which "enables
//! some optimizations". This module is that optimization: given the set of
//! objects still live (or otherwise interesting), compute exactly which
//! records their provenance objects can still reach, and drop the rest.
//!
//! Reachability matters: a deleted object's records must be **kept** if a
//! live object was aggregated from it — pruning them would break the live
//! object's DAG. [`plan_retention`] therefore reuses the same reverse
//! traversal as provenance collection.

//! ## Checkpoint-anchored log compaction
//!
//! Reachability pruning rewrites the whole store; **log compaction**
//! ([`seal_checkpoint`] + [`compact_log`]) instead truncates the durable
//! log's *prefix* behind a [sealed checkpoint](crate::checkpoint): records
//! covered by the checkpoint move to a cold CRC-framed archive file, the
//! live log restarts with a compaction stamp, and later verification
//! attests R2/R3 continuity through the checkpoint's anchors
//! ([`crate::verify::Verifier::verify_through_checkpoint`]). The sealed
//! checkpoint is persisted beside the log and referenced by digest from
//! the stamp, so a stale or swapped checkpoint is detectable.

use crate::checkpoint::{Checkpoint, SealedCheckpoint};
use crate::error::CoreError;
use crate::provenance::collect;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::Participant;
use tep_model::ObjectId;
use tep_storage::{
    compact_durable_log, CheckpointStore, CompactionReport, LogError, ProvenanceDb, StoreError, Vfs,
};

/// Outcome of a prune.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PruneReport {
    /// Records kept (reachable from a live object's provenance).
    pub kept: usize,
    /// Records dropped.
    pub dropped: usize,
}

/// Computes the set of `(object, seqID)` records reachable from the
/// provenance of any object in `live`.
///
/// Objects in `live` without any provenance records are skipped (nothing to
/// retain for them).
pub fn plan_retention(
    db: &ProvenanceDb,
    live: &[ObjectId],
) -> Result<HashSet<(ObjectId, u64)>, CoreError> {
    let mut keep = HashSet::new();
    for &oid in live {
        let prov = match collect(db, oid) {
            Ok(p) => p,
            Err(CoreError::NoProvenance(_)) => continue,
            Err(e) => return Err(e),
        };
        for r in &prov.records {
            keep.insert((r.output_oid, r.seq_id));
        }
    }
    Ok(keep)
}

/// Prunes an **in-memory** store down to the records reachable from `live`.
pub fn prune(db: &ProvenanceDb, live: &[ObjectId]) -> Result<PruneReport, CoreError> {
    let keep = plan_retention(db, live)?;
    let dropped = db
        .retain(|r| keep.contains(&(r.oid, r.seq_id)))
        .map_err(CoreError::Store)?;
    Ok(PruneReport {
        kept: db.len(),
        dropped,
    })
}

/// Compacts a (durable or in-memory) store into a **new durable** store at
/// `path`, keeping only records reachable from `live`.
pub fn prune_into(
    db: &ProvenanceDb,
    path: impl AsRef<Path>,
    live: &[ObjectId],
) -> Result<(ProvenanceDb, PruneReport), CoreError> {
    let keep = plan_retention(db, live)?;
    let new = db
        .compact_into(path, |r| keep.contains(&(r.oid, r.seq_id)))
        .map_err(CoreError::Store)?;
    let report = PruneReport {
        kept: new.len(),
        dropped: db.len() - new.len(),
    };
    Ok((new, report))
}

/// Sidecar path of the sealed checkpoint for the log at `path`.
pub fn checkpoint_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".checkpoint");
    PathBuf::from(os)
}

fn io_err(e: std::io::Error) -> CoreError {
    CoreError::Store(StoreError::Log(LogError::Io(e)))
}

/// Captures and seals a [`Checkpoint`] over the durable log at `path`,
/// persisting it atomically to [`checkpoint_path`]. The log itself is
/// untouched; a later [`compact_log`] truncates up to this checkpoint.
///
/// Sealing and compacting are deliberately separate steps: records
/// appended *after* the seal survive compaction, and their chain starts
/// verify against the sealed anchors.
pub fn seal_checkpoint(
    vfs: Arc<dyn Vfs>,
    path: impl AsRef<Path>,
    alg: HashAlgorithm,
    signer: &Participant,
) -> Result<SealedCheckpoint, CoreError> {
    let path = path.as_ref();
    let db = ProvenanceDb::durable_with(vfs.clone(), path).map_err(CoreError::Store)?;
    let prior = db
        .recovery()
        .compaction
        .map(|s| s.excised_frames)
        .unwrap_or(0);
    let sealed = Checkpoint::capture(alg, &db, prior).seal(signer)?;
    drop(db);
    CheckpointStore::new(vfs, checkpoint_path(path))
        .save(&sealed.to_bytes())
        .map_err(io_err)?;
    Ok(sealed)
}

/// Loads the sealed checkpoint persisted beside the log at `path`, if one
/// exists. Decode failures are surfaced, not treated as absence — a
/// half-written or tampered sidecar should be looked at, and the sealed
/// blob's signature (checked by the caller) handles malice.
pub fn load_checkpoint(
    vfs: Arc<dyn Vfs>,
    path: impl AsRef<Path>,
) -> Result<Option<SealedCheckpoint>, CoreError> {
    let blob = CheckpointStore::new(vfs, checkpoint_path(path.as_ref()))
        .load()
        .map_err(io_err)?;
    blob.map(|b| SealedCheckpoint::from_bytes(&b).map_err(CoreError::Decode))
        .transpose()
}

/// Truncates the durable log at `path` up to its persisted sealed
/// checkpoint: every record the checkpoint covers moves into a cold
/// generation-numbered archive file
/// ([`tep_storage::archive_path_for`]), the live log restarts with a
/// compaction stamp carrying the checkpoint digest, and records appended
/// after the seal survive. Returns the checkpoint compacted against and
/// the compaction report (ratio, archive path, stamp).
///
/// Requires a prior [`seal_checkpoint`]; compacting without one is an
/// error, not a silent full truncation.
pub fn compact_log(
    vfs: Arc<dyn Vfs>,
    path: impl AsRef<Path>,
) -> Result<(SealedCheckpoint, CompactionReport), CoreError> {
    let path = path.as_ref();
    let sealed = load_checkpoint(vfs.clone(), path)?.ok_or_else(|| {
        io_err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            "no sealed checkpoint beside log; run seal_checkpoint first",
        ))
    })?;
    let watermark = sealed.checkpoint.log_records;
    let digest = sealed.checkpoint.digest();
    // Records at cumulative position < watermark are covered by the
    // checkpoint and excised; compact_durable_log folds the prior stamp's
    // excised count into the index it hands us.
    let prior = {
        let db = ProvenanceDb::durable_with(vfs.clone(), path).map_err(CoreError::Store)?;
        db.recovery()
            .compaction
            .map(|s| s.excised_frames)
            .unwrap_or(0)
    };
    let report = compact_durable_log(
        vfs,
        path,
        |idx, _| prior + idx as u64 >= watermark,
        watermark,
        &digest,
    )
    .map_err(|e| CoreError::Store(StoreError::Log(e)))?;
    Ok((sealed, report))
}

/// Convenience: prunes everything not reachable from the forest's current
/// roots (the natural "live set" for a tracker-managed database).
pub fn prune_to_forest(
    db: &ProvenanceDb,
    forest: &tep_model::Forest,
) -> Result<PruneReport, CoreError> {
    let live: Vec<ObjectId> = forest.ids().collect();
    prune(db, &live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicLedger;
    use crate::verify::Verifier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tep_crypto::digest::HashAlgorithm;
    use tep_crypto::pki::{CertificateAuthority, KeyDirectory, Participant, ParticipantId};
    use tep_model::Value;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    /// A temp-log path that unlinks itself on scope exit — including the
    /// unwind path of a failed assertion, which the old trailing
    /// `remove_file` call missed, leaking `tep-gc-*.teplog` files into
    /// `temp_dir()` on every red run.
    struct TempLog(std::path::PathBuf);

    impl TempLog {
        fn new(line: u32) -> Self {
            let path =
                std::env::temp_dir().join(format!("tep-gc-{}-{}.teplog", std::process::id(), line));
            let _ = std::fs::remove_file(&path);
            TempLog(path)
        }

        fn path(&self) -> &std::path::Path {
            &self.0
        }
    }

    impl Drop for TempLog {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn world() -> (AtomicLedger, KeyDirectory, Participant) {
        let mut rng = StdRng::seed_from_u64(44);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let p = ca.enroll(ParticipantId(1), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(p.certificate().clone()).unwrap();
        (
            AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory())),
            keys,
            p,
        )
    }

    #[test]
    fn pruning_drops_deleted_objects_records() {
        let (mut ledger, _, p) = world();
        let a = ledger.insert(&p, Value::Int(1)).unwrap();
        let b = ledger.insert(&p, Value::Int(2)).unwrap();
        ledger.update(&p, b, Value::Int(3)).unwrap();
        ledger.delete(b).unwrap();

        let report = prune(ledger.db(), &[a]).unwrap();
        assert_eq!(report.kept, 1); // a's insert
        assert_eq!(report.dropped, 2); // b's two records
        assert!(ledger.db().records_for(b).is_empty());
    }

    #[test]
    fn pruning_keeps_aggregation_inputs_of_live_objects() {
        let (mut ledger, keys, p) = world();
        let a = ledger.insert(&p, Value::Int(1)).unwrap();
        let b = ledger.insert(&p, Value::Int(2)).unwrap();
        let c = ledger.aggregate(&p, &[a, b], Value::Int(3)).unwrap();
        // a and b are deleted — but c derives from them, so their records
        // must survive a prune with live = {c}.
        ledger.delete(a).unwrap();
        ledger.delete(b).unwrap();

        let report = prune(ledger.db(), &[c]).unwrap();
        assert_eq!(report.dropped, 0);
        assert_eq!(report.kept, 3);

        // c still fully verifies after the prune.
        let prov = ledger.provenance_of(c).unwrap();
        let hash = ledger.object_hash(c).unwrap();
        assert!(Verifier::new(&keys, ALG).verify(&hash, &prov).verified());
    }

    #[test]
    fn pruning_trims_unreachable_suffix_of_input_chains() {
        let (mut ledger, keys, p) = world();
        let a = ledger.insert(&p, Value::Int(1)).unwrap();
        let c = ledger.aggregate(&p, &[a], Value::Int(2)).unwrap();
        // a keeps evolving after the aggregation…
        ledger.update(&p, a, Value::Int(10)).unwrap();
        ledger.update(&p, a, Value::Int(11)).unwrap();
        ledger.delete(a).unwrap();

        // …but only a@0 is part of c's provenance; the later records drop.
        let report = prune(ledger.db(), &[c]).unwrap();
        assert_eq!(report.dropped, 2);
        let prov = ledger.provenance_of(c).unwrap();
        assert_eq!(prov.len(), 2);
        let hash = ledger.object_hash(c).unwrap();
        assert!(Verifier::new(&keys, ALG).verify(&hash, &prov).verified());
    }

    #[test]
    fn prune_into_produces_verifiable_durable_copy() {
        let (mut ledger, keys, p) = world();
        let a = ledger.insert(&p, Value::Int(1)).unwrap();
        let b = ledger.insert(&p, Value::Int(2)).unwrap();
        ledger.delete(b).unwrap();

        let log = TempLog::new(line!());
        let (new_db, report) = prune_into(ledger.db(), log.path(), &[a]).unwrap();
        assert_eq!(report.dropped, 1);
        assert_eq!(new_db.len(), 1);

        let prov = collect(&new_db, a).unwrap();
        let hash = ledger.object_hash(a).unwrap();
        assert!(Verifier::new(&keys, ALG).verify(&hash, &prov).verified());
    }

    #[test]
    fn empty_live_set_drops_everything() {
        let (mut ledger, _, p) = world();
        ledger.insert(&p, Value::Int(1)).unwrap();
        let report = prune(ledger.db(), &[]).unwrap();
        assert_eq!(report.kept, 0);
        assert_eq!(report.dropped, 1);
        assert!(ledger.db().is_empty());
    }

    /// Removes compaction sidecars (checkpoint + archives) on scope exit,
    /// including the unwind path.
    struct Sidecars(std::path::PathBuf);

    impl Drop for Sidecars {
        fn drop(&mut self) {
            for suffix in [
                ".checkpoint",
                ".checkpoint.tmp",
                ".archive.1",
                ".archive.2",
                ".archive.3",
            ] {
                let mut os = self.0.as_os_str().to_os_string();
                os.push(suffix);
                let _ = std::fs::remove_file(std::path::PathBuf::from(os));
            }
        }
    }

    #[test]
    fn checkpointed_compaction_verifies_through_checkpoint() {
        use crate::verify::TamperEvidence;
        use tep_crypto::pki::CertificateAuthority;
        use tep_storage::RealVfs;

        let mut rng = StdRng::seed_from_u64(45);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let p = ca.enroll(ParticipantId(1), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(p.certificate().clone()).unwrap();

        let log = TempLog::new(line!());
        let _sidecars = Sidecars(log.path().to_path_buf());
        let vfs: Arc<dyn Vfs> = Arc::new(RealVfs);

        let (a, hash) = {
            let db = Arc::new(ProvenanceDb::durable_with(vfs.clone(), log.path()).unwrap());
            let mut ledger = AtomicLedger::new(ALG, db.clone());
            let a = ledger.insert(&p, Value::Int(1)).unwrap();
            ledger.update(&p, a, Value::Int(2)).unwrap();
            db.sync().unwrap();

            // Seal over seq 0..=1, then keep appending: the post-seal
            // record must survive compaction.
            let sealed = seal_checkpoint(vfs.clone(), log.path(), ALG, &p).unwrap();
            assert_eq!(sealed.checkpoint.log_records, 2);
            assert_eq!(sealed.checkpoint.anchors.len(), 1);

            ledger.update(&p, a, Value::Int(3)).unwrap();
            db.sync().unwrap();
            (a, ledger.object_hash(a).unwrap())
        };

        let (sealed, report) = compact_log(vfs.clone(), log.path()).unwrap();
        assert_eq!(report.excised_frames, 2);
        assert_eq!(report.kept_frames, 1);
        assert!(report.archive_path.is_some());
        assert!(report.ratio() > 1.0, "ratio: {}", report.ratio());

        // Reopen: the stamp reports compaction — never corruption.
        let db = ProvenanceDb::durable_with(vfs.clone(), log.path()).unwrap();
        let recovery = db.recovery();
        assert_eq!(recovery.corruption_gaps(), 0);
        assert!(!recovery.is_degraded());
        assert_eq!(recovery.compaction.as_ref().unwrap().excised_frames, 2);
        assert_eq!(db.len(), 1);

        let prov = collect(&db, a).unwrap();
        let verifier = Verifier::new(&keys, ALG);
        // Plain verification cannot attest continuity across the
        // compaction boundary (the chain start's predecessor is excised)…
        assert!(!verifier.verify(&hash, &prov).verified());
        // …but through the sealed checkpoint it verifies end to end.
        let v = verifier.verify_through_checkpoint(&hash, &prov, &sealed);
        assert!(v.verified(), "issues: {:?}", v.issues);

        // A tampered checkpoint (anchor checksum flipped ⇒ seal no longer
        // covers it) is caught and attributed.
        let mut forged = sealed.clone();
        forged.checkpoint.anchors[0].checksum[0] ^= 0xFF;
        let v = verifier.verify_through_checkpoint(&hash, &prov, &forged);
        assert!(v
            .issues
            .iter()
            .any(|i| matches!(i, TamperEvidence::CheckpointMismatch { .. })));

        // The persisted sidecar round-trips.
        let loaded = load_checkpoint(vfs, log.path()).unwrap().unwrap();
        assert_eq!(loaded, sealed);
    }

    #[test]
    fn compact_without_checkpoint_is_an_error() {
        let log = TempLog::new(line!());
        let _sidecars = Sidecars(log.path().to_path_buf());
        let vfs: Arc<dyn Vfs> = Arc::new(tep_storage::RealVfs);
        let db = ProvenanceDb::durable_with(vfs.clone(), log.path()).unwrap();
        drop(db);
        assert!(compact_log(vfs, log.path()).is_err());
    }
}
