//! Provenance garbage collection.
//!
//! The paper notes (§2.1, footnote 3) that *"after an object has been
//! deleted, its provenance object is no longer relevant"* — which "enables
//! some optimizations". This module is that optimization: given the set of
//! objects still live (or otherwise interesting), compute exactly which
//! records their provenance objects can still reach, and drop the rest.
//!
//! Reachability matters: a deleted object's records must be **kept** if a
//! live object was aggregated from it — pruning them would break the live
//! object's DAG. [`plan_retention`] therefore reuses the same reverse
//! traversal as provenance collection.

use crate::error::CoreError;
use crate::provenance::collect;
use std::collections::HashSet;
use std::path::Path;
use tep_model::ObjectId;
use tep_storage::ProvenanceDb;

/// Outcome of a prune.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PruneReport {
    /// Records kept (reachable from a live object's provenance).
    pub kept: usize,
    /// Records dropped.
    pub dropped: usize,
}

/// Computes the set of `(object, seqID)` records reachable from the
/// provenance of any object in `live`.
///
/// Objects in `live` without any provenance records are skipped (nothing to
/// retain for them).
pub fn plan_retention(
    db: &ProvenanceDb,
    live: &[ObjectId],
) -> Result<HashSet<(ObjectId, u64)>, CoreError> {
    let mut keep = HashSet::new();
    for &oid in live {
        let prov = match collect(db, oid) {
            Ok(p) => p,
            Err(CoreError::NoProvenance(_)) => continue,
            Err(e) => return Err(e),
        };
        for r in &prov.records {
            keep.insert((r.output_oid, r.seq_id));
        }
    }
    Ok(keep)
}

/// Prunes an **in-memory** store down to the records reachable from `live`.
pub fn prune(db: &ProvenanceDb, live: &[ObjectId]) -> Result<PruneReport, CoreError> {
    let keep = plan_retention(db, live)?;
    let dropped = db
        .retain(|r| keep.contains(&(r.oid, r.seq_id)))
        .map_err(CoreError::Store)?;
    Ok(PruneReport {
        kept: db.len(),
        dropped,
    })
}

/// Compacts a (durable or in-memory) store into a **new durable** store at
/// `path`, keeping only records reachable from `live`.
pub fn prune_into(
    db: &ProvenanceDb,
    path: impl AsRef<Path>,
    live: &[ObjectId],
) -> Result<(ProvenanceDb, PruneReport), CoreError> {
    let keep = plan_retention(db, live)?;
    let new = db
        .compact_into(path, |r| keep.contains(&(r.oid, r.seq_id)))
        .map_err(CoreError::Store)?;
    let report = PruneReport {
        kept: new.len(),
        dropped: db.len() - new.len(),
    };
    Ok((new, report))
}

/// Convenience: prunes everything not reachable from the forest's current
/// roots (the natural "live set" for a tracker-managed database).
pub fn prune_to_forest(
    db: &ProvenanceDb,
    forest: &tep_model::Forest,
) -> Result<PruneReport, CoreError> {
    let live: Vec<ObjectId> = forest.ids().collect();
    prune(db, &live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicLedger;
    use crate::verify::Verifier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tep_crypto::digest::HashAlgorithm;
    use tep_crypto::pki::{CertificateAuthority, KeyDirectory, Participant, ParticipantId};
    use tep_model::Value;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    /// A temp-log path that unlinks itself on scope exit — including the
    /// unwind path of a failed assertion, which the old trailing
    /// `remove_file` call missed, leaking `tep-gc-*.teplog` files into
    /// `temp_dir()` on every red run.
    struct TempLog(std::path::PathBuf);

    impl TempLog {
        fn new(line: u32) -> Self {
            let path =
                std::env::temp_dir().join(format!("tep-gc-{}-{}.teplog", std::process::id(), line));
            let _ = std::fs::remove_file(&path);
            TempLog(path)
        }

        fn path(&self) -> &std::path::Path {
            &self.0
        }
    }

    impl Drop for TempLog {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn world() -> (AtomicLedger, KeyDirectory, Participant) {
        let mut rng = StdRng::seed_from_u64(44);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let p = ca.enroll(ParticipantId(1), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(p.certificate().clone()).unwrap();
        (
            AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory())),
            keys,
            p,
        )
    }

    #[test]
    fn pruning_drops_deleted_objects_records() {
        let (mut ledger, _, p) = world();
        let a = ledger.insert(&p, Value::Int(1)).unwrap();
        let b = ledger.insert(&p, Value::Int(2)).unwrap();
        ledger.update(&p, b, Value::Int(3)).unwrap();
        ledger.delete(b).unwrap();

        let report = prune(ledger.db(), &[a]).unwrap();
        assert_eq!(report.kept, 1); // a's insert
        assert_eq!(report.dropped, 2); // b's two records
        assert!(ledger.db().records_for(b).is_empty());
    }

    #[test]
    fn pruning_keeps_aggregation_inputs_of_live_objects() {
        let (mut ledger, keys, p) = world();
        let a = ledger.insert(&p, Value::Int(1)).unwrap();
        let b = ledger.insert(&p, Value::Int(2)).unwrap();
        let c = ledger.aggregate(&p, &[a, b], Value::Int(3)).unwrap();
        // a and b are deleted — but c derives from them, so their records
        // must survive a prune with live = {c}.
        ledger.delete(a).unwrap();
        ledger.delete(b).unwrap();

        let report = prune(ledger.db(), &[c]).unwrap();
        assert_eq!(report.dropped, 0);
        assert_eq!(report.kept, 3);

        // c still fully verifies after the prune.
        let prov = ledger.provenance_of(c).unwrap();
        let hash = ledger.object_hash(c).unwrap();
        assert!(Verifier::new(&keys, ALG).verify(&hash, &prov).verified());
    }

    #[test]
    fn pruning_trims_unreachable_suffix_of_input_chains() {
        let (mut ledger, keys, p) = world();
        let a = ledger.insert(&p, Value::Int(1)).unwrap();
        let c = ledger.aggregate(&p, &[a], Value::Int(2)).unwrap();
        // a keeps evolving after the aggregation…
        ledger.update(&p, a, Value::Int(10)).unwrap();
        ledger.update(&p, a, Value::Int(11)).unwrap();
        ledger.delete(a).unwrap();

        // …but only a@0 is part of c's provenance; the later records drop.
        let report = prune(ledger.db(), &[c]).unwrap();
        assert_eq!(report.dropped, 2);
        let prov = ledger.provenance_of(c).unwrap();
        assert_eq!(prov.len(), 2);
        let hash = ledger.object_hash(c).unwrap();
        assert!(Verifier::new(&keys, ALG).verify(&hash, &prov).verified());
    }

    #[test]
    fn prune_into_produces_verifiable_durable_copy() {
        let (mut ledger, keys, p) = world();
        let a = ledger.insert(&p, Value::Int(1)).unwrap();
        let b = ledger.insert(&p, Value::Int(2)).unwrap();
        ledger.delete(b).unwrap();

        let log = TempLog::new(line!());
        let (new_db, report) = prune_into(ledger.db(), log.path(), &[a]).unwrap();
        assert_eq!(report.dropped, 1);
        assert_eq!(new_db.len(), 1);

        let prov = collect(&new_db, a).unwrap();
        let hash = ledger.object_hash(a).unwrap();
        assert!(Verifier::new(&keys, ALG).verify(&hash, &prov).verified());
    }

    #[test]
    fn empty_live_set_drops_everything() {
        let (mut ledger, _, p) = world();
        ledger.insert(&p, Value::Int(1)).unwrap();
        let report = prune(ledger.db(), &[]).unwrap();
        assert_eq!(report.kept, 0);
        assert_eq!(report.dropped, 1);
        assert!(ledger.db().is_empty());
    }
}
