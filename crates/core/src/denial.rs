//! Authenticated denial: signed non-membership and completeness proofs.
//!
//! The paper makes tampering with *present* records evident; a server can
//! still lie by **omission** — "no such entry" is unfalsifiable, and a
//! range answer can silently withhold a match. This module closes both
//! gaps on top of the [`ShardTree`](crate::merkle::ShardTree) over the
//! sorted object-ID space:
//!
//! * a **non-membership proof** ([`DenialProof`]) shows the two leaves
//!   adjacent to where an absent ID *would* sort, each carrying an
//!   authenticated sibling path to the root — since leaves are sorted and
//!   the paths pin their positions, adjacent leaves straddling the ID
//!   prove no leaf between them exists;
//! * a **completeness proof** ([`RangeProof`]) shows a contiguous run of
//!   leaves covering an ID range plus the straddling boundary leaves —
//!   any withheld match would have to occupy one of the proven positions;
//! * a [`SignedRoot`] binds either proof to a server identity: the root,
//!   shape, and a monotonic `log_records` high-water mark are signed by
//!   the serving participant, so a forged proof is *attributable* and a
//!   pre-compaction stale root is detectable by replicas.
//!
//! Verification failures are typed ([`DenialFault`]) so the caller can
//! attribute the right evidence kind: a proof that does not verify is
//! `ForgedDenial`, a range answer that omits a proven member is
//! `IncompleteResponse` (see `crate::verify`).

use crate::merkle::{leaf_hash, ShardTree};
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{KeyDirectory, Participant};
use tep_model::encode::{DecodeError, Reader};
use tep_model::{ObjectId, ParticipantId};

/// Domain separator for root signatures.
const ROOT_SIGN_TAG: &[u8] = b"tep-root-sign\x01";

/// Why a denial or completeness proof failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DenialFault {
    /// The root signature does not verify against the claimed signer.
    BadRootSignature,
    /// The denial targets an ID the proof itself shows to be present, or
    /// the witnesses do not straddle the target.
    TargetCovered,
    /// A witness leaf's sibling path does not recombine to the signed
    /// root at its claimed position.
    BadPath,
    /// The witnesses are not adjacent leaves (a leaf could hide between
    /// them).
    NotAdjacent,
    /// Leaf object IDs violate sorted order relative to the claim.
    OrderViolation,
    /// A boundary witness is missing where the shape requires one (e.g.
    /// no predecessor presented but the successor is not leaf 0).
    MissingWitness,
    /// The proof bytes do not decode.
    Malformed,
}

impl std::fmt::Display for DenialFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DenialFault::BadRootSignature => write!(f, "root signature does not verify"),
            DenialFault::TargetCovered => write!(f, "denial target is covered by a leaf"),
            DenialFault::BadPath => write!(f, "sibling path fails authentication"),
            DenialFault::NotAdjacent => write!(f, "witness leaves are not adjacent"),
            DenialFault::OrderViolation => write!(f, "leaf order contradicts the claim"),
            DenialFault::MissingWitness => write!(f, "required boundary witness missing"),
            DenialFault::Malformed => write!(f, "proof bytes do not decode"),
        }
    }
}

/// One witness leaf: its position, identity, history digest (the
/// leaf-hash preimage) and authenticated sibling path to the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenialLeaf {
    /// The leaf's index in the sorted leaf space.
    pub index: u64,
    /// The object stored at that leaf.
    pub oid: ObjectId,
    /// The object's record-history digest (leaf-hash preimage).
    pub digest: Vec<u8>,
    /// Sibling hash per level below the root (`None` = unpaired tail).
    pub path: Vec<Option<Vec<u8>>>,
}

impl DenialLeaf {
    /// Extracts the witness for leaf `index` of `tree`.
    pub fn witness(tree: &ShardTree, index: u64) -> Option<DenialLeaf> {
        Some(DenialLeaf {
            index,
            oid: tree.leaf_oid(index)?,
            digest: tree.leaf_digest(index)?.to_vec(),
            path: tree.leaf_path(index)?,
        })
    }

    /// Checks this witness against a root: recomputes the leaf hash from
    /// `(oid, digest)` — binding the claimed identity — and verifies the
    /// positional sibling path.
    pub fn check(&self, alg: HashAlgorithm, root: &[u8], leaf_count: u64) -> bool {
        let leaf = leaf_hash(alg, self.oid, &self.digest);
        ShardTree::verify_leaf_path(alg, root, leaf_count, self.index, &leaf, &self.path)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.index.to_be_bytes());
        out.extend_from_slice(&self.oid.raw().to_be_bytes());
        out.extend_from_slice(&(self.digest.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.digest);
        out.extend_from_slice(&(self.path.len() as u32).to_be_bytes());
        for entry in &self.path {
            match entry {
                Some(h) => {
                    out.push(1);
                    out.extend_from_slice(&(h.len() as u64).to_be_bytes());
                    out.extend_from_slice(h);
                }
                None => out.push(0),
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let index = r.u64()?;
        let oid = ObjectId(r.u64()?);
        let digest = r.len_prefixed()?.to_vec();
        let n = r.u32()? as usize;
        // A path longer than 64 levels is impossible for a u64 ID space.
        if n > 64 {
            return Err(DecodeError::UnexpectedEof);
        }
        let mut path = Vec::with_capacity(n);
        for _ in 0..n {
            path.push(match r.u8()? {
                0 => None,
                1 => Some(r.len_prefixed()?.to_vec()),
                t => return Err(DecodeError::BadTag(t)),
            });
        }
        Ok(DenialLeaf {
            index,
            oid,
            digest,
            path,
        })
    }
}

fn encode_opt_leaf(leaf: &Option<DenialLeaf>, out: &mut Vec<u8>) {
    match leaf {
        Some(l) => {
            out.push(1);
            l.encode_into(out);
        }
        None => out.push(0),
    }
}

fn decode_opt_leaf(r: &mut Reader<'_>) -> Result<Option<DenialLeaf>, DecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(DenialLeaf::decode(r)?)),
        t => Err(DecodeError::BadTag(t)),
    }
}

/// A non-membership ("gap") proof for one absent object ID.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenialProof {
    /// The ID claimed absent.
    pub absent: ObjectId,
    /// The greatest leaf below `absent` (`None` when `absent` sorts
    /// before the whole shard).
    pub pred: Option<DenialLeaf>,
    /// The least leaf above `absent` (`None` when `absent` sorts after
    /// the whole shard).
    pub succ: Option<DenialLeaf>,
}

impl DenialProof {
    /// Builds the gap proof for `oid` from `tree`, or `None` when the
    /// object is present (a present ID has no honest denial).
    pub fn prove(tree: &ShardTree, oid: ObjectId) -> Option<DenialProof> {
        let insertion = match tree.oid_position(oid) {
            Ok(_) => return None,
            Err(i) => i,
        };
        let pred = insertion
            .checked_sub(1)
            .and_then(|i| DenialLeaf::witness(tree, i));
        let succ = if insertion < tree.leaf_count() {
            DenialLeaf::witness(tree, insertion)
        } else {
            None
        };
        Some(DenialProof {
            absent: oid,
            pred,
            succ,
        })
    }

    /// Verifies the gap claim against a root: both witnesses authenticate
    /// at their positions, they are adjacent, and they straddle `absent`.
    pub fn check(
        &self,
        alg: HashAlgorithm,
        root: &[u8],
        leaf_count: u64,
    ) -> Result<(), DenialFault> {
        if leaf_count == 0 {
            // An empty shard denies everything; the root must be the
            // canonical empty root and no witnesses may be presented.
            if self.pred.is_some() || self.succ.is_some() {
                return Err(DenialFault::MissingWitness);
            }
            if root != ShardTree::empty_root(alg) {
                return Err(DenialFault::BadPath);
            }
            return Ok(());
        }
        match (&self.pred, &self.succ) {
            (None, None) => Err(DenialFault::MissingWitness),
            (None, Some(succ)) => {
                if succ.index != 0 {
                    return Err(DenialFault::MissingWitness);
                }
                if !succ.check(alg, root, leaf_count) {
                    return Err(DenialFault::BadPath);
                }
                if self.absent >= succ.oid {
                    return Err(DenialFault::OrderViolation);
                }
                Ok(())
            }
            (Some(pred), None) => {
                if pred.index + 1 != leaf_count {
                    return Err(DenialFault::MissingWitness);
                }
                if !pred.check(alg, root, leaf_count) {
                    return Err(DenialFault::BadPath);
                }
                if self.absent <= pred.oid {
                    return Err(DenialFault::OrderViolation);
                }
                Ok(())
            }
            (Some(pred), Some(succ)) => {
                if succ.index != pred.index + 1 {
                    return Err(DenialFault::NotAdjacent);
                }
                if !pred.check(alg, root, leaf_count) || !succ.check(alg, root, leaf_count) {
                    return Err(DenialFault::BadPath);
                }
                if !(pred.oid < self.absent && self.absent < succ.oid) {
                    return Err(DenialFault::OrderViolation);
                }
                Ok(())
            }
        }
    }

    /// Canonical encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.absent.raw().to_be_bytes());
        encode_opt_leaf(&self.pred, &mut out);
        encode_opt_leaf(&self.succ, &mut out);
        out
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let absent = ObjectId(r.u64()?);
        let pred = decode_opt_leaf(r)?;
        let succ = decode_opt_leaf(r)?;
        Ok(DenialProof { absent, pred, succ })
    }

    /// Decodes a [`DenialProof::to_bytes`] encoding.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let p = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(p)
    }
}

/// A completeness proof for an inclusive object-ID range: every member is
/// presented with an authenticated path, the members are contiguous in
/// the leaf space, and boundary witnesses straddle the range — no
/// qualifying leaf can have been withheld.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeProof {
    /// Inclusive lower bound of the claimed range.
    pub lo: ObjectId,
    /// Inclusive upper bound.
    pub hi: ObjectId,
    /// Every leaf whose object falls in `[lo, hi]`, in leaf order.
    pub members: Vec<DenialLeaf>,
    /// The greatest leaf below `lo` (`None` when the members start at
    /// leaf 0).
    pub pred: Option<DenialLeaf>,
    /// The least leaf above `hi` (`None` when the members end the shard).
    pub succ: Option<DenialLeaf>,
}

impl RangeProof {
    /// Builds the completeness proof for `[lo, hi]` from `tree`.
    pub fn prove(tree: &ShardTree, lo: ObjectId, hi: ObjectId) -> RangeProof {
        let start = match tree.oid_position(lo) {
            Ok(i) | Err(i) => i,
        };
        let mut members = Vec::new();
        let mut at = start;
        while let Some(oid) = tree.leaf_oid(at) {
            if oid > hi {
                break;
            }
            members.push(DenialLeaf::witness(tree, at).expect("in-range leaf"));
            at += 1;
        }
        let pred = start
            .checked_sub(1)
            .and_then(|i| DenialLeaf::witness(tree, i));
        let succ = if at < tree.leaf_count() {
            DenialLeaf::witness(tree, at)
        } else {
            None
        };
        RangeProof {
            lo,
            hi,
            members,
            pred,
            succ,
        }
    }

    /// Verifies completeness against a root and returns the proven member
    /// set — the caller cross-checks it against whatever the server
    /// actually answered (an answer missing a proven member, or a proof
    /// missing a leaf the boundaries require, is an omission).
    pub fn check(
        &self,
        alg: HashAlgorithm,
        root: &[u8],
        leaf_count: u64,
    ) -> Result<Vec<ObjectId>, DenialFault> {
        if self.lo > self.hi {
            return Err(DenialFault::OrderViolation);
        }
        if leaf_count == 0 {
            if self.pred.is_some() || self.succ.is_some() || !self.members.is_empty() {
                return Err(DenialFault::MissingWitness);
            }
            if root != ShardTree::empty_root(alg) {
                return Err(DenialFault::BadPath);
            }
            return Ok(Vec::new());
        }

        // Establish the contiguous index run the proof must cover.
        let first = match &self.pred {
            Some(pred) => {
                if !pred.check(alg, root, leaf_count) {
                    return Err(DenialFault::BadPath);
                }
                if pred.oid >= self.lo {
                    return Err(DenialFault::OrderViolation);
                }
                pred.index + 1
            }
            None => 0,
        };
        let mut at = first;
        let mut prev_oid: Option<ObjectId> = self.pred.as_ref().map(|p| p.oid);
        for m in &self.members {
            if m.index != at {
                return Err(DenialFault::NotAdjacent);
            }
            if !m.check(alg, root, leaf_count) {
                return Err(DenialFault::BadPath);
            }
            if m.oid < self.lo || m.oid > self.hi {
                return Err(DenialFault::OrderViolation);
            }
            if prev_oid.is_some_and(|p| p >= m.oid) {
                return Err(DenialFault::OrderViolation);
            }
            prev_oid = Some(m.oid);
            at += 1;
        }
        match &self.succ {
            Some(succ) => {
                if succ.index != at {
                    return Err(DenialFault::NotAdjacent);
                }
                if !succ.check(alg, root, leaf_count) {
                    return Err(DenialFault::BadPath);
                }
                if succ.oid <= self.hi {
                    return Err(DenialFault::OrderViolation);
                }
                if prev_oid.is_some_and(|p| p >= succ.oid) {
                    return Err(DenialFault::OrderViolation);
                }
            }
            None => {
                // Without a successor the members must run to the end of
                // the shard — otherwise a leaf after them could qualify.
                if at != leaf_count {
                    return Err(DenialFault::MissingWitness);
                }
            }
        }
        Ok(self.members.iter().map(|m| m.oid).collect())
    }

    /// Canonical encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.lo.raw().to_be_bytes());
        out.extend_from_slice(&self.hi.raw().to_be_bytes());
        out.extend_from_slice(&(self.members.len() as u32).to_be_bytes());
        for m in &self.members {
            m.encode_into(&mut out);
        }
        encode_opt_leaf(&self.pred, &mut out);
        encode_opt_leaf(&self.succ, &mut out);
        out
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let lo = ObjectId(r.u64()?);
        let hi = ObjectId(r.u64()?);
        let n = r.u32()? as usize;
        let mut members = Vec::new();
        for _ in 0..n {
            members.push(DenialLeaf::decode(r)?);
        }
        let pred = decode_opt_leaf(r)?;
        let succ = decode_opt_leaf(r)?;
        Ok(RangeProof {
            lo,
            hi,
            members,
            pred,
            succ,
        })
    }

    /// Decodes a [`RangeProof::to_bytes`] encoding.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let p = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(p)
    }
}

/// A shard root signed by the serving participant: the trust anchor every
/// denial and completeness proof hangs off, carrying a monotonic
/// `log_records` high-water mark so a rolled-back (pre-compaction, stale)
/// root is detectable by anyone who has seen a fresher one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedRoot {
    /// Hash algorithm of the tree.
    pub alg: HashAlgorithm,
    /// The shard root hash.
    pub root: Vec<u8>,
    /// Leaves under the root.
    pub leaf_count: u64,
    /// Tree depth (levels above the leaves).
    pub depth: u32,
    /// Cumulative records appended when the root was signed — monotonic;
    /// a peer presenting a *lower* value than previously attested is
    /// serving a stale (pre-compaction rollback) view.
    pub log_records: u64,
    /// Who signed.
    pub signer: ParticipantId,
    /// Signature over the domain-tagged root statement.
    pub sig: Vec<u8>,
}

impl SignedRoot {
    fn message(
        alg: HashAlgorithm,
        root: &[u8],
        leaf_count: u64,
        depth: u32,
        log_records: u64,
    ) -> Vec<u8> {
        let mut m = Vec::with_capacity(ROOT_SIGN_TAG.len() + 29 + root.len());
        m.extend_from_slice(ROOT_SIGN_TAG);
        m.push(alg.wire_id());
        m.extend_from_slice(&leaf_count.to_be_bytes());
        m.extend_from_slice(&depth.to_be_bytes());
        m.extend_from_slice(&log_records.to_be_bytes());
        m.extend_from_slice(&(root.len() as u64).to_be_bytes());
        m.extend_from_slice(root);
        m
    }

    /// Signs `tree`'s root with `signer`.
    pub fn sign(
        tree: &ShardTree,
        log_records: u64,
        signer: &Participant,
    ) -> Result<SignedRoot, crate::error::CoreError> {
        let alg = tree.alg();
        let root = tree.root();
        let leaf_count = tree.leaf_count();
        let depth = tree.depth();
        let msg = Self::message(alg, &root, leaf_count, depth, log_records);
        let sig = signer
            .sign(alg, &msg)
            .map_err(crate::error::CoreError::Rsa)?;
        Ok(SignedRoot {
            alg,
            root,
            leaf_count,
            depth,
            log_records,
            signer: signer.id(),
            sig,
        })
    }

    /// Verifies the signature against the key directory.
    pub fn verify(&self, keys: &KeyDirectory) -> bool {
        let msg = Self::message(
            self.alg,
            &self.root,
            self.leaf_count,
            self.depth,
            self.log_records,
        );
        keys.verify_signature(self.signer, self.alg, &msg, &self.sig)
            .is_ok()
    }

    /// Canonical encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40 + self.root.len() + self.sig.len());
        out.push(self.alg.wire_id());
        out.extend_from_slice(&(self.root.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.root);
        out.extend_from_slice(&self.leaf_count.to_be_bytes());
        out.extend_from_slice(&self.depth.to_be_bytes());
        out.extend_from_slice(&self.log_records.to_be_bytes());
        out.extend_from_slice(&self.signer.0.to_be_bytes());
        out.extend_from_slice(&(self.sig.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.sig);
        out
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let alg_id = r.u8()?;
        let alg = HashAlgorithm::from_wire_id(alg_id).ok_or(DecodeError::BadTag(alg_id))?;
        let root = r.len_prefixed()?.to_vec();
        let leaf_count = r.u64()?;
        let depth = r.u32()?;
        let log_records = r.u64()?;
        let signer = ParticipantId(r.u64()?);
        let sig = r.len_prefixed()?.to_vec();
        Ok(SignedRoot {
            alg,
            root,
            leaf_count,
            depth,
            log_records,
            signer,
            sig,
        })
    }

    /// Decodes a [`SignedRoot::to_bytes`] encoding.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let s = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(s)
    }
}

/// A denial proof bundled with the signed root it verifies against —
/// what a NOT_FOUND wire response actually carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedDenial {
    /// The serving participant's signed shard root.
    pub root: SignedRoot,
    /// The gap proof under that root.
    pub proof: DenialProof,
}

impl SignedDenial {
    /// Full verification: root signature, then the gap proof under it.
    pub fn check(&self, keys: &KeyDirectory) -> Result<(), DenialFault> {
        if !self.root.verify(keys) {
            return Err(DenialFault::BadRootSignature);
        }
        self.proof
            .check(self.root.alg, &self.root.root, self.root.leaf_count)
    }

    /// Canonical encoding (root, then proof, each length-prefixed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let root = self.root.to_bytes();
        let proof = self.proof.to_bytes();
        let mut out = Vec::with_capacity(16 + root.len() + proof.len());
        out.extend_from_slice(&(root.len() as u64).to_be_bytes());
        out.extend_from_slice(&root);
        out.extend_from_slice(&(proof.len() as u64).to_be_bytes());
        out.extend_from_slice(&proof);
        out
    }

    /// Decodes a [`SignedDenial::to_bytes`] encoding.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let root = SignedRoot::from_bytes(r.len_prefixed()?)?;
        let proof = DenialProof::from_bytes(r.len_prefixed()?)?;
        r.expect_end()?;
        Ok(SignedDenial { root, proof })
    }
}

/// A completeness proof bundled with its signed root — what a range/query
/// response carries alongside the actual records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedRange {
    /// The serving participant's signed shard root.
    pub root: SignedRoot,
    /// The completeness proof under that root.
    pub proof: RangeProof,
}

impl SignedRange {
    /// Full verification: root signature, then completeness; returns the
    /// proven member set.
    pub fn check(&self, keys: &KeyDirectory) -> Result<Vec<ObjectId>, DenialFault> {
        if !self.root.verify(keys) {
            return Err(DenialFault::BadRootSignature);
        }
        self.proof
            .check(self.root.alg, &self.root.root, self.root.leaf_count)
    }

    /// Canonical encoding (root, then proof, each length-prefixed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let root = self.root.to_bytes();
        let proof = self.proof.to_bytes();
        let mut out = Vec::with_capacity(16 + root.len() + proof.len());
        out.extend_from_slice(&(root.len() as u64).to_be_bytes());
        out.extend_from_slice(&root);
        out.extend_from_slice(&(proof.len() as u64).to_be_bytes());
        out.extend_from_slice(&proof);
        out
    }

    /// Decodes a [`SignedRange::to_bytes`] encoding.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let root = SignedRoot::from_bytes(r.len_prefixed()?)?;
        let proof = RangeProof::from_bytes(r.len_prefixed()?)?;
        r.expect_end()?;
        Ok(SignedRange { root, proof })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tep_crypto::pki::CertificateAuthority;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn tree(ids: &[u64]) -> ShardTree {
        ShardTree::build(
            ALG,
            ids.iter()
                .map(|&i| (ObjectId(i), ALG.digest(&i.to_be_bytes())))
                .collect(),
        )
    }

    fn pki() -> (KeyDirectory, Participant) {
        let mut rng = StdRng::seed_from_u64(7);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let p = ca.enroll(ParticipantId(1), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(p.certificate().clone()).unwrap();
        (keys, p)
    }

    #[test]
    fn leaf_paths_authenticate_at_every_position_and_size() {
        for n in [1u64, 2, 3, 4, 5, 7, 8, 9, 33, 100] {
            let t = tree(&(1..=n).collect::<Vec<_>>());
            let root = t.root();
            for i in 0..n {
                let leaf = DenialLeaf::witness(&t, i).unwrap();
                assert!(leaf.check(ALG, &root, n), "n={n} i={i}");
                // Wrong position fails.
                let mut moved = leaf.clone();
                moved.index = (i + 1) % n;
                if n > 1 {
                    assert!(!moved.check(ALG, &root, n), "n={n} i={i} moved");
                }
                // Claiming a different oid with the same path fails.
                let mut relabeled = leaf.clone();
                relabeled.oid = ObjectId(999);
                assert!(!relabeled.check(ALG, &root, n), "n={n} i={i} relabel");
            }
        }
    }

    #[test]
    fn absent_ids_prove_and_verify_everywhere() {
        let ids = [2u64, 4, 6, 8, 10];
        let t = tree(&ids);
        let root = t.root();
        for absent in [1u64, 3, 5, 7, 9, 11, 100] {
            let proof = DenialProof::prove(&t, ObjectId(absent)).unwrap();
            proof
                .check(ALG, &root, t.leaf_count())
                .unwrap_or_else(|f| panic!("absent={absent}: {f}"));
        }
        // Present IDs have no denial.
        for present in ids {
            assert!(DenialProof::prove(&t, ObjectId(present)).is_none());
        }
    }

    #[test]
    fn empty_tree_denies_everything() {
        let t = tree(&[]);
        let proof = DenialProof::prove(&t, ObjectId(5)).unwrap();
        assert!(proof.pred.is_none() && proof.succ.is_none());
        proof.check(ALG, &t.root(), 0).unwrap();
        // …but only under the genuine empty root.
        assert_eq!(
            proof.check(ALG, &ALG.digest(b"fake"), 0),
            Err(DenialFault::BadPath)
        );
    }

    #[test]
    fn non_adjacent_witnesses_rejected() {
        let t = tree(&[2, 4, 6, 8]);
        let root = t.root();
        // Honest proof for 5 uses leaves 1 and 2; widen the gap to 1..3.
        let mut proof = DenialProof::prove(&t, ObjectId(5)).unwrap();
        proof.succ = DenialLeaf::witness(&t, 3);
        assert_eq!(
            proof.check(ALG, &root, t.leaf_count()),
            Err(DenialFault::NotAdjacent)
        );
    }

    #[test]
    fn denial_of_present_id_rejected() {
        let t = tree(&[2, 4, 6]);
        let root = t.root();
        // Forge: claim 4 absent using the honest witnesses around 3.
        let mut proof = DenialProof::prove(&t, ObjectId(3)).unwrap();
        proof.absent = ObjectId(4);
        assert_eq!(
            proof.check(ALG, &root, t.leaf_count()),
            Err(DenialFault::OrderViolation)
        );
    }

    #[test]
    fn range_proofs_are_complete_and_ordered() {
        let t = tree(&[2, 4, 6, 8, 10]);
        let root = t.root();
        let cases: [(u64, u64, &[u64]); 6] = [
            (3, 9, &[4, 6, 8]),
            (2, 10, &[2, 4, 6, 8, 10]),
            (1, 1, &[]),
            (11, 20, &[]),
            (4, 4, &[4]),
            (0, 100, &[2, 4, 6, 8, 10]),
        ];
        for (lo, hi, want) in cases {
            let proof = RangeProof::prove(&t, ObjectId(lo), ObjectId(hi));
            let members = proof
                .check(ALG, &root, t.leaf_count())
                .unwrap_or_else(|f| panic!("[{lo},{hi}]: {f}"));
            let want: Vec<ObjectId> = want.iter().map(|&i| ObjectId(i)).collect();
            assert_eq!(members, want, "[{lo},{hi}]");
        }
    }

    #[test]
    fn withheld_range_member_is_caught() {
        let t = tree(&[2, 4, 6, 8, 10]);
        let root = t.root();
        let mut proof = RangeProof::prove(&t, ObjectId(3), ObjectId(9));
        // Server withholds the middle match (6).
        proof.members.retain(|m| m.oid != ObjectId(6));
        assert_eq!(
            proof.check(ALG, &root, t.leaf_count()),
            Err(DenialFault::NotAdjacent)
        );
        // Withholding the last match breaks the successor adjacency too.
        let mut proof = RangeProof::prove(&t, ObjectId(3), ObjectId(9));
        proof.members.pop();
        assert_eq!(
            proof.check(ALG, &root, t.leaf_count()),
            Err(DenialFault::NotAdjacent)
        );
    }

    #[test]
    fn signed_root_and_bundles_roundtrip_and_verify() {
        let (keys, p) = pki();
        let t = tree(&[1, 3, 5]);
        let signed = SignedRoot::sign(&t, 42, &p).unwrap();
        assert!(signed.verify(&keys));
        assert_eq!(SignedRoot::from_bytes(&signed.to_bytes()).unwrap(), signed);

        let denial = SignedDenial {
            root: signed.clone(),
            proof: DenialProof::prove(&t, ObjectId(2)).unwrap(),
        };
        denial.check(&keys).unwrap();
        assert_eq!(
            SignedDenial::from_bytes(&denial.to_bytes()).unwrap(),
            denial
        );

        let range = SignedRange {
            root: signed.clone(),
            proof: RangeProof::prove(&t, ObjectId(2), ObjectId(4)),
        };
        assert_eq!(range.check(&keys).unwrap(), vec![ObjectId(3)]);
        assert_eq!(SignedRange::from_bytes(&range.to_bytes()).unwrap(), range);

        // Tampering with the signed statement invalidates the bundle.
        let mut stale = denial.clone();
        stale.root.log_records = 41;
        assert_eq!(stale.check(&keys), Err(DenialFault::BadRootSignature));
    }
}
