//! Verifiable query slices: self-contained, re-verifiable answers to
//! provenance queries.
//!
//! The paper makes *whole histories* tamper-evident; a query engine answers
//! questions over them — ancestors, descendants, audit slices, provenance
//! polynomials. A [`SliceProof`] makes the **answer** tamper-evident too:
//! it carries the minimal record subset the answer was computed from, plus
//! the chain-link checksums of every record deliberately left outside the
//! slice, so a recipient can re-run the R1–R8 checks over just that slice
//! (`Verifier::verify_slice`) and *recompute the answer* from the records.
//! A server that tampers with records, omits part of a lineage, or returns
//! a fabricated answer yields attributed
//! [`TamperEvidence`](crate::verify::TamperEvidence) — never a silently
//! wrong result.
//!
//! Two soundness regimes, stated honestly:
//!
//! * **Backward queries** (ancestors, lineage, polynomials) are sound *and*
//!   complete relative to the signed records: an aggregate's inputs are
//!   bound into its signed checksum, so an omitted ancestor either breaks a
//!   signature or surfaces as `MissingRecord`.
//! * **Forward queries** (descendants, audit slices) are sound — every
//!   claimed consumer is backed by a signed aggregate record naming the
//!   target as input — but a server can still *omit* consumers, because
//!   nothing in the paper's scheme signs "who later consumed me".
//!   Authenticated denial (a keyed hash tree over the id space) is the
//!   ROADMAP item that closes this; until then the caveat is documented
//!   here and in DESIGN.md §11.
//!
//! The polynomial algebra follows "Provenance for Aggregate Queries"
//! (arXiv 1101.1110): lineages are elements of the polynomial semiring
//! ℕ[X] over one indeterminate per source object; aggregation multiplies,
//! sharing a source along several derivation paths raises its exponent.

use crate::record::{ProvenanceRecord, RecordKind};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::ParticipantId;
use tep_model::encode::{DecodeError, Reader};
use tep_model::ObjectId;
use tep_storage::StoredRecord;

/// Format tag of the slice-proof byte encoding.
const SLICE_MAGIC: &[u8] = b"TEPSLICE\x01";

/// Hard cap on canonical polynomial size. A deep diamond DAG doubles the
/// term count per level; both the query engine and the verifier truncate
/// the canonical form identically past this bound, so answer comparison
/// stays meaningful while adversarial blowup stays bounded.
pub const MAX_POLY_TERMS: usize = 4096;

/// The query operator a slice answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryOp {
    /// Objects the target transitively derives from (bounded backward BFS).
    Ancestors,
    /// Objects whose aggregations consumed the target (bounded forward BFS).
    Descendants,
    /// The full derivation closure of the target: the minimal record subset
    /// that influenced it (the slice itself is the answer).
    LineageSlice,
    /// Every record authored by one participant, with chain context.
    AuditSlice,
    /// The target's provenance polynomial over its derivation DAG.
    Polynomial,
}

impl QueryOp {
    /// Every operator, in wire/display order.
    pub const ALL: [QueryOp; 5] = [
        QueryOp::Ancestors,
        QueryOp::Descendants,
        QueryOp::LineageSlice,
        QueryOp::AuditSlice,
        QueryOp::Polynomial,
    ];

    /// Stable snake_case name (metric suffix and CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            QueryOp::Ancestors => "ancestors",
            QueryOp::Descendants => "descendants",
            QueryOp::LineageSlice => "lineage",
            QueryOp::AuditSlice => "audit",
            QueryOp::Polynomial => "polynomial",
        }
    }

    /// Name of the per-operator request counter
    /// (`tep_query_requests_<op>_total`).
    pub fn counter_name(self) -> String {
        format!("tep_query_requests_{}_total", self.name())
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        QueryOp::ALL.into_iter().find(|op| op.name() == s)
    }

    fn wire_id(self) -> u8 {
        match self {
            QueryOp::Ancestors => 0,
            QueryOp::Descendants => 1,
            QueryOp::LineageSlice => 2,
            QueryOp::AuditSlice => 3,
            QueryOp::Polynomial => 4,
        }
    }

    fn from_wire_id(id: u8) -> Option<Self> {
        QueryOp::ALL.into_iter().find(|op| op.wire_id() == id)
    }
}

impl fmt::Display for QueryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Bounds restricting a query's traversal. Both bounds are re-checkable by
/// the recipient: `seq_id` is signed into every record, and depth is a
/// property of the slice's own edge structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryBounds {
    /// Maximum derivation (aggregate-edge) hops from the target. Walking an
    /// object's own update chain is free. `None` = unbounded.
    pub max_depth: Option<u32>,
    /// Inclusive `seq_id` window; records outside it are clipped to
    /// boundary links. `None` = unbounded.
    pub seq_range: Option<(u64, u64)>,
}

impl QueryBounds {
    /// `true` iff `seq` falls inside the (possibly absent) window.
    pub fn seq_in_range(&self, seq: u64) -> bool {
        self.seq_range.is_none_or(|(lo, hi)| lo <= seq && seq <= hi)
    }

    /// `true` iff `depth` aggregate hops are within the depth bound.
    pub fn depth_ok(&self, depth: u32) -> bool {
        self.max_depth.is_none_or(|d| depth <= d)
    }
}

/// A fully specified provenance query: the question a [`SliceProof`]
/// answers. Bound into the proof encoding so the recipient can tell *which*
/// question the server actually answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// The operator.
    pub op: QueryOp,
    /// The subject object (ignored by [`QueryOp::AuditSlice`]).
    pub target: ObjectId,
    /// The audited participant ([`QueryOp::AuditSlice`] only).
    pub participant: Option<ParticipantId>,
    /// Traversal bounds.
    pub bounds: QueryBounds,
}

impl QuerySpec {
    /// A spec for `op` on `target` with no bounds.
    pub fn new(op: QueryOp, target: ObjectId) -> Self {
        QuerySpec {
            op,
            target,
            participant: None,
            bounds: QueryBounds::default(),
        }
    }

    /// An audit-slice spec for `participant`.
    pub fn audit(participant: ParticipantId) -> Self {
        QuerySpec {
            op: QueryOp::AuditSlice,
            target: ObjectId(0),
            participant: Some(participant),
            bounds: QueryBounds::default(),
        }
    }

    /// Appends the canonical encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.op.wire_id());
        out.extend_from_slice(&self.target.raw().to_be_bytes());
        match self.participant {
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.0.to_be_bytes());
            }
            None => out.push(0),
        }
        match self.bounds.max_depth {
            Some(d) => {
                out.push(1);
                out.extend_from_slice(&d.to_be_bytes());
            }
            None => out.push(0),
        }
        match self.bounds.seq_range {
            Some((lo, hi)) => {
                out.push(1);
                out.extend_from_slice(&lo.to_be_bytes());
                out.extend_from_slice(&hi.to_be_bytes());
            }
            None => out.push(0),
        }
    }

    /// Decodes a spec from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let op = QueryOp::from_wire_id(r.u8()?).ok_or(DecodeError::BadTag(0xF0))?;
        let target = ObjectId(r.u64()?);
        let participant = match r.u8()? {
            0 => None,
            1 => Some(ParticipantId(r.u64()?)),
            t => return Err(DecodeError::BadTag(t)),
        };
        let max_depth = match r.u8()? {
            0 => None,
            1 => Some(r.u32()?),
            t => return Err(DecodeError::BadTag(t)),
        };
        let seq_range = match r.u8()? {
            0 => None,
            1 => {
                let lo = r.u64()?;
                let hi = r.u64()?;
                if lo > hi {
                    return Err(DecodeError::BadTag(0xF1));
                }
                Some((lo, hi))
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        Ok(QuerySpec {
            op,
            target,
            participant,
            bounds: QueryBounds {
                max_depth,
                seq_range,
            },
        })
    }
}

/// A provenance polynomial: an element of ℕ[X], one indeterminate per
/// source object (arXiv 1101.1110). Kept in canonical form — terms sorted
/// by monomial, factors sorted by object id, no zero coefficients.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Polynomial {
    /// `(monomial, coefficient)` terms; a monomial is sorted
    /// `(variable, exponent ≥ 1)` factors. The empty monomial is the
    /// constant term.
    pub terms: Vec<(Vec<(ObjectId, u64)>, u64)>,
}

impl Polynomial {
    /// The multiplicative identity (1).
    pub fn one() -> Self {
        Polynomial {
            terms: vec![(Vec::new(), 1)],
        }
    }

    /// The single variable `x_oid`.
    pub fn var(oid: ObjectId) -> Self {
        Polynomial {
            terms: vec![(vec![(oid, 1)], 1)],
        }
    }

    /// Product of two polynomials (aggregation combines lineages).
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut terms: Vec<(Vec<(ObjectId, u64)>, u64)> = Vec::new();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                let mut m = ma.clone();
                for &(oid, e) in mb {
                    match m.iter_mut().find(|(o, _)| *o == oid) {
                        Some(f) => f.1 = f.1.saturating_add(e),
                        None => m.push((oid, e)),
                    }
                }
                m.sort_by_key(|&(o, _)| o);
                let c = ca.saturating_mul(*cb);
                match terms.iter_mut().find(|(tm, _)| *tm == m) {
                    Some(t) => t.1 = t.1.saturating_add(c),
                    None => terms.push((m, c)),
                }
            }
        }
        terms.sort();
        terms.truncate(MAX_POLY_TERMS);
        Polynomial { terms }
    }

    /// Sum of two polynomials (alternative derivations).
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let mut terms = self.terms.clone();
        for (m, c) in &other.terms {
            match terms.iter_mut().find(|(tm, _)| tm == m) {
                Some(t) => t.1 = t.1.saturating_add(*c),
                None => terms.push((m.clone(), *c)),
            }
        }
        terms.sort();
        terms.truncate(MAX_POLY_TERMS);
        Polynomial { terms }
    }

    /// Evaluates under an assignment of the variables, in the counting
    /// semiring (saturating u64 arithmetic).
    pub fn eval(&self, assign: impl Fn(ObjectId) -> u64) -> u64 {
        let mut total = 0u64;
        for (m, c) in &self.terms {
            let mut term = *c;
            for &(oid, e) in m {
                let v = assign(oid);
                for _ in 0..e {
                    term = term.saturating_mul(v);
                }
            }
            total = total.saturating_add(term);
        }
        total
    }

    /// The distinct variables (source objects) appearing, sorted.
    pub fn variables(&self) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = self
            .terms
            .iter()
            .flat_map(|(m, _)| m.iter().map(|&(o, _)| o))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.terms.len() as u64).to_be_bytes());
        for (m, c) in &self.terms {
            out.extend_from_slice(&c.to_be_bytes());
            out.extend_from_slice(&(m.len() as u64).to_be_bytes());
            for &(oid, e) in m {
                out.extend_from_slice(&oid.raw().to_be_bytes());
                out.extend_from_slice(&e.to_be_bytes());
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.u64()? as usize;
        let mut terms = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let c = r.u64()?;
            let fs = r.u64()? as usize;
            let mut m = Vec::with_capacity(fs.min(1024));
            for _ in 0..fs {
                let oid = ObjectId(r.u64()?);
                let e = r.u64()?;
                m.push((oid, e));
            }
            terms.push((m, c));
        }
        Ok(Polynomial { terms })
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(" + ")?;
            }
            if *c != 1 || m.is_empty() {
                write!(f, "{c}")?;
                if !m.is_empty() {
                    f.write_str("·")?;
                }
            }
            for (j, (oid, e)) in m.iter().enumerate() {
                if j > 0 {
                    f.write_str("·")?;
                }
                write!(f, "x{}", oid.raw())?;
                if *e > 1 {
                    write!(f, "^{e}")?;
                }
            }
        }
        Ok(())
    }
}

/// The operator's computed answer, shipped alongside the records so a
/// recipient can compare it against what the records actually imply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryAnswer {
    /// A sorted, deduplicated object list (ancestors, descendants, lineage
    /// sources, audited objects).
    Objects(Vec<ObjectId>),
    /// A provenance polynomial in canonical form.
    Polynomial(Polynomial),
}

impl QueryAnswer {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            QueryAnswer::Objects(oids) => {
                out.push(0);
                out.extend_from_slice(&(oids.len() as u64).to_be_bytes());
                for oid in oids {
                    out.extend_from_slice(&oid.raw().to_be_bytes());
                }
            }
            QueryAnswer::Polynomial(p) => {
                out.push(1);
                p.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => {
                let n = r.u64()? as usize;
                let mut oids = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    oids.push(ObjectId(r.u64()?));
                }
                Ok(QueryAnswer::Objects(oids))
            }
            1 => Ok(QueryAnswer::Polynomial(Polynomial::decode(r)?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// A checksum of a record intentionally left *outside* the slice that
/// in-slice signatures chain to. Carrying the checksum (and only the
/// checksum) lets the recipient verify the signatures of records at the
/// slice boundary without shipping the whole history; the checksum itself
/// is covered by those signatures, so flipping it breaks them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundaryLink {
    /// The out-of-slice record's object.
    pub oid: ObjectId,
    /// Its sequence id.
    pub seq: u64,
    /// Its signed checksum, verbatim.
    pub checksum: Vec<u8>,
}

/// A self-contained, re-verifiable query result: the answer, the record
/// subset it was computed from, and the boundary checksums needed to check
/// every in-slice signature. See the module docs for the trust model and
/// `Verifier::verify_slice` for the checks a recipient runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SliceProof {
    /// The question this slice answers.
    pub spec: QuerySpec,
    /// Hash algorithm of the record checksums.
    pub alg: HashAlgorithm,
    /// `seq_id` of the target's newest record at evaluation time (the
    /// traversal root; 0 for audit slices).
    pub target_seq: u64,
    /// The slice: records sorted by `(output_oid, seq_id)`.
    pub records: Vec<ProvenanceRecord>,
    /// Boundary checksums, sorted by `(oid, seq)`.
    pub boundary: Vec<BoundaryLink>,
    /// The operator's answer.
    pub answer: QueryAnswer,
}

impl SliceProof {
    /// Stable byte encoding, for QRESULT frames and files.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.records.len() * 128);
        out.extend_from_slice(SLICE_MAGIC);
        out.push(self.alg.wire_id());
        self.spec.encode_into(&mut out);
        out.extend_from_slice(&self.target_seq.to_be_bytes());
        out.extend_from_slice(&(self.records.len() as u64).to_be_bytes());
        let mut scratch = Vec::new();
        for r in &self.records {
            scratch.clear();
            r.to_stored().encode_into(&mut scratch);
            out.extend_from_slice(&(scratch.len() as u64).to_be_bytes());
            out.extend_from_slice(&scratch);
        }
        out.extend_from_slice(&(self.boundary.len() as u64).to_be_bytes());
        for b in &self.boundary {
            out.extend_from_slice(&b.oid.raw().to_be_bytes());
            out.extend_from_slice(&b.seq.to_be_bytes());
            out.extend_from_slice(&(b.checksum.len() as u64).to_be_bytes());
            out.extend_from_slice(&b.checksum);
        }
        self.answer.encode_into(&mut out);
        out
    }

    /// Inverse of [`Self::to_bytes`]. Structural corruption (truncation,
    /// bad tags, trailing bytes) fails here; *semantic* tampering is the
    /// `verify_slice` layer's job.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let magic = r.bytes(SLICE_MAGIC.len())?;
        if magic != SLICE_MAGIC {
            return Err(DecodeError::BadTag(magic.first().copied().unwrap_or(0)));
        }
        let alg = HashAlgorithm::from_wire_id(r.u8()?).ok_or(DecodeError::BadTag(0xFC))?;
        let spec = QuerySpec::decode(&mut r)?;
        let target_seq = r.u64()?;
        let n = r.u64()? as usize;
        let mut records = Vec::with_capacity(n.min(4096));
        let mut reenc = Vec::new();
        for _ in 0..n {
            let bytes = r.len_prefixed()?;
            let stored = StoredRecord::from_bytes(bytes)?;
            let rec = ProvenanceRecord::from_stored(&stored)?;
            // Canonical encoding: re-encoding must reproduce the exact
            // bytes. The stored form carries denormalized copies of
            // seq/participant/oid that decoding ignores; without this
            // check those bytes would be malleable in transit.
            reenc.clear();
            rec.to_stored().encode_into(&mut reenc);
            if reenc != bytes {
                return Err(DecodeError::BadTag(0xFD));
            }
            records.push(rec);
        }
        let nb = r.u64()? as usize;
        let mut boundary = Vec::with_capacity(nb.min(4096));
        for _ in 0..nb {
            let oid = ObjectId(r.u64()?);
            let seq = r.u64()?;
            let checksum = r.len_prefixed()?.to_vec();
            boundary.push(BoundaryLink { oid, seq, checksum });
        }
        let answer = QueryAnswer::decode(&mut r)?;
        r.expect_end()?;
        Ok(SliceProof {
            spec,
            alg,
            target_seq,
            records,
            boundary,
            answer,
        })
    }
}

/// Outcome of [`backward_closure`]: the bounded backward traversal both
/// the query engine (over the database) and `Verifier::verify_slice`
/// (over a received slice) run. Running the *same* algorithm on both sides
/// is what makes slice proofs re-checkable.
#[derive(Clone, Debug, Default)]
pub struct BackwardClosure {
    /// In-bounds nodes the lookup resolved, in visit order — the slice.
    pub kept: Vec<(ObjectId, u64)>,
    /// Demanded nodes clipped by the bounds — carried as boundary links.
    pub clipped: Vec<(ObjectId, u64)>,
    /// In-bounds demanded nodes the lookup could not resolve.
    pub missing: Vec<(ObjectId, u64)>,
    /// `true` iff traversal stopped after keeping `limit` nodes.
    pub truncated: bool,
}

/// Bounded 0-1 BFS over reverse derivation edges from `root`. Walking an
/// object's own update chain costs nothing; crossing an aggregate edge
/// costs one depth unit — so `max_depth` counts *derivation* hops, the
/// quantity a lineage question is actually about. Each node is decided at
/// its minimum depth; decisions are kept (in bounds, resolved), clipped
/// (out of bounds), or missing (in bounds but unresolvable). A visited set
/// makes adversarial cyclic edge structures terminate.
pub fn backward_closure(
    bounds: &QueryBounds,
    root: (ObjectId, u64),
    limit: usize,
    mut lookup: impl FnMut(ObjectId, u64) -> Option<ProvenanceRecord>,
) -> BackwardClosure {
    let mut out = BackwardClosure::default();
    let mut best: HashMap<(ObjectId, u64), u32> = HashMap::new();
    let mut dq: VecDeque<((ObjectId, u64), u32)> = VecDeque::new();
    dq.push_back((root, 0));
    while let Some((node, depth)) = dq.pop_front() {
        if let Some(&b) = best.get(&node) {
            if b <= depth {
                continue;
            }
        }
        best.insert(node, depth);
        if !bounds.seq_in_range(node.1) || !bounds.depth_ok(depth) {
            out.clipped.push(node);
            continue;
        }
        let Some(rec) = lookup(node.0, node.1) else {
            out.missing.push(node);
            continue;
        };
        if out.kept.len() >= limit {
            out.truncated = true;
            break;
        }
        out.kept.push(node);
        for input in &rec.inputs {
            let Some(prev) = input.prev_seq else { continue };
            // Same-object edges (updates) are free; cross-object edges
            // (aggregation) cost one hop.
            if input.oid == node.0 {
                dq.push_front(((input.oid, prev), depth));
            } else {
                dq.push_back(((input.oid, prev), depth + 1));
            }
        }
    }
    out
}

/// One aggregate's object-level edge: `(output, seq_id, input objects)`.
pub type AggEdge = (ObjectId, u64, Vec<ObjectId>);

/// Forward (descendant) reachability from `target` over aggregate edges.
/// `aggs` must be sorted by `(output, seq)`; that order is topological
/// because an aggregate's output is always a fresher object than its
/// inputs, so a single pass computes minimum depths. Returns the indices
/// of in-bounds reachable aggregates and the visited-object depth map
/// (which includes `target` at depth 0).
pub fn forward_closure(
    bounds: &QueryBounds,
    target: ObjectId,
    aggs: &[AggEdge],
) -> (Vec<usize>, BTreeMap<ObjectId, u32>) {
    let mut depth: BTreeMap<ObjectId, u32> = BTreeMap::new();
    depth.insert(target, 0);
    let mut kept = Vec::new();
    for (i, (out, seq, inputs)) in aggs.iter().enumerate() {
        if !bounds.seq_in_range(*seq) {
            continue;
        }
        let d = inputs.iter().filter_map(|o| depth.get(o)).min().copied();
        if let Some(d) = d {
            let nd = d.saturating_add(1);
            if bounds.depth_ok(nd) {
                kept.push(i);
                let e = depth.entry(*out).or_insert(nd);
                *e = (*e).min(nd);
            }
        }
    }
    (kept, depth)
}

/// Computes the provenance polynomial of `root` from `records`, which must
/// be sorted by `(output_oid, seq_id)` — topological order, so one pass
/// resolves every dependency. Any predecessor *outside* `records` is
/// treated as a source variable: clipping at the slice boundary is what
/// keeps polynomials finite under bounds. Inserts introduce a variable,
/// updates carry their predecessor's polynomial through, aggregates
/// multiply their inputs' polynomials (arXiv 1101.1110) — so an input
/// shared along two derivation paths shows up squared.
pub fn polynomial_over(records: &[ProvenanceRecord], root: (ObjectId, u64)) -> Polynomial {
    let mut memo: HashMap<(ObjectId, u64), Polynomial> = HashMap::new();
    for r in records {
        let p = match r.kind {
            RecordKind::Insert => Polynomial::var(r.output_oid),
            RecordKind::Update => r
                .inputs
                .first()
                .and_then(|i| i.prev_seq)
                .and_then(|prev| memo.get(&(r.output_oid, prev)).cloned())
                .unwrap_or_else(|| Polynomial::var(r.output_oid)),
            RecordKind::Aggregate => {
                let mut acc = Polynomial::one();
                for i in &r.inputs {
                    let f = i
                        .prev_seq
                        .and_then(|prev| memo.get(&(i.oid, prev)).cloned())
                        .unwrap_or_else(|| Polynomial::var(i.oid));
                    acc = acc.mul(&f);
                }
                acc
            }
        };
        memo.insert((r.output_oid, r.seq_id), p);
    }
    memo.remove(&root)
        .unwrap_or_else(|| Polynomial::var(root.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip() {
        let specs = [
            QuerySpec::new(QueryOp::Ancestors, ObjectId(7)),
            QuerySpec::audit(ParticipantId(3)),
            QuerySpec {
                op: QueryOp::Descendants,
                target: ObjectId(9),
                participant: None,
                bounds: QueryBounds {
                    max_depth: Some(4),
                    seq_range: Some((2, 10)),
                },
            },
        ];
        for spec in specs {
            let mut buf = Vec::new();
            spec.encode_into(&mut buf);
            let mut r = Reader::new(&buf);
            assert_eq!(QuerySpec::decode(&mut r).unwrap(), spec);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn spec_rejects_inverted_range() {
        let spec = QuerySpec {
            op: QueryOp::Ancestors,
            target: ObjectId(1),
            participant: None,
            bounds: QueryBounds {
                max_depth: None,
                seq_range: Some((5, 2)),
            },
        };
        let mut buf = Vec::new();
        spec.encode_into(&mut buf);
        assert!(QuerySpec::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn polynomial_algebra() {
        let x = Polynomial::var(ObjectId(1));
        let y = Polynomial::var(ObjectId(2));
        // Diamond sharing: x used along two paths → x².
        let sq = x.mul(&x);
        assert_eq!(sq.terms, vec![(vec![(ObjectId(1), 2)], 1)]);
        let xy = x.mul(&y);
        assert_eq!(xy.eval(|o| o.raw() + 1), 2 * 3);
        assert_eq!(sq.eval(|_| 3), 9);
        // Sum keeps both terms.
        let s = sq.add(&xy);
        assert_eq!(s.terms.len(), 2);
        assert_eq!(s.eval(|_| 2), 4 + 4);
        assert_eq!(s.variables(), vec![ObjectId(1), ObjectId(2)]);
        // Multiplication is commutative in canonical form.
        assert_eq!(x.mul(&y), y.mul(&x));
        // Display is stable.
        assert_eq!(sq.to_string(), "x1^2");
    }

    #[test]
    fn polynomial_one_is_identity() {
        let x = Polynomial::var(ObjectId(4));
        assert_eq!(Polynomial::one().mul(&x), x);
        assert_eq!(Polynomial::one().eval(|_| 99), 1);
    }

    #[test]
    fn op_names_parse() {
        for op in QueryOp::ALL {
            assert_eq!(QueryOp::parse(op.name()), Some(op));
            assert!(op.counter_name().starts_with("tep_query_requests_"));
        }
        assert_eq!(QueryOp::parse("nope"), None);
    }
}
