//! Merkle inclusion proofs over compound-object hashes.
//!
//! The recursive subtree hash of §4.3 is a Merkle tree, which buys more
//! than cheap recomputation: a participant can prove that **one cell**
//! belongs to a signed database state — e.g. the `h(subtree(A))` bound into
//! a provenance checksum — by shipping only the root-path and sibling
//! hashes, without revealing or transferring the rest of the tree.
//!
//! A [`SubtreeProof`] carries, for each node on the path from the target to
//! the proven root: the node's canonical prefix (binding its id and value)
//! and the sibling child-hashes on either side of the path child. Verifying
//! folds the target hash back up and compares against the trusted root
//! hash. Soundness rests on the hash function: fabricating any step
//! requires a collision.

use crate::error::CoreError;
use crate::hashing::HashCache;
use std::fmt;
use tep_crypto::digest::HashAlgorithm;
use tep_model::encode::node_prefix;
use tep_model::{Forest, ModelError, ObjectId, Value};

/// One level of a [`SubtreeProof`]: a node on the path from the target to
/// the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// The path node's id.
    pub node: ObjectId,
    /// Canonical `node_prefix(id, value)` bytes of the path node.
    pub prefix: Vec<u8>,
    /// Subtree hashes of siblings ordered **before** the path child.
    pub before: Vec<Vec<u8>>,
    /// Subtree hashes of siblings ordered **after** the path child.
    pub after: Vec<Vec<u8>>,
}

/// An inclusion proof: `target`'s subtree hash is contained in the proven
/// root's subtree hash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubtreeProof {
    /// The object whose inclusion is proven.
    pub target: ObjectId,
    /// The proven root.
    pub root: ObjectId,
    /// Hash algorithm the tree uses.
    pub alg: HashAlgorithm,
    /// Path steps from the target's parent up to (and including) the root.
    pub steps: Vec<ProofStep>,
}

/// Why proof verification failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// Recomputed root hash does not match the trusted one.
    RootMismatch,
    /// The claimed target value does not hash to the proof's starting point.
    ValueMismatch,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::RootMismatch => write!(f, "proof does not fold to the trusted root hash"),
            ProofError::ValueMismatch => write!(f, "claimed value does not match the proof target"),
        }
    }
}

impl std::error::Error for ProofError {}

/// Builds an inclusion proof for `target` under `root`.
///
/// `cache` supplies (and memoizes) the sibling subtree hashes.
pub fn prove(
    forest: &Forest,
    cache: &mut HashCache,
    root: ObjectId,
    target: ObjectId,
) -> Result<SubtreeProof, CoreError> {
    forest.get(target).map_err(CoreError::Model)?;
    forest.get(root).map_err(CoreError::Model)?;
    if target != root && !forest.ancestors(target).contains(&root) {
        return Err(CoreError::Model(ModelError::UnknownObject(target)));
    }

    let alg = cache.algorithm();
    let mut steps = Vec::new();
    let mut child = target;
    while child != root {
        let parent = forest
            .node(child)
            .and_then(|n| n.parent())
            .expect("child below root has a parent");
        let pnode = forest.get(parent).map_err(CoreError::Model)?;
        let mut before = Vec::new();
        let mut after = Vec::new();
        let mut seen_child = false;
        for c in pnode.children() {
            if c == child {
                seen_child = true;
            } else {
                let h = cache.get_or_compute(forest, c);
                if seen_child {
                    after.push(h);
                } else {
                    before.push(h);
                }
            }
        }
        steps.push(ProofStep {
            node: parent,
            prefix: node_prefix(parent, pnode.value()),
            before,
            after,
        });
        child = parent;
    }

    Ok(SubtreeProof {
        target,
        root,
        alg,
        steps,
    })
}

impl SubtreeProof {
    /// Folds the proof from `target_hash` up and checks it against the
    /// trusted `root_hash`.
    pub fn verify_hash(&self, target_hash: &[u8], root_hash: &[u8]) -> Result<(), ProofError> {
        let mut h = target_hash.to_vec();
        for step in &self.steps {
            let mut hasher = self.alg.hasher();
            hasher.update(&step.prefix);
            let mut count = 0u64;
            for sib in &step.before {
                hasher.update(sib);
                count += 1;
            }
            hasher.update(&h);
            count += 1;
            for sib in &step.after {
                hasher.update(sib);
                count += 1;
            }
            hasher.update(&count.to_be_bytes());
            h = hasher.finalize();
        }
        if h == root_hash {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }

    /// Verifies that leaf `target` holds `value` under `root_hash`.
    ///
    /// Recomputes the leaf hash from the claimed `(id, value)` pair, so a
    /// verifier needs nothing but the trusted root hash and this proof.
    pub fn verify_leaf_value(&self, value: &Value, root_hash: &[u8]) -> Result<(), ProofError> {
        let leaf_hash = crate::streaming::leaf_hash(self.alg, self.target, value);
        self.verify_hash(&leaf_hash, root_hash)
            .map_err(|_| ProofError::ValueMismatch)
    }

    /// Total sibling hashes carried (proof size metric).
    pub fn sibling_count(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.before.len() + s.after.len())
            .sum()
    }

    /// Stable byte encoding (for shipping proofs to recipients).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"TEPPROOF\x01");
        out.push(self.alg.wire_id());
        out.extend_from_slice(&self.target.raw().to_be_bytes());
        out.extend_from_slice(&self.root.raw().to_be_bytes());
        out.extend_from_slice(&(self.steps.len() as u64).to_be_bytes());
        let put_hashes = |out: &mut Vec<u8>, hashes: &[Vec<u8>]| {
            out.extend_from_slice(&(hashes.len() as u64).to_be_bytes());
            for h in hashes {
                out.extend_from_slice(&(h.len() as u64).to_be_bytes());
                out.extend_from_slice(h);
            }
        };
        for step in &self.steps {
            out.extend_from_slice(&step.node.raw().to_be_bytes());
            out.extend_from_slice(&(step.prefix.len() as u64).to_be_bytes());
            out.extend_from_slice(&step.prefix);
            put_hashes(&mut out, &step.before);
            put_hashes(&mut out, &step.after);
        }
        out
    }

    /// Inverse of [`Self::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, tep_model::encode::DecodeError> {
        use tep_model::encode::{DecodeError, Reader};
        let mut r = Reader::new(buf);
        let magic = r.bytes(9)?;
        if magic != b"TEPPROOF\x01" {
            return Err(DecodeError::BadTag(magic.first().copied().unwrap_or(0)));
        }
        let alg = HashAlgorithm::from_wire_id(r.u8()?).ok_or(DecodeError::BadTag(0xFC))?;
        let target = ObjectId(r.u64()?);
        let root = ObjectId(r.u64()?);
        let step_count = r.u64()? as usize;
        let mut steps = Vec::with_capacity(step_count.min(1024));
        for _ in 0..step_count {
            let node = ObjectId(r.u64()?);
            let prefix = r.len_prefixed()?.to_vec();
            let read_hashes = |r: &mut Reader<'_>| -> Result<Vec<Vec<u8>>, DecodeError> {
                let n = r.u64()? as usize;
                let mut out = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    out.push(r.len_prefixed()?.to_vec());
                }
                Ok(out)
            };
            let before = read_hashes(&mut r)?;
            let after = read_hashes(&mut r)?;
            steps.push(ProofStep {
                node,
                prefix,
                before,
                after,
            });
        }
        r.expect_end()?;
        Ok(SubtreeProof {
            target,
            root,
            alg,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::subtree_hash;
    use tep_model::relational;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn table() -> (Forest, ObjectId, relational::TableHandle) {
        let mut f = Forest::new();
        let root = relational::create_root(&mut f, "db");
        let th = relational::build_table(&mut f, root, "t", 10, 4, |r, a| {
            Value::Int((r * 10 + a) as i64)
        })
        .unwrap();
        (f, root, th)
    }

    #[test]
    fn leaf_proof_verifies_value() {
        let (f, root, th) = table();
        let mut cache = HashCache::new(ALG);
        let root_hash = cache.get_or_compute(&f, root);
        let cell = th.rows[3].cells[2];

        let proof = prove(&f, &mut cache, root, cell).unwrap();
        assert_eq!(proof.steps.len(), 3); // row, table, root
        proof
            .verify_leaf_value(&Value::Int(32), &root_hash)
            .unwrap();
        // Wrong value rejected.
        assert_eq!(
            proof.verify_leaf_value(&Value::Int(33), &root_hash),
            Err(ProofError::ValueMismatch)
        );
    }

    #[test]
    fn interior_node_proof_verifies_subtree_hash() {
        let (f, root, th) = table();
        let mut cache = HashCache::new(ALG);
        let root_hash = cache.get_or_compute(&f, root);
        let row = th.rows[7].id;
        let row_hash = subtree_hash(ALG, &f, row);

        let proof = prove(&f, &mut cache, root, row).unwrap();
        proof.verify_hash(&row_hash, &root_hash).unwrap();
        // A different row's hash does not fit this proof's position.
        let other = subtree_hash(ALG, &f, th.rows[2].id);
        assert!(proof.verify_hash(&other, &root_hash).is_err());
    }

    #[test]
    fn proof_against_stale_root_fails() {
        let (mut f, root, th) = table();
        let mut cache = HashCache::new(ALG);
        let old_root_hash = cache.get_or_compute(&f, root);
        let cell = th.rows[0].cells[0];
        let proof = prove(&f, &mut cache, root, cell).unwrap();

        // Mutate an unrelated cell: the root hash changes, the proof no
        // longer folds to it.
        f.update(th.rows[9].cells[3], Value::Int(999)).unwrap();
        let mut fresh = HashCache::new(ALG);
        let new_root_hash = fresh.get_or_compute(&f, root);
        assert_ne!(old_root_hash, new_root_hash);
        assert!(proof
            .verify_leaf_value(&Value::Int(0), &new_root_hash)
            .is_err());
        // Against the old (signed) root it still verifies — proofs pin a
        // specific state, which is exactly what checksums sign.
        proof
            .verify_leaf_value(&Value::Int(0), &old_root_hash)
            .unwrap();
    }

    #[test]
    fn tampered_proof_steps_rejected() {
        let (f, root, th) = table();
        let mut cache = HashCache::new(ALG);
        let root_hash = cache.get_or_compute(&f, root);
        let cell = th.rows[1].cells[1];
        let clean = prove(&f, &mut cache, root, cell).unwrap();

        // Flip a sibling hash bit.
        let mut p = clean.clone();
        p.steps[0].before[0][0] ^= 1;
        assert!(p.verify_leaf_value(&Value::Int(11), &root_hash).is_err());

        // Corrupt a node prefix.
        let mut p = clean.clone();
        let last = p.steps.len() - 1;
        p.steps[last].prefix[1] ^= 1;
        assert!(p.verify_leaf_value(&Value::Int(11), &root_hash).is_err());

        // Drop a step.
        let mut p = clean.clone();
        p.steps.remove(1);
        assert!(p.verify_leaf_value(&Value::Int(11), &root_hash).is_err());

        // Reorder siblings (move one from before to after).
        let mut p = clean;
        if let Some(s) = p.steps[1].before.pop() {
            p.steps[1].after.insert(0, s);
            assert!(p.verify_leaf_value(&Value::Int(11), &root_hash).is_err());
        }
    }

    #[test]
    fn proof_size_is_logarithmic_ish() {
        // Depth-4 relational tree: siblings per level, not whole-tree.
        let (f, root, th) = table();
        let mut cache = HashCache::new(ALG);
        cache.get_or_compute(&f, root);
        let proof = prove(&f, &mut cache, root, th.rows[0].cells[0]).unwrap();
        // 3 sibling cells + 9 sibling rows + 0 sibling tables = 12,
        // versus 55 nodes in the full tree.
        assert_eq!(proof.sibling_count(), 12);
    }

    #[test]
    fn proof_bytes_roundtrip() {
        let (f, root, th) = table();
        let mut cache = HashCache::new(ALG);
        let root_hash = cache.get_or_compute(&f, root);
        let cell = th.rows[5].cells[0];
        let proof = prove(&f, &mut cache, root, cell).unwrap();
        let bytes = proof.to_bytes();
        let back = SubtreeProof::from_bytes(&bytes).unwrap();
        assert_eq!(back, proof);
        back.verify_leaf_value(&Value::Int(50), &root_hash).unwrap();
        // Corruption rejected or fails verification — never accepted.
        assert!(SubtreeProof::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(SubtreeProof::from_bytes(b"junk").is_err());
    }

    #[test]
    fn prove_rejects_non_descendants() {
        let (mut f, root, th) = table();
        let stranger = f.insert(Value::Int(1), None).unwrap();
        let mut cache = HashCache::new(ALG);
        assert!(prove(&f, &mut cache, root, stranger).is_err());
        assert!(prove(&f, &mut cache, root, ObjectId(9999)).is_err());
        // Target == root is the degenerate valid case.
        let proof = prove(&f, &mut cache, root, root).unwrap();
        assert!(proof.steps.is_empty());
        let rh = cache.get_or_compute(&f, root);
        proof.verify_hash(&rh, &rh).unwrap();
        let _ = th;
    }
}
