//! Provenance objects: the (possibly non-linear) record DAG shipped to a
//! data recipient alongside a data object.
//!
//! Per Definition 1, the provenance of an object `A` is a set of provenance
//! records partially ordered by `seqID` — equivalently a DAG: `A`'s own
//! chain, plus (recursively) the chains of every aggregation input, up to
//! the version that was aggregated. [`collect`] assembles exactly that
//! reachable set from a [`ProvenanceDb`].

use crate::error::CoreError;
use crate::record::{ProvenanceRecord, RecordKind};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use tep_model::ObjectId;
use tep_storage::ProvenanceDb;

/// A provenance object: the records documenting one data object's history.
#[derive(Clone, Debug)]
pub struct ProvenanceObject {
    /// The data object this provenance describes.
    pub target: ObjectId,
    /// All records, sorted by `(object, seqID)`.
    pub records: Vec<ProvenanceRecord>,
}

/// An edge in the provenance DAG: `from` chains the checksum of `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DagEdge {
    /// The successor record.
    pub from: (ObjectId, u64),
    /// The predecessor record whose checksum is chained into `from`.
    pub to: (ObjectId, u64),
}

impl ProvenanceObject {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up the record for `(oid, seq)`.
    pub fn record(&self, oid: ObjectId, seq: u64) -> Option<&ProvenanceRecord> {
        self.records
            .iter()
            .find(|r| r.output_oid == oid && r.seq_id == seq)
    }

    /// The most recent record for the target object.
    pub fn latest(&self) -> Option<&ProvenanceRecord> {
        self.records
            .iter()
            .filter(|r| r.output_oid == self.target)
            .max_by_key(|r| r.seq_id)
    }

    /// All checksum-chaining edges (record → predecessor record).
    pub fn edges(&self) -> Vec<DagEdge> {
        let mut out = Vec::new();
        for r in &self.records {
            match r.kind {
                RecordKind::Insert => {}
                RecordKind::Update | RecordKind::Aggregate => {
                    for input in &r.inputs {
                        if let Some(prev) = input.prev_seq {
                            out.push(DagEdge {
                                from: (r.output_oid, r.seq_id),
                                to: (input.oid, prev),
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Graphviz DOT rendering of the provenance DAG (for inspection).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph provenance {\n  rankdir=BT;\n");
        for r in &self.records {
            let shape = match r.kind {
                RecordKind::Insert => "box",
                RecordKind::Update => "ellipse",
                RecordKind::Aggregate => "diamond",
            };
            let _ = writeln!(
                s,
                "  \"{}:{}\" [shape={} label=\"{} {}\\nseq {} by {}\"];",
                r.output_oid,
                r.seq_id,
                shape,
                r.kind.name(),
                r.output_oid,
                r.seq_id,
                r.participant
            );
        }
        for e in self.edges() {
            let _ = writeln!(
                s,
                "  \"{}:{}\" -> \"{}:{}\";",
                e.from.0, e.from.1, e.to.0, e.to.1
            );
        }
        s.push_str("}\n");
        s
    }
}

/// Collects the provenance object for `target` from the store: the target's
/// chain plus, transitively, every aggregation input's chain up to the
/// version that was aggregated.
pub fn collect(db: &ProvenanceDb, target: ObjectId) -> Result<ProvenanceObject, CoreError> {
    let latest = db
        .latest_for(target)
        .ok_or(CoreError::NoProvenance(target))?;

    // needed[oid] = highest seq of that object's chain we must include.
    let mut needed: HashMap<ObjectId, u64> = HashMap::new();
    needed.insert(target, latest.seq_id);
    let mut worklist = vec![target];
    // (oid, seq) -> decoded record, collected as we expand.
    let mut collected: BTreeMap<(ObjectId, u64), ProvenanceRecord> = BTreeMap::new();

    while let Some(oid) = worklist.pop() {
        let up_to = needed[&oid];
        for stored in db.records_for(oid) {
            if stored.seq_id > up_to {
                continue;
            }
            let key = (oid, stored.seq_id);
            if collected.contains_key(&key) {
                continue;
            }
            let record = ProvenanceRecord::from_stored(&stored)?;
            if record.kind == RecordKind::Aggregate {
                for input in &record.inputs {
                    let Some(prev) = input.prev_seq else { continue };
                    let entry = needed.entry(input.oid).or_insert(prev);
                    if *entry < prev {
                        *entry = prev;
                    }
                    worklist.push(input.oid);
                }
            }
            collected.insert(key, record);
        }
    }

    Ok(ProvenanceObject {
        target,
        records: collected.into_values().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::HashingStrategy;
    use crate::tracker::{ProvenanceTracker, TrackerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tep_crypto::digest::HashAlgorithm;
    use tep_crypto::pki::{CertificateAuthority, Participant, ParticipantId};
    use tep_model::{AggregateMode, Value};

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn setup() -> (ProvenanceTracker, Participant) {
        let mut rng = StdRng::seed_from_u64(77);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let p = ca.enroll(ParticipantId(2), 512, &mut rng);
        let tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                strategy: HashingStrategy::Economical,
            },
            Arc::new(ProvenanceDb::in_memory()),
        );
        (tracker, p)
    }

    /// Builds the Figure 2 history: A and B inserted, updated; C = agg(A@0, B@1);
    /// A updated again; D = agg(A@2, C).
    fn figure2() -> (
        ProvenanceTracker,
        Participant,
        ObjectId,
        ObjectId,
        ObjectId,
        ObjectId,
    ) {
        let (mut t, p) = setup();
        let (a, _) = t.insert(&p, Value::text("a1"), None).unwrap(); // A seq 0
        let (b, _) = t.insert(&p, Value::text("b1"), None).unwrap(); // B seq 0
        t.update(&p, b, Value::text("b2")).unwrap(); // B seq 1
        let (c, _) = t
            .aggregate(&p, &[a, b], Value::text("c1"), AggregateMode::Atomic)
            .unwrap(); // C seq 2 = 1 + max(0, 1)
        t.update(&p, a, Value::text("a2")).unwrap(); // A seq 1
        t.update(&p, a, Value::text("a3")).unwrap(); // A seq 2
        let (d, _) = t
            .aggregate(&p, &[a, c], Value::text("d1"), AggregateMode::Atomic)
            .unwrap(); // D seq 3 = 1 + max(2, 2)
        (t, p, a, b, c, d)
    }

    #[test]
    fn collect_full_dag_for_aggregate_output() {
        let (t, _, a, b, c, d) = figure2();
        let prov = collect(t.db(), d).unwrap();
        // D: 1 record; C: 1; A: 3 (seq 0..2); B: 2 (seq 0..1) = 7 records.
        assert_eq!(prov.len(), 7);
        assert_eq!(prov.latest().unwrap().output_oid, d);
        assert_eq!(prov.latest().unwrap().seq_id, 3);
        // Every object's chain is present.
        for (oid, n) in [(a, 3usize), (b, 2), (c, 1), (d, 1)] {
            let count = prov.records.iter().filter(|r| r.output_oid == oid).count();
            assert_eq!(count, n, "object {oid}");
        }
    }

    #[test]
    fn collect_trims_input_chain_to_aggregated_version() {
        let (t, _, a, b, c, _) = figure2();
        // C aggregated A@seq0 and B@seq1: A's later updates (seq 1, 2) are
        // NOT part of C's provenance.
        let prov = collect(t.db(), c).unwrap();
        let a_seqs: Vec<u64> = prov
            .records
            .iter()
            .filter(|r| r.output_oid == a)
            .map(|r| r.seq_id)
            .collect();
        assert_eq!(a_seqs, vec![0]);
        let b_seqs: Vec<u64> = prov
            .records
            .iter()
            .filter(|r| r.output_oid == b)
            .map(|r| r.seq_id)
            .collect();
        assert_eq!(b_seqs, vec![0, 1]);
        assert_eq!(prov.len(), 4);
    }

    #[test]
    fn collect_linear_chain() {
        let (mut t, p) = setup();
        let (a, _) = t.insert(&p, Value::Int(1), None).unwrap();
        t.update(&p, a, Value::Int(2)).unwrap();
        t.update(&p, a, Value::Int(3)).unwrap();
        let prov = collect(t.db(), a).unwrap();
        assert_eq!(prov.len(), 3);
        let edges = prov.edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&DagEdge {
            from: (a, 1),
            to: (a, 0)
        }));
    }

    #[test]
    fn collect_unknown_object_fails() {
        let (t, _p) = setup();
        assert!(matches!(
            collect(t.db(), ObjectId(42)),
            Err(CoreError::NoProvenance(_))
        ));
    }

    #[test]
    fn dot_export_mentions_every_record() {
        let (t, _, _, _, _, d) = figure2();
        let prov = collect(t.db(), d).unwrap();
        let dot = prov.to_dot();
        assert!(dot.starts_with("digraph"));
        for r in &prov.records {
            assert!(dot.contains(&format!("\"{}:{}\"", r.output_oid, r.seq_id)));
        }
        // Aggregates render as diamonds.
        assert!(dot.contains("diamond"));
    }

    #[test]
    fn diamond_dependency_collected_once() {
        // X aggregated into two objects, both aggregated into Z:
        // records must be deduplicated.
        let (mut t, p) = setup();
        let (x, _) = t.insert(&p, Value::Int(1), None).unwrap();
        let (y1, _) = t
            .aggregate(&p, &[x], Value::Int(2), AggregateMode::Atomic)
            .unwrap();
        let (y2, _) = t
            .aggregate(&p, &[x], Value::Int(3), AggregateMode::Atomic)
            .unwrap();
        let (z, _) = t
            .aggregate(&p, &[y1, y2], Value::Int(5), AggregateMode::Atomic)
            .unwrap();
        let prov = collect(t.db(), z).unwrap();
        // x: 1, y1: 1, y2: 1, z: 1.
        assert_eq!(prov.len(), 4);
    }
}
