//! The provenance tracker: applies database operations and documents each
//! one with checksummed provenance records.
//!
//! This is the participant-side engine of the paper. It owns the back-end
//! database (a [`Forest`]), a [`HashCache`] implementing the Basic or
//! Economical hashing strategy (§4.3), the per-object [`ChainHeads`]
//! (§3.2), and appends [`tep_storage::StoredRecord`] rows to a
//! [`ProvenanceDb`].
//!
//! **Fine-grained inheritance (§4.2).** Every insert/update/delete of an
//! object also dirties each ancestor's compound value, so the tracker emits
//! an *inherited* update record for every ancestor: an operation on a node
//! with `x` ancestors yields `x + 1` records (or `x` for deletes, whose
//! target no longer exists) — the relationship Figures 8–11 measure.
//!
//! **Complex operations (§4.4).** [`ProvenanceTracker::complex`] groups a
//! sequence of insert/update/delete primitives into one transactional unit:
//! one record per *touched object still present* (plus its ancestors),
//! covering the object's before → after subtree states.

use crate::chain::ChainHeads;
use crate::error::CoreError;
use crate::hashing::{HashCache, HashingStrategy};
use crate::metrics::Metrics;
use crate::parallel::parallel_map;
use crate::record::{InputRef, ProvenanceRecord, RecordKind};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::Participant;
use tep_model::{AggregateMode, Forest, ObjectId, PrimitiveOp, Value};
use tep_obs::{Counter, Histogram, Registry};
use tep_storage::ProvenanceDb;

/// Tracker instrumentation: operation/record counters, the
/// records-per-batch histogram, and stored row bytes.
#[derive(Clone)]
struct TrackerObs {
    ops: Counter,
    records: Counter,
    row_bytes: Counter,
    batch_records: Histogram,
}

impl TrackerObs {
    fn new(registry: &Registry) -> Self {
        // Records per tracked operation: 1 (atomic op on a root) up to
        // whole-table complex batches.
        let bounds: Vec<u64> = (0..13).map(|i| 1u64 << i).collect();
        TrackerObs {
            ops: registry.counter("tep_core_tracker_ops_total"),
            records: registry.counter("tep_core_tracker_records_total"),
            row_bytes: registry.counter("tep_core_tracker_row_bytes_total"),
            batch_records: registry.histogram("tep_core_tracker_batch_records", &bounds),
        }
    }

    fn record(&self, m: &Metrics) {
        self.ops.inc();
        self.records.add(m.records);
        self.row_bytes.add(m.row_bytes);
        self.batch_records.observe(m.records);
    }
}

/// Tracker configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrackerConfig {
    /// Hash algorithm for atom/subtree hashes and signatures.
    pub alg: HashAlgorithm,
    /// Basic vs Economical hashing (§4.3, Figure 7).
    pub strategy: HashingStrategy,
}

/// Outcome of a tracked complex operation.
#[derive(Clone, Debug, Default)]
pub struct ComplexReport {
    /// Objects created by the operation (in creation order).
    pub created: Vec<ObjectId>,
    /// Objects deleted by the operation.
    pub deleted: Vec<ObjectId>,
    /// Phase timing / record counts.
    pub metrics: Metrics,
}

/// The provenance-tracking database engine.
pub struct ProvenanceTracker {
    forest: Forest,
    cache: HashCache,
    heads: ChainHeads,
    db: Arc<ProvenanceDb>,
    config: TrackerConfig,
    obs: Option<TrackerObs>,
}

impl ProvenanceTracker {
    /// Creates a tracker over an empty database.
    pub fn new(config: TrackerConfig, db: Arc<ProvenanceDb>) -> Self {
        Self::adopt(Forest::new(), config, db)
    }

    /// Adopts an existing database.
    ///
    /// The pre-existing objects have no provenance records; call
    /// [`Self::record_genesis`] to emit baseline insert records if the
    /// adopted state must itself be verifiable. (The paper's experiments
    /// seed the back-end database first and measure only subsequent
    /// operations, which is what plain adoption models.)
    pub fn adopt(mut forest: Forest, config: TrackerConfig, db: Arc<ProvenanceDb>) -> Self {
        // The adopted forest's construction history is irrelevant: nothing
        // is cached yet, so replaying its dirty log would be pure overhead.
        forest.clear_dirty();
        ProvenanceTracker {
            forest,
            cache: HashCache::new(config.alg),
            heads: ChainHeads::new(),
            db,
            config,
            obs: None,
        }
    }

    /// Attaches tep-obs instrumentation to the tracker
    /// (`tep_core_tracker_*`) and its hash cache (`tep_core_cache_*`).
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(TrackerObs::new(registry));
        self.cache.attach_obs(registry);
    }

    /// Restores a tracker after a restart: the back-end forest comes from a
    /// snapshot (see `tep_storage::snapshot`), and every live object's
    /// chain head is rebuilt from its latest record in the provenance
    /// store — so tracking continues exactly where it left off and new
    /// records chain onto the persisted ones.
    pub fn restore(
        forest: Forest,
        config: TrackerConfig,
        db: Arc<ProvenanceDb>,
    ) -> ProvenanceTracker {
        let mut tracker = Self::adopt(forest, config, db);
        for oid in tracker.db.object_ids() {
            if !tracker.forest.contains(oid) {
                continue; // retired chain (object deleted before snapshot)
            }
            if let Some(latest) = tracker.db.latest_for(oid) {
                tracker.heads.advance(oid, latest.seq_id, latest.checksum);
            }
        }
        tracker
    }

    /// The back-end database.
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// The provenance store.
    pub fn db(&self) -> &Arc<ProvenanceDb> {
        &self.db
    }

    /// The tracker configuration.
    pub fn config(&self) -> TrackerConfig {
        self.config
    }

    /// Current chain head sequence for an object (`None` if unrecorded).
    pub fn head_seq(&self, oid: ObjectId) -> Option<u64> {
        self.heads.get(oid).map(|h| h.seq)
    }

    /// Current compound hash of `subtree(oid)` (computing it if stale).
    pub fn object_hash(&mut self, oid: ObjectId) -> Result<Vec<u8>, CoreError> {
        if !self.forest.contains(oid) {
            return Err(CoreError::Model(tep_model::ModelError::UnknownObject(oid)));
        }
        Ok(self.cache.get_or_compute(&self.forest, oid))
    }

    /// Emits an `Insert` genesis record for every root that has no chain
    /// yet, signed by `signer`, covering the adopted initial state.
    pub fn record_genesis(&mut self, signer: &Participant) -> Result<Metrics, CoreError> {
        let mut metrics = Metrics::default();
        let roots: Vec<ObjectId> = self.forest.roots().collect();
        for root in roots {
            if self.heads.get(root).is_some() {
                continue;
            }
            let t = Instant::now();
            let hash = self.cache.get_or_compute(&self.forest, root);
            metrics.hash_output_ns += t.elapsed().as_nanos() as u64;
            self.emit_record(
                signer,
                RecordKind::Insert,
                root,
                Vec::new(),
                hash,
                b"genesis",
                &mut metrics,
            )?;
        }
        if let Some(obs) = &self.obs {
            obs.record(&metrics);
        }
        Ok(metrics)
    }

    /// Tracked leaf insert: one actual record plus one inherited record per
    /// ancestor.
    pub fn insert(
        &mut self,
        signer: &Participant,
        value: Value,
        parent: Option<ObjectId>,
    ) -> Result<(ObjectId, Metrics), CoreError> {
        let report = self.complex(
            signer,
            &[PrimitiveOp::Insert {
                id: None,
                value,
                parent,
            }],
        )?;
        let id = *report.created.first().expect("insert creates an object");
        Ok((id, report.metrics))
    }

    /// Tracked update: one actual record plus inherited ancestor records.
    pub fn update(
        &mut self,
        signer: &Participant,
        id: ObjectId,
        value: Value,
    ) -> Result<Metrics, CoreError> {
        Ok(self
            .complex(signer, &[PrimitiveOp::Update { id, value }])?
            .metrics)
    }

    /// Tracked leaf delete: inherited ancestor records only (the deleted
    /// object's own provenance is no longer relevant — §2.1 footnote 3).
    pub fn delete(&mut self, signer: &Participant, id: ObjectId) -> Result<Metrics, CoreError> {
        Ok(self.complex(signer, &[PrimitiveOp::Delete { id }])?.metrics)
    }

    /// Tracked aggregation (§3): combines `subtree(A₁)…subtree(Aₙ)` into a
    /// new object whose record chains all input checksums — the non-linear
    /// (DAG) case.
    pub fn aggregate(
        &mut self,
        signer: &Participant,
        inputs: &[ObjectId],
        root_value: Value,
        mode: AggregateMode,
    ) -> Result<(ObjectId, Metrics), CoreError> {
        self.aggregate_annotated(signer, inputs, root_value, mode, Vec::new())
    }

    /// [`Self::aggregate`] with a signed operation annotation (footnote 4's
    /// white-box operation description, e.g. the query text).
    pub fn aggregate_annotated(
        &mut self,
        signer: &Participant,
        inputs: &[ObjectId],
        root_value: Value,
        mode: AggregateMode,
        annotation: Vec<u8>,
    ) -> Result<(ObjectId, Metrics), CoreError> {
        let mut metrics = Metrics::default();

        // Input hashes (current state) and chain references.
        let t = Instant::now();
        let mut sorted: Vec<ObjectId> = inputs.to_vec();
        sorted.sort_unstable();
        let mut input_refs = Vec::with_capacity(sorted.len());
        for &oid in &sorted {
            if !self.forest.contains(oid) {
                return Err(CoreError::Model(tep_model::ModelError::UnknownObject(oid)));
            }
            let hash = self.cache.get_or_compute(&self.forest, oid);
            input_refs.push(InputRef {
                oid,
                hash,
                prev_seq: self.heads.get(oid).map(|h| h.seq),
            });
        }
        metrics.hash_input_ns += t.elapsed().as_nanos() as u64;

        // seqID rule: 1 + the maximum seqID of any input (§2.1).
        let seq = input_refs
            .iter()
            .filter_map(|i| i.prev_seq)
            .max()
            .map_or(0, |m| m + 1);

        let output = self
            .forest
            .aggregate(inputs, root_value, mode)
            .map_err(CoreError::Model)?;

        let t = Instant::now();
        self.cache.sync(&mut self.forest);
        self.cache.reset_counter();
        let output_hash = self.cache.get_or_compute(&self.forest, output);
        metrics.nodes_hashed += self.cache.nodes_hashed();
        metrics.hash_output_ns += t.elapsed().as_nanos() as u64;

        let prev_checksums: Vec<Vec<u8>> = input_refs
            .iter()
            .filter(|i| i.prev_seq.is_some())
            .map(|i| {
                self.heads
                    .get(i.oid)
                    .expect("prev_seq implies a live head")
                    .checksum
                    .clone()
            })
            .collect();
        let prev_refs: Vec<&[u8]> = prev_checksums.iter().map(Vec::as_slice).collect();

        let t = Instant::now();
        let record = ProvenanceRecord::create_annotated(
            self.config.alg,
            signer,
            RecordKind::Aggregate,
            seq,
            input_refs,
            output,
            output_hash,
            annotation,
            &prev_refs,
        )?;
        metrics.sign_ns += t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let stored = record.to_stored();
        metrics.row_bytes += stored.paper_row_bytes();
        self.db.append(stored)?;
        metrics.store_ns += t.elapsed().as_nanos() as u64;
        metrics.records += 1;
        self.heads.advance(output, seq, record.checksum);
        if let Some(obs) = &self.obs {
            obs.record(&metrics);
        }
        Ok((output, metrics))
    }

    /// Applies a transactional **complex operation** (§4.4): a sequence of
    /// insert/update/delete primitives followed by one provenance record per
    /// touched-and-surviving object (and each of its ancestors).
    ///
    /// If a primitive fails mid-sequence, records are still emitted for the
    /// successfully applied prefix — provenance always reflects the actual
    /// database state — and the error is returned afterwards.
    ///
    /// Aggregations cannot appear inside a complex operation (the paper's
    /// complex operations group only insert/update/delete); use
    /// [`Self::aggregate`].
    pub fn complex(
        &mut self,
        signer: &Participant,
        ops: &[PrimitiveOp],
    ) -> Result<ComplexReport, CoreError> {
        self.complex_annotated(signer, ops, &[])
    }

    /// [`Self::complex`] with a signed operation annotation attached to
    /// every record the operation emits (footnote 4's white-box operation
    /// description — e.g. the SQL statement or workflow step id).
    pub fn complex_annotated(
        &mut self,
        signer: &Participant,
        ops: &[PrimitiveOp],
        annotation: &[u8],
    ) -> Result<ComplexReport, CoreError> {
        self.complex_impl(signer, ops, annotation, 1)
    }

    /// [`Self::complex`] with record signing fanned out across `threads`
    /// workers (the batch half of the parallel crypto pipeline).
    ///
    /// Sound because the records of one batch are mutually independent:
    /// each touched object emits exactly one record, which chains onto that
    /// object's *pre-batch* head — per-object chaining (§3.2) means no
    /// record in the batch depends on another's checksum. Records are still
    /// appended to the store in deterministic object order, so the produced
    /// history is byte-identical to the sequential [`Self::complex`].
    pub fn record_batch(
        &mut self,
        signer: &Participant,
        ops: &[PrimitiveOp],
        threads: usize,
    ) -> Result<ComplexReport, CoreError> {
        self.complex_impl(signer, ops, &[], threads)
    }

    fn complex_impl(
        &mut self,
        signer: &Participant,
        ops: &[PrimitiveOp],
        annotation: &[u8],
        threads: usize,
    ) -> Result<ComplexReport, CoreError> {
        let mut metrics = Metrics::default();

        // Phase 1 — make sure every pre-existing node has a cached pre-state
        // hash ("input tree" walk). Basic re-walks everything; Economical
        // reuses the warm cache from previous operations (syncing any dirty
        // marks left by out-of-band forest construction).
        let t = Instant::now();
        self.cache.reset_counter();
        if self.config.strategy == HashingStrategy::Basic {
            self.forest.clear_dirty();
            self.cache.clear();
        } else {
            self.cache.sync(&mut self.forest);
        }
        let roots: Vec<ObjectId> = self.forest.roots().collect();
        for root in &roots {
            self.cache.get_or_compute(&self.forest, *root);
        }
        metrics.nodes_hashed += self.cache.nodes_hashed();
        metrics.hash_input_ns += t.elapsed().as_nanos() as u64;

        // Phase 2 — apply primitives, lazily capturing before-hashes from
        // the (still pre-state) cache and tracking the touched set.
        let mut before: HashMap<ObjectId, Vec<u8>> = HashMap::new();
        let mut touched: BTreeSet<ObjectId> = BTreeSet::new();
        let mut created: BTreeSet<ObjectId> = BTreeSet::new();
        let mut created_order: Vec<ObjectId> = Vec::new();
        let mut deleted: BTreeSet<ObjectId> = BTreeSet::new();
        let mut deleted_order: Vec<ObjectId> = Vec::new();
        let mut failure: Option<CoreError> = None;

        for op in ops {
            let result = self.apply_one(
                op,
                &mut before,
                &mut touched,
                &mut created,
                &mut created_order,
                &mut deleted,
                &mut deleted_order,
            );
            if let Err(e) = result {
                failure = Some(e);
                break;
            }
        }

        // Phase 3 — recompute hashes ("output tree" walk). Economical
        // drains the forest's dirty log: exactly the mutated nodes' root
        // paths are invalidated, so the walk below rehashes only those.
        let t = Instant::now();
        self.cache.reset_counter();
        match self.config.strategy {
            HashingStrategy::Basic => {
                self.forest.clear_dirty();
                self.cache.clear();
            }
            HashingStrategy::Economical => {
                self.cache.sync(&mut self.forest);
            }
        }
        let roots: Vec<ObjectId> = self.forest.roots().collect();
        for root in &roots {
            self.cache.get_or_compute(&self.forest, *root);
        }
        metrics.nodes_hashed += self.cache.nodes_hashed();
        metrics.hash_output_ns += t.elapsed().as_nanos() as u64;

        // Phase 4 — emit one record per surviving touched object. Each
        // record chains onto its object's pre-batch head and each object is
        // emitted once, so the signatures are mutually independent and can
        // be computed on any number of workers.
        struct Pending {
            kind: RecordKind,
            oid: ObjectId,
            seq: u64,
            inputs: Vec<InputRef>,
            output_hash: Vec<u8>,
            prev_checksum: Option<Vec<u8>>,
        }
        let mut pending: Vec<Pending> = Vec::with_capacity(touched.len());
        for &id in &touched {
            if deleted.contains(&id) || !self.forest.contains(id) {
                continue;
            }
            let output_hash = self
                .cache
                .get(id)
                .expect("touched survivor recomputed in phase 3")
                .to_vec();
            let (kind, inputs) = if created.contains(&id) {
                (RecordKind::Insert, Vec::new())
            } else {
                let input_hash = before
                    .get(&id)
                    .expect("pre-existing touched object has a before hash")
                    .clone();
                let input = InputRef {
                    oid: id,
                    hash: input_hash,
                    prev_seq: self.heads.get(id).map(|h| h.seq),
                };
                (RecordKind::Update, vec![input])
            };
            pending.push(Pending {
                kind,
                oid: id,
                seq: self.heads.next_seq(id),
                inputs,
                output_hash,
                prev_checksum: self.heads.get(id).map(|h| h.checksum.clone()),
            });
        }

        let t = Instant::now();
        let alg = self.config.alg;
        let signed: Vec<Result<ProvenanceRecord, tep_crypto::rsa::RsaError>> =
            parallel_map(threads, &pending, |_, p| {
                let prev_refs: Vec<&[u8]> = p.prev_checksum.iter().map(Vec::as_slice).collect();
                ProvenanceRecord::create_annotated(
                    alg,
                    signer,
                    p.kind,
                    p.seq,
                    p.inputs.clone(),
                    p.oid,
                    p.output_hash.clone(),
                    annotation.to_vec(),
                    &prev_refs,
                )
            });
        metrics.sign_ns += t.elapsed().as_nanos() as u64;

        // Append in deterministic (object-id) order and advance heads.
        for record in signed {
            let record = record?;
            let oid = record.output_oid;
            let seq = record.seq_id;
            let t = Instant::now();
            let stored = record.to_stored();
            metrics.row_bytes += stored.paper_row_bytes();
            self.db.append(stored)?;
            metrics.store_ns += t.elapsed().as_nanos() as u64;
            metrics.records += 1;
            self.heads.advance(oid, seq, record.checksum);
        }

        // Deleted objects' chains are retired (§2.1 footnote 3).
        for &id in &deleted {
            self.heads.remove(id);
        }

        if let Some(e) = failure {
            return Err(e);
        }
        if let Some(obs) = &self.obs {
            obs.record(&metrics);
        }
        Ok(ComplexReport {
            created: created_order,
            deleted: deleted_order,
            metrics,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_one(
        &mut self,
        op: &PrimitiveOp,
        before: &mut HashMap<ObjectId, Vec<u8>>,
        touched: &mut BTreeSet<ObjectId>,
        created: &mut BTreeSet<ObjectId>,
        created_order: &mut Vec<ObjectId>,
        deleted: &mut BTreeSet<ObjectId>,
        deleted_order: &mut Vec<ObjectId>,
    ) -> Result<(), CoreError> {
        match op {
            PrimitiveOp::Insert { id, value, parent } => {
                if let Some(p) = parent {
                    self.capture_before_path(*p, before);
                }
                let id = match id {
                    Some(id) => {
                        self.forest.insert_with_id(*id, value.clone(), *parent)?;
                        *id
                    }
                    None => self.forest.insert(value.clone(), *parent)?,
                };
                created.insert(id);
                created_order.push(id);
                touched.insert(id);
                if let Some(p) = parent {
                    touched.insert(*p);
                    touched.extend(self.forest.ancestors(*p));
                }
                Ok(())
            }
            PrimitiveOp::Update { id, value } => {
                self.capture_before_path(*id, before);
                self.forest.update(*id, value.clone())?;
                touched.insert(*id);
                touched.extend(self.forest.ancestors(*id));
                Ok(())
            }
            PrimitiveOp::Delete { id } => {
                self.capture_before_path(*id, before);
                let ancestors = self.forest.ancestors(*id);
                self.forest.delete(*id)?;
                deleted.insert(*id);
                deleted_order.push(*id);
                created.remove(id);
                touched.extend(ancestors);
                Ok(())
            }
            PrimitiveOp::Aggregate { .. } => Err(CoreError::AggregateInComplexOp),
        }
    }

    /// Copies the cached pre-state hash of `id` and each ancestor into the
    /// `before` map (first capture wins). Objects created earlier within
    /// the same complex operation have no cache entry and need no before
    /// hash.
    fn capture_before_path(&self, id: ObjectId, before: &mut HashMap<ObjectId, Vec<u8>>) {
        let mut cur = Some(id);
        while let Some(n) = cur {
            if let Some(h) = self.cache.get(n) {
                before.entry(n).or_insert_with(|| h.to_vec());
            }
            cur = self.forest.node(n).and_then(|node| node.parent());
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_record(
        &mut self,
        signer: &Participant,
        kind: RecordKind,
        oid: ObjectId,
        inputs: Vec<InputRef>,
        output_hash: Vec<u8>,
        annotation: &[u8],
        metrics: &mut Metrics,
    ) -> Result<(), CoreError> {
        let seq = self.heads.next_seq(oid);
        let prev_checksum = self.heads.get(oid).map(|h| h.checksum.clone());
        let prev_refs: Vec<&[u8]> = prev_checksum.iter().map(Vec::as_slice).collect();

        let t = Instant::now();
        let record = ProvenanceRecord::create_annotated(
            self.config.alg,
            signer,
            kind,
            seq,
            inputs,
            oid,
            output_hash,
            annotation.to_vec(),
            &prev_refs,
        )?;
        metrics.sign_ns += t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let stored = record.to_stored();
        metrics.row_bytes += stored.paper_row_bytes();
        self.db.append(stored)?;
        metrics.store_ns += t.elapsed().as_nanos() as u64;
        metrics.records += 1;
        self.heads.advance(oid, seq, record.checksum);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tep_crypto::pki::{CertificateAuthority, ParticipantId};
    use tep_model::relational;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn setup(strategy: HashingStrategy) -> (ProvenanceTracker, Participant) {
        let mut rng = StdRng::seed_from_u64(21);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let p = ca.enroll(ParticipantId(1), 512, &mut rng);
        let config = TrackerConfig { alg: ALG, strategy };
        let tracker = ProvenanceTracker::new(config, Arc::new(ProvenanceDb::in_memory()));
        (tracker, p)
    }

    #[test]
    fn insert_emits_actual_plus_inherited() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        // root -> table -> row, then insert a cell (3 ancestors).
        let (root, _) = t.insert(&p, Value::text("db"), None).unwrap();
        let (table, _) = t.insert(&p, Value::text("t"), Some(root)).unwrap();
        let (row, _) = t.insert(&p, Value::Null, Some(table)).unwrap();
        let before_count = t.db().len();
        let (_cell, m) = t.insert(&p, Value::Int(7), Some(row)).unwrap();
        // x+1 records: cell + row + table + root.
        assert_eq!(m.records, 4);
        assert_eq!(t.db().len(), before_count + 4);
    }

    #[test]
    fn update_emits_x_plus_one_delete_emits_x() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let (root, _) = t.insert(&p, Value::text("db"), None).unwrap();
        let (table, _) = t.insert(&p, Value::text("t"), Some(root)).unwrap();
        let (row, _) = t.insert(&p, Value::Null, Some(table)).unwrap();
        let (cell, _) = t.insert(&p, Value::Int(7), Some(row)).unwrap();

        let m = t.update(&p, cell, Value::Int(8)).unwrap();
        assert_eq!(m.records, 4); // cell + 3 ancestors

        let m = t.delete(&p, cell).unwrap();
        assert_eq!(m.records, 3); // ancestors only
        assert!(!t.forest().contains(cell));
        assert!(t.head_seq(cell).is_none());
    }

    #[test]
    fn seq_ids_advance_per_object() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let (a, _) = t.insert(&p, Value::Int(1), None).unwrap();
        assert_eq!(t.head_seq(a), Some(0));
        t.update(&p, a, Value::Int(2)).unwrap();
        assert_eq!(t.head_seq(a), Some(1));
        t.update(&p, a, Value::Int(3)).unwrap();
        assert_eq!(t.head_seq(a), Some(2));
        // Independent object chains.
        let (b, _) = t.insert(&p, Value::Int(9), None).unwrap();
        assert_eq!(t.head_seq(b), Some(0));
        assert_eq!(t.head_seq(a), Some(2));
    }

    #[test]
    fn aggregate_seq_is_one_plus_max_input() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let (a, _) = t.insert(&p, Value::Int(1), None).unwrap();
        t.update(&p, a, Value::Int(2)).unwrap();
        t.update(&p, a, Value::Int(3)).unwrap(); // seq 2
        let (b, _) = t.insert(&p, Value::Int(9), None).unwrap(); // seq 0
        let (c, m) = t
            .aggregate(&p, &[a, b], Value::Int(12), AggregateMode::Atomic)
            .unwrap();
        assert_eq!(t.head_seq(c), Some(3)); // 1 + max(2, 0)
        assert_eq!(m.records, 1);
    }

    #[test]
    fn complex_op_one_record_per_surviving_object() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let (root, _) = t.insert(&p, Value::text("db"), None).unwrap();
        let (table, _) = t.insert(&p, Value::text("t"), Some(root)).unwrap();
        let (row, _) = t.insert(&p, Value::Null, Some(table)).unwrap();
        let cells: Vec<ObjectId> = (0..4)
            .map(|i| t.insert(&p, Value::Int(i), Some(row)).unwrap().0)
            .collect();

        // One complex op updating 3 cells in the same row.
        let ops: Vec<PrimitiveOp> = cells[..3]
            .iter()
            .map(|&c| PrimitiveOp::Update {
                id: c,
                value: Value::Int(100),
            })
            .collect();
        let report = t.complex(&p, &ops).unwrap();
        // Records: 3 cells + row + table + root = 6 (NOT 3 × 4 = 12).
        assert_eq!(report.metrics.records, 6);
    }

    #[test]
    fn complex_insert_then_update_collapses_to_insert() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let (root, _) = t.insert(&p, Value::text("db"), None).unwrap();
        let before = t.db().len();
        let report = t
            .complex(
                &p,
                &[PrimitiveOp::Insert {
                    id: None,
                    value: Value::Int(1),
                    parent: Some(root),
                }],
            )
            .unwrap();
        let new_id = report.created[0];
        // Update the freshly created node inside another complex op with an
        // insert+update pair: still a single Insert record for the new node.
        let report2 = t
            .complex(
                &p,
                &[
                    PrimitiveOp::Insert {
                        id: None,
                        value: Value::Int(2),
                        parent: Some(root),
                    },
                    PrimitiveOp::Update {
                        id: new_id,
                        value: Value::Int(10),
                    },
                ],
            )
            .unwrap();
        // Records: new node (Insert) + updated node (Update) + root = 3.
        assert_eq!(report2.metrics.records, 3);
        let _ = before;
    }

    #[test]
    fn complex_insert_then_delete_leaves_no_record_for_it() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let (root, _) = t.insert(&p, Value::text("db"), None).unwrap();
        let report = t
            .complex(
                &p,
                &[PrimitiveOp::Insert {
                    id: None,
                    value: Value::Int(1),
                    parent: Some(root),
                }],
            )
            .unwrap();
        let id = report.created[0];
        let db_len = t.db().len();
        let report = t.complex(&p, &[PrimitiveOp::Delete { id }]).unwrap();
        // Only the root's inherited record.
        assert_eq!(report.metrics.records, 1);
        assert_eq!(t.db().len(), db_len + 1);
        assert_eq!(report.deleted, vec![id]);
    }

    #[test]
    fn failed_primitive_still_documents_prefix() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let (root, _) = t.insert(&p, Value::text("db"), None).unwrap();
        let db_len = t.db().len();
        let err = t.complex(
            &p,
            &[
                PrimitiveOp::Insert {
                    id: None,
                    value: Value::Int(1),
                    parent: Some(root),
                },
                PrimitiveOp::Delete {
                    id: ObjectId(9999), // fails
                },
            ],
        );
        assert!(err.is_err());
        // The applied insert is still documented (insert + root inherited).
        assert_eq!(t.db().len(), db_len + 2);
    }

    #[test]
    fn aggregate_rejected_inside_complex() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let (a, _) = t.insert(&p, Value::Int(1), None).unwrap();
        let err = t.complex(
            &p,
            &[PrimitiveOp::Aggregate {
                inputs: vec![a],
                root_value: Value::Null,
                mode: AggregateMode::Atomic,
            }],
        );
        assert!(matches!(err, Err(CoreError::AggregateInComplexOp)));
    }

    #[test]
    fn basic_and_economical_agree_on_hashes() {
        let run = |strategy| {
            let (mut t, p) = setup(strategy);
            let (root, _) = t.insert(&p, Value::text("db"), None).unwrap();
            let (table, _) = t.insert(&p, Value::text("t"), Some(root)).unwrap();
            let (row, _) = t.insert(&p, Value::Null, Some(table)).unwrap();
            let (cell, _) = t.insert(&p, Value::Int(1), Some(row)).unwrap();
            t.update(&p, cell, Value::Int(2)).unwrap();
            t.delete(&p, cell).unwrap();
            let (cell2, _) = t.insert(&p, Value::Int(5), Some(row)).unwrap();
            let _ = cell2;
            t.object_hash(root).unwrap()
        };
        // NOTE: ids are allocated identically in both runs, so hashes must
        // match exactly.
        assert_eq!(
            run(HashingStrategy::Basic),
            run(HashingStrategy::Economical)
        );
    }

    #[test]
    fn basic_hashes_whole_tree_economical_only_dirty() {
        let mut rng = StdRng::seed_from_u64(5);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let p = ca.enroll(ParticipantId(1), 512, &mut rng);
        let build = || {
            let mut f = Forest::new();
            let root = relational::create_root(&mut f, "db");
            let th = relational::build_table(&mut f, root, "t", 50, 4, |r, a| {
                Value::Int((r * 10 + a) as i64)
            })
            .unwrap();
            (f, th)
        };

        // Economical: after warm-up, a single-cell update rehashes only the
        // root path (cell + row + table + root = 4 nodes).
        let (f, th) = build();
        let mut t = ProvenanceTracker::adopt(
            f,
            TrackerConfig {
                alg: ALG,
                strategy: HashingStrategy::Economical,
            },
            Arc::new(ProvenanceDb::in_memory()),
        );
        let cell = th.rows[0].cells[0];
        t.update(&p, cell, Value::Int(999)).unwrap(); // warms + updates
        let m = t.update(&p, cell, Value::Int(1000)).unwrap();
        assert_eq!(m.nodes_hashed, 4);

        // Basic: every operation rehashes the entire database twice
        // (input walk + output walk).
        let (f, th) = build();
        let total_nodes = f.len() as u64;
        let mut t = ProvenanceTracker::adopt(
            f,
            TrackerConfig {
                alg: ALG,
                strategy: HashingStrategy::Basic,
            },
            Arc::new(ProvenanceDb::in_memory()),
        );
        let cell = th.rows[0].cells[0];
        let m = t.update(&p, cell, Value::Int(999)).unwrap();
        assert_eq!(m.nodes_hashed, 2 * total_nodes);
    }

    #[test]
    fn record_batch_bitwise_equals_sequential_complex() {
        // Same op batch through complex() (serial signing) and
        // record_batch() (parallel signing) must produce byte-identical
        // provenance stores: signing is deterministic and records are
        // appended in object order either way.
        let run = |threads: usize| {
            let (mut t, p) = setup(HashingStrategy::Economical);
            let (root, _) = t.insert(&p, Value::text("db"), None).unwrap();
            let (row, _) = t.insert(&p, Value::Null, Some(root)).unwrap();
            let cells: Vec<ObjectId> = (0..6)
                .map(|i| t.insert(&p, Value::Int(i), Some(row)).unwrap().0)
                .collect();
            let ops: Vec<PrimitiveOp> = cells
                .iter()
                .map(|&c| PrimitiveOp::Update {
                    id: c,
                    value: Value::Int(777),
                })
                .chain(std::iter::once(PrimitiveOp::Insert {
                    id: None,
                    value: Value::Int(8),
                    parent: Some(row),
                }))
                .chain(std::iter::once(PrimitiveOp::Delete { id: cells[5] }))
                .collect();
            let report = if threads == 1 {
                t.complex(&p, &ops).unwrap()
            } else {
                t.record_batch(&p, &ops, threads).unwrap()
            };
            (t.db().all_records(), report.metrics.records)
        };
        let (serial, n1) = run(1);
        let (parallel, n4) = run(4);
        assert_eq!(n1, n4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn genesis_records_cover_roots() {
        let mut f = Forest::new();
        let root = relational::create_root(&mut f, "db");
        relational::build_table(&mut f, root, "t", 3, 2, |_, _| Value::Int(0)).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let p = ca.enroll(ParticipantId(1), 512, &mut rng);
        let mut t = ProvenanceTracker::adopt(
            f,
            TrackerConfig::default(),
            Arc::new(ProvenanceDb::in_memory()),
        );
        let m = t.record_genesis(&p).unwrap();
        assert_eq!(m.records, 1); // one root
        assert_eq!(t.head_seq(root), Some(0));
        // Idempotent.
        let m = t.record_genesis(&p).unwrap();
        assert_eq!(m.records, 0);
    }

    #[test]
    fn failed_insert_leaves_no_trace() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let err = t.insert(&p, Value::Int(1), Some(ObjectId(999)));
        assert!(err.is_err());
        assert_eq!(t.db().len(), 0);
        assert!(t.forest().is_empty());
    }

    #[test]
    fn aggregate_error_paths() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let (root, _) = t.insert(&p, Value::text("db"), None).unwrap();
        let (child, _) = t.insert(&p, Value::Int(1), Some(root)).unwrap();
        // Nested inputs rejected, nothing recorded beyond the inserts.
        let before = t.db().len();
        assert!(t
            .aggregate(&p, &[root, child], Value::Null, AggregateMode::Atomic)
            .is_err());
        assert!(t
            .aggregate(&p, &[ObjectId(999)], Value::Null, AggregateMode::Atomic)
            .is_err());
        assert!(t
            .aggregate(&p, &[], Value::Null, AggregateMode::Atomic)
            .is_err());
        assert_eq!(t.db().len(), before);
    }

    #[test]
    fn object_hash_unknown_object_errors() {
        let (mut t, _p) = setup(HashingStrategy::Economical);
        assert!(t.object_hash(ObjectId(5)).is_err());
    }

    #[test]
    fn delete_non_leaf_rejected_without_records() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let (root, _) = t.insert(&p, Value::text("db"), None).unwrap();
        t.insert(&p, Value::Int(1), Some(root)).unwrap();
        let before = t.db().len();
        assert!(t.delete(&p, root).is_err());
        assert_eq!(t.db().len(), before);
        assert!(t.forest().contains(root));
    }

    #[test]
    fn annotations_flow_through_complex_ops() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let (root, _) = t.insert(&p, Value::text("db"), None).unwrap();
        t.complex_annotated(
            &p,
            &[PrimitiveOp::Update {
                id: root,
                value: Value::text("db2"),
            }],
            b"rename database",
        )
        .unwrap();
        let stored = t.db().latest_for(root).unwrap();
        let rec = crate::record::ProvenanceRecord::from_stored(&stored).unwrap();
        assert_eq!(rec.annotation_text(), Some("rename database"));
    }

    #[test]
    fn metrics_row_bytes_match_store() {
        let (mut t, p) = setup(HashingStrategy::Economical);
        let (root, _) = t.insert(&p, Value::text("db"), None).unwrap();
        let (_, m) = t.insert(&p, Value::Int(1), Some(root)).unwrap();
        assert!(m.row_bytes > 0);
        // 512-bit keys → 64-byte checksums → 76-byte paper rows.
        assert_eq!(m.row_bytes, 2 * (4 + 4 + 4 + 64));
        assert_eq!(t.db().paper_row_bytes(), m.row_bytes + (4 + 4 + 4 + 64));
    }
}
