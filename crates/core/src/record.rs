//! Provenance records and integrity checksums (§3 of the paper).
//!
//! Each database operation is documented by a [`ProvenanceRecord`]
//! `(seqID, p, {(A₁,v₁)…}, (A,v))` carrying a **checksum**: the acting
//! participant's signature over the record's input hash(es), output hash,
//! and the checksum(s) of the predecessor record(s):
//!
//! ```text
//! insert     C₀ = S_SKp( 0 ‖ h(A,val) ‖ 0 )
//! update     Cᵢ = S_SKp( h(A,val) ‖ h(A,val′) ‖ Cᵢ₋₁ )
//! aggregate  C  = S_SKp( h(h(A₁,v₁)‖…‖h(Aₙ,vₙ)) ‖ h(B,val) ‖ C₁‖…‖Cₙ )
//! ```
//!
//! Rather than raw `‖` concatenation (which is ambiguous when components
//! vary in length), every component of the signed message is
//! length-prefixed under a domain-separation tag — the same binding with
//! none of the splicing ambiguity.

use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{Participant, ParticipantId};
use tep_crypto::rsa::RsaError;
use tep_model::encode::{DecodeError, Reader};
use tep_model::ObjectId;
use tep_storage::StoredRecord;

/// Wire version of the record body encoding.
const RECORD_VERSION: u8 = 2;

/// Domain tag of every signed checksum message.
const MSG_TAG: &[u8] = b"TEP-CHECKSUM\x01";

/// The kind of operation a record documents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A new object came into existence with no inputs.
    Insert,
    /// An existing object's (sub)tree changed — includes *inherited*
    /// records on ancestors (§4.2) and first-touch updates of objects
    /// created inside an aggregation.
    Update,
    /// A new object was produced by combining existing objects (§3) —
    /// the source of non-linear (DAG) provenance.
    Aggregate,
}

impl RecordKind {
    fn wire_id(self) -> u8 {
        match self {
            RecordKind::Insert => 0,
            RecordKind::Update => 1,
            RecordKind::Aggregate => 2,
        }
    }

    fn from_wire_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(RecordKind::Insert),
            1 => Some(RecordKind::Update),
            2 => Some(RecordKind::Aggregate),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Insert => "insert",
            RecordKind::Update => "update",
            RecordKind::Aggregate => "aggregate",
        }
    }
}

/// One input of a provenance record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputRef {
    /// The input object.
    pub oid: ObjectId,
    /// `h(A, val)` (atomic) or `h(subtree(A))` (compound) of the input at
    /// operation time.
    pub hash: Vec<u8>,
    /// `seqID` of the input object's then-latest provenance record, whose
    /// checksum is chained into this record's signature. `None` for objects
    /// with no prior record (e.g. nodes materialized inside an aggregation).
    pub prev_seq: Option<u64>,
}

/// A provenance record with its integrity checksum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvenanceRecord {
    /// Position in the output object's chain (§2.1 numbering rules).
    pub seq_id: u64,
    /// Who performed the operation.
    pub participant: ParticipantId,
    /// What kind of operation.
    pub kind: RecordKind,
    /// Inputs in global `ObjectId` order (empty for inserts).
    pub inputs: Vec<InputRef>,
    /// The output object.
    pub output_oid: ObjectId,
    /// Hash of the output object/subtree after the operation.
    pub output_hash: Vec<u8>,
    /// Application-supplied operation annotation, integrity-protected by
    /// the checksum. The paper's footnote 4 observes the scheme "is easily
    /// translated to a provenance model that simply logs the white-box
    /// operations that have been performed" — this is that translation:
    /// put the operation description (SQL text, workflow step, UDF name…)
    /// here and it becomes as tamper-evident as the value hashes. Empty
    /// means no annotation.
    pub annotation: Vec<u8>,
    /// `S_SKp(…)` — the signed integrity checksum.
    pub checksum: Vec<u8>,
}

/// Assembles the canonical byte string the checksum signs.
///
/// `prev_checksums` must be in the same order as `inputs` (and exactly one
/// entry per input that has `prev_seq = Some(_)`).
///
/// Hardening beyond the paper's literal formula: the signed message also
/// binds the record's `seqID` and output object id. The paper secures chain
/// *structure* purely through checksum chaining, which leaves the numeric
/// `seqID` label of a chain's newest record malleable; signing it removes
/// that (harmless but untidy) degree of freedom.
#[allow(clippy::too_many_arguments)] // mirrors the record's field list
pub fn checksum_message(
    alg: HashAlgorithm,
    kind: RecordKind,
    seq_id: u64,
    inputs: &[InputRef],
    output_oid: ObjectId,
    output_hash: &[u8],
    annotation: &[u8],
    prev_checksums: &[&[u8]],
) -> Vec<u8> {
    let mut msg = Vec::with_capacity(128);
    msg.extend_from_slice(MSG_TAG);
    msg.push(alg.wire_id());
    msg.push(kind.wire_id());
    msg.extend_from_slice(&seq_id.to_be_bytes());

    // Input part: 0 for inserts, h(input) for updates, the digest of the
    // concatenated input hashes for aggregates (the paper's inner hash).
    let input_part: Vec<u8> = match kind {
        RecordKind::Insert => Vec::new(),
        RecordKind::Update => inputs.first().map(|i| i.hash.clone()).unwrap_or_default(),
        RecordKind::Aggregate => {
            let mut concat = Vec::new();
            for input in inputs {
                concat.extend_from_slice(&(input.hash.len() as u64).to_be_bytes());
                concat.extend_from_slice(&input.hash);
            }
            alg.digest(&concat)
        }
    };
    msg.extend_from_slice(&(input_part.len() as u64).to_be_bytes());
    msg.extend_from_slice(&input_part);

    msg.extend_from_slice(&output_oid.raw().to_be_bytes());
    msg.extend_from_slice(&(output_hash.len() as u64).to_be_bytes());
    msg.extend_from_slice(output_hash);

    msg.extend_from_slice(&(annotation.len() as u64).to_be_bytes());
    msg.extend_from_slice(annotation);

    msg.extend_from_slice(&(prev_checksums.len() as u64).to_be_bytes());
    for prev in prev_checksums {
        msg.extend_from_slice(&(prev.len() as u64).to_be_bytes());
        msg.extend_from_slice(prev);
    }
    msg
}

impl ProvenanceRecord {
    /// Builds and signs a record.
    ///
    /// `prev_checksums` are the checksums of the records named by each
    /// input's `prev_seq`, in input order (skipping `None`s).
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        alg: HashAlgorithm,
        signer: &Participant,
        kind: RecordKind,
        seq_id: u64,
        inputs: Vec<InputRef>,
        output_oid: ObjectId,
        output_hash: Vec<u8>,
        prev_checksums: &[&[u8]],
    ) -> Result<Self, RsaError> {
        Self::create_annotated(
            alg,
            signer,
            kind,
            seq_id,
            inputs,
            output_oid,
            output_hash,
            Vec::new(),
            prev_checksums,
        )
    }

    /// Like [`Self::create`], additionally binding an application-supplied
    /// operation annotation into the signed checksum (footnote 4's
    /// white-box operation log).
    #[allow(clippy::too_many_arguments)]
    pub fn create_annotated(
        alg: HashAlgorithm,
        signer: &Participant,
        kind: RecordKind,
        seq_id: u64,
        mut inputs: Vec<InputRef>,
        output_oid: ObjectId,
        output_hash: Vec<u8>,
        annotation: Vec<u8>,
        prev_checksums: &[&[u8]],
    ) -> Result<Self, RsaError> {
        inputs.sort_by_key(|i| i.oid);
        let msg = checksum_message(
            alg,
            kind,
            seq_id,
            &inputs,
            output_oid,
            &output_hash,
            &annotation,
            prev_checksums,
        );
        let checksum = signer.sign(alg, &msg)?;
        Ok(ProvenanceRecord {
            seq_id,
            participant: signer.id(),
            kind,
            inputs,
            output_oid,
            output_hash,
            annotation,
            checksum,
        })
    }

    /// The annotation as UTF-8 text, if it is text.
    pub fn annotation_text(&self) -> Option<&str> {
        if self.annotation.is_empty() {
            None
        } else {
            std::str::from_utf8(&self.annotation).ok()
        }
    }

    /// Serializes for storage as a [`StoredRecord`].
    pub fn to_stored(&self) -> StoredRecord {
        StoredRecord {
            seq_id: self.seq_id,
            participant: self.participant,
            oid: self.output_oid,
            checksum: self.checksum.clone(),
            payload: self.encode_body(),
        }
    }

    /// Reconstructs a record from storage.
    pub fn from_stored(stored: &StoredRecord) -> Result<Self, DecodeError> {
        let mut rec = Self::decode_body(&stored.payload)?;
        rec.checksum = stored.checksum.clone();
        // The storage columns are denormalized copies; trust the payload but
        // keep them consistent for queries.
        rec.seq_id = stored.seq_id;
        rec.participant = stored.participant;
        rec.output_oid = stored.oid;
        Ok(rec)
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.output_hash.len());
        out.push(RECORD_VERSION);
        out.push(self.kind.wire_id());
        out.extend_from_slice(&self.seq_id.to_be_bytes());
        out.extend_from_slice(&self.participant.0.to_be_bytes());
        out.extend_from_slice(&self.output_oid.raw().to_be_bytes());
        out.extend_from_slice(&(self.output_hash.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.output_hash);
        out.extend_from_slice(&(self.annotation.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.annotation);
        out.extend_from_slice(&(self.inputs.len() as u64).to_be_bytes());
        for input in &self.inputs {
            out.extend_from_slice(&input.oid.raw().to_be_bytes());
            out.extend_from_slice(&(input.hash.len() as u64).to_be_bytes());
            out.extend_from_slice(&input.hash);
            match input.prev_seq {
                Some(s) => {
                    out.push(1);
                    out.extend_from_slice(&s.to_be_bytes());
                }
                None => out.push(0),
            }
        }
        out
    }

    fn decode_body(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let version = r.u8()?;
        if version != RECORD_VERSION {
            return Err(DecodeError::BadTag(version));
        }
        let kind = RecordKind::from_wire_id(r.u8()?).ok_or(DecodeError::BadTag(0xFE))?;
        let seq_id = r.u64()?;
        let participant = ParticipantId(r.u64()?);
        let output_oid = ObjectId(r.u64()?);
        let output_hash = r.len_prefixed()?.to_vec();
        let annotation = r.len_prefixed()?.to_vec();
        let input_count = r.u64()? as usize;
        let mut inputs = Vec::with_capacity(input_count.min(1024));
        for _ in 0..input_count {
            let oid = ObjectId(r.u64()?);
            let hash = r.len_prefixed()?.to_vec();
            let prev_seq = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                t => return Err(DecodeError::BadTag(t)),
            };
            inputs.push(InputRef {
                oid,
                hash,
                prev_seq,
            });
        }
        r.expect_end()?;
        Ok(ProvenanceRecord {
            seq_id,
            participant,
            kind,
            inputs,
            output_oid,
            output_hash,
            annotation,
            checksum: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tep_crypto::pki::CertificateAuthority;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn participant(seed: u64, id: u64) -> Participant {
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        ca.enroll(ParticipantId(id), 512, &mut rng)
    }

    fn sample_record(p: &Participant) -> ProvenanceRecord {
        ProvenanceRecord::create(
            ALG,
            p,
            RecordKind::Update,
            3,
            vec![InputRef {
                oid: ObjectId(7),
                hash: vec![0xAA; 32],
                prev_seq: Some(2),
            }],
            ObjectId(7),
            vec![0xBB; 32],
            &[&[0xC0; 64]],
        )
        .unwrap()
    }

    #[test]
    fn create_signs_verifiably() {
        let p = participant(1, 42);
        let rec = sample_record(&p);
        let msg = checksum_message(
            ALG,
            rec.kind,
            rec.seq_id,
            &rec.inputs,
            rec.output_oid,
            &rec.output_hash,
            &[],
            &[&[0xC0; 64]],
        );
        p.keypair()
            .public()
            .verify(ALG, &msg, &rec.checksum)
            .unwrap();
    }

    #[test]
    fn message_differs_per_component() {
        let base_inputs = vec![InputRef {
            oid: ObjectId(7),
            hash: vec![0xAA; 32],
            prev_seq: Some(2),
        }];
        let base = checksum_message(
            ALG,
            RecordKind::Update,
            3,
            &base_inputs,
            ObjectId(7),
            &[0xBB; 32],
            &[],
            &[&[0xC0; 4]],
        );

        // Different input hash.
        let other_inputs = vec![InputRef {
            oid: ObjectId(7),
            hash: vec![0xAC; 32],
            prev_seq: Some(2),
        }];
        assert_ne!(
            checksum_message(
                ALG,
                RecordKind::Update,
                3,
                &other_inputs,
                ObjectId(7),
                &[0xBB; 32],
                &[],
                &[&[0xC0; 4]]
            ),
            base
        );
        // Different output hash.
        assert_ne!(
            checksum_message(
                ALG,
                RecordKind::Update,
                3,
                &base_inputs,
                ObjectId(7),
                &[0xBC; 32],
                &[],
                &[&[0xC0; 4]]
            ),
            base
        );
        // Different output oid.
        assert_ne!(
            checksum_message(
                ALG,
                RecordKind::Update,
                3,
                &base_inputs,
                ObjectId(8),
                &[0xBB; 32],
                &[],
                &[&[0xC0; 4]]
            ),
            base
        );
        // Different previous checksum.
        assert_ne!(
            checksum_message(
                ALG,
                RecordKind::Update,
                3,
                &base_inputs,
                ObjectId(7),
                &[0xBB; 32],
                &[],
                &[&[0xC1; 4]]
            ),
            base
        );
        // Different kind.
        assert_ne!(
            checksum_message(
                ALG,
                RecordKind::Aggregate,
                3,
                &base_inputs,
                ObjectId(7),
                &[0xBB; 32],
                &[],
                &[&[0xC0; 4]]
            ),
            base
        );
    }

    #[test]
    fn insert_message_has_zero_parts() {
        let m = checksum_message(
            ALG,
            RecordKind::Insert,
            3,
            &[],
            ObjectId(1),
            &[0xDD; 32],
            &[],
            &[],
        );
        // Must still bind the output.
        let m2 = checksum_message(
            ALG,
            RecordKind::Insert,
            3,
            &[],
            ObjectId(2),
            &[0xDD; 32],
            &[],
            &[],
        );
        assert_ne!(m, m2);
    }

    #[test]
    fn aggregate_message_depends_on_input_order_canonically() {
        // Inputs are sorted by the constructor, so logically-equal aggregates
        // sign identical messages regardless of caller order.
        let p = participant(2, 1);
        let mk = |order: [u64; 2]| {
            ProvenanceRecord::create(
                ALG,
                &p,
                RecordKind::Aggregate,
                1,
                order
                    .iter()
                    .map(|&o| InputRef {
                        oid: ObjectId(o),
                        hash: vec![o as u8; 32],
                        prev_seq: Some(0),
                    })
                    .collect(),
                ObjectId(99),
                vec![0xEE; 32],
                &[&[1u8; 4], &[2u8; 4]],
            )
            .unwrap()
        };
        let a = mk([1, 2]);
        let b = mk([2, 1]);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn stored_roundtrip() {
        let p = participant(3, 5);
        let rec = sample_record(&p);
        let stored = rec.to_stored();
        assert_eq!(stored.oid, ObjectId(7));
        assert_eq!(stored.seq_id, 3);
        let back = ProvenanceRecord::from_stored(&stored).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn decode_rejects_corruption() {
        let p = participant(4, 5);
        let rec = sample_record(&p);
        let stored = rec.to_stored();
        // Truncated payload.
        let mut bad = stored.clone();
        bad.payload.truncate(bad.payload.len() - 1);
        assert!(ProvenanceRecord::from_stored(&bad).is_err());
        // Bad version byte.
        let mut bad = stored.clone();
        bad.payload[0] = 0xFF;
        assert!(ProvenanceRecord::from_stored(&bad).is_err());
        // Bad kind byte.
        let mut bad = stored;
        bad.payload[1] = 0x7F;
        assert!(ProvenanceRecord::from_stored(&bad).is_err());
    }

    #[test]
    fn record_kind_roundtrip() {
        for k in [
            RecordKind::Insert,
            RecordKind::Update,
            RecordKind::Aggregate,
        ] {
            assert_eq!(RecordKind::from_wire_id(k.wire_id()), Some(k));
        }
        assert_eq!(RecordKind::from_wire_id(9), None);
    }
}
