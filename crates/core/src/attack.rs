//! Attack toolkit: the tamper operations of the threat model (§2.2),
//! packaged so tests and examples can *demonstrate* that each attack is
//! detected (or document the scheme's known boundaries).
//!
//! Nothing here is required in production — it exists to exercise
//! guarantees **R1–R8** end-to-end. Each [`Tamper`] mutates a
//! [`ProvenanceObject`] the way an attacker with write access to the
//! provenance store (or the wire) could.

use crate::provenance::ProvenanceObject;
use crate::record::{checksum_message, InputRef, ProvenanceRecord, RecordKind};
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{Participant, ParticipantId};
use tep_crypto::rsa::RsaError;
use tep_model::ObjectId;

/// A tampering action against a provenance object.
#[derive(Clone, Debug)]
pub enum Tamper {
    /// Flip a bit of a record's claimed output hash (falsify what the
    /// operation produced) — targets R1.
    FlipOutputHash {
        /// Record's object.
        oid: ObjectId,
        /// Record's seq.
        seq: u64,
    },
    /// Flip a bit of a record's claimed input hash (falsify what the
    /// operation consumed) — targets R1.
    FlipInputHash {
        /// Record's object.
        oid: ObjectId,
        /// Record's seq.
        seq: u64,
        /// Which input.
        input: usize,
    },
    /// Corrupt the stored checksum itself.
    FlipChecksum {
        /// Record's object.
        oid: ObjectId,
        /// Record's seq.
        seq: u64,
    },
    /// Remove a record entirely — targets R2/R7.
    Remove {
        /// Record's object.
        oid: ObjectId,
        /// Record's seq.
        seq: u64,
    },
    /// Re-attribute a record to a different participant — targets R8.
    Reattribute {
        /// Record's object.
        oid: ObjectId,
        /// Record's seq.
        seq: u64,
        /// New claimed author.
        to: ParticipantId,
    },
}

/// Applies a tamper. Returns `false` if the targeted record was not found
/// (nothing was changed).
pub fn apply_tamper(prov: &mut ProvenanceObject, tamper: &Tamper) -> bool {
    let find = |records: &mut Vec<ProvenanceRecord>, oid: ObjectId, seq: u64| {
        records
            .iter_mut()
            .position(|r| r.output_oid == oid && r.seq_id == seq)
    };
    match *tamper {
        Tamper::FlipOutputHash { oid, seq } => {
            let Some(i) = find(&mut prov.records, oid, seq) else {
                return false;
            };
            prov.records[i].output_hash[0] ^= 0x01;
            true
        }
        Tamper::FlipInputHash { oid, seq, input } => {
            let Some(i) = find(&mut prov.records, oid, seq) else {
                return false;
            };
            let Some(inp) = prov.records[i].inputs.get_mut(input) else {
                return false;
            };
            inp.hash[0] ^= 0x01;
            true
        }
        Tamper::FlipChecksum { oid, seq } => {
            let Some(i) = find(&mut prov.records, oid, seq) else {
                return false;
            };
            prov.records[i].checksum[0] ^= 0x01;
            true
        }
        Tamper::Remove { oid, seq } => {
            let before = prov.records.len();
            prov.records
                .retain(|r| !(r.output_oid == oid && r.seq_id == seq));
            prov.records.len() != before
        }
        Tamper::Reattribute { oid, seq, to } => {
            let Some(i) = find(&mut prov.records, oid, seq) else {
                return false;
            };
            prov.records[i].participant = to;
            true
        }
    }
}

/// Every single-record tamper applicable to `prov` — used by exhaustive
/// "any mutation is detected" tests.
pub fn all_single_record_tampers(
    prov: &ProvenanceObject,
    reattribute_to: ParticipantId,
) -> Vec<Tamper> {
    let mut out = Vec::new();
    for r in &prov.records {
        let (oid, seq) = (r.output_oid, r.seq_id);
        out.push(Tamper::FlipOutputHash { oid, seq });
        out.push(Tamper::FlipChecksum { oid, seq });
        for input in 0..r.inputs.len() {
            out.push(Tamper::FlipInputHash { oid, seq, input });
        }
        out.push(Tamper::Remove { oid, seq });
        if r.participant != reattribute_to {
            out.push(Tamper::Reattribute {
                oid,
                seq,
                to: reattribute_to,
            });
        }
    }
    out
}

/// The **collusion splice** of R7: two colluding participants remove every
/// record strictly between `keep_seq` and `resign_seq` on `oid`'s chain,
/// and the later colluder re-signs their record so it chains directly to
/// the earlier colluder's.
///
/// If any *non-colluding* participant's record follows `resign_seq`, its
/// signed predecessor checksum no longer matches and verification fails —
/// that is guarantee R7. If the re-signed record is the chain tail, the
/// splice verifies, but the re-signed record is attributable to the
/// colluder (R8's non-repudiation boundary) — the same boundary as in
/// Hasan et al.'s chain scheme.
pub fn collusion_splice(
    prov: &mut ProvenanceObject,
    alg: HashAlgorithm,
    oid: ObjectId,
    keep_seq: u64,
    resign_seq: u64,
    late_colluder: &Participant,
) -> Result<(), RsaError> {
    // Remove victims between the colluders.
    prov.records
        .retain(|r| r.output_oid != oid || r.seq_id <= keep_seq || r.seq_id >= resign_seq);
    // The earlier colluder's checksum to chain from.
    let prev_checksum = prov
        .record(oid, keep_seq)
        .expect("keep_seq record must exist")
        .checksum
        .clone();
    let idx = prov
        .records
        .iter()
        .position(|r| r.output_oid == oid && r.seq_id == resign_seq)
        .expect("resign_seq record must exist");

    // Rewrite the later colluder's record: it now claims the earlier
    // colluder's output as its input and re-signs accordingly.
    let input_hash = prov
        .record(oid, keep_seq)
        .expect("checked above")
        .output_hash
        .clone();
    let rec = &mut prov.records[idx];
    rec.participant = late_colluder.id();
    rec.inputs = vec![InputRef {
        oid,
        hash: input_hash,
        prev_seq: Some(keep_seq),
    }];
    let msg = checksum_message(
        alg,
        rec.kind,
        rec.seq_id,
        &rec.inputs,
        rec.output_oid,
        &rec.output_hash,
        &rec.annotation,
        &[&prev_checksum],
    );
    rec.checksum = late_colluder.sign(alg, &msg)?;
    Ok(())
}

/// A forged insertion (R3/R6): the attacker crafts a record claiming an
/// operation at `(oid, seq)` and signs it with *their own* key (they cannot
/// forge anyone else's). The verifier catches it as a fork/dangling record
/// — or as a bad signature if the attacker re-attributes it.
pub fn forge_insertion(
    prov: &mut ProvenanceObject,
    alg: HashAlgorithm,
    attacker: &Participant,
    oid: ObjectId,
    seq: u64,
    fake_output_hash: Vec<u8>,
) -> Result<(), RsaError> {
    // Chain from whatever record precedes the insertion point, if any.
    let prev = prov
        .records
        .iter()
        .filter(|r| r.output_oid == oid && r.seq_id < seq)
        .max_by_key(|r| r.seq_id)
        .map(|r| (r.seq_id, r.checksum.clone(), r.output_hash.clone()));
    let (inputs, prev_checksums): (Vec<InputRef>, Vec<Vec<u8>>) = match &prev {
        Some((pseq, pchk, phash)) => (
            vec![InputRef {
                oid,
                hash: phash.clone(),
                prev_seq: Some(*pseq),
            }],
            vec![pchk.clone()],
        ),
        None => (Vec::new(), Vec::new()),
    };
    let kind = if inputs.is_empty() {
        RecordKind::Insert
    } else {
        RecordKind::Update
    };
    let prev_refs: Vec<&[u8]> = prev_checksums.iter().map(Vec::as_slice).collect();
    let msg = checksum_message(
        alg,
        kind,
        seq,
        &inputs,
        oid,
        &fake_output_hash,
        &[],
        &prev_refs,
    );
    let checksum = attacker.sign(alg, &msg)?;
    prov.records.push(ProvenanceRecord {
        seq_id: seq,
        participant: attacker.id(),
        kind,
        inputs,
        output_oid: oid,
        output_hash: fake_output_hash,
        annotation: Vec::new(),
        checksum,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicLedger;
    use crate::verify::{TamperEvidence, Verifier};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tep_crypto::pki::{CertificateAuthority, KeyDirectory};
    use tep_model::Value;
    use tep_storage::ProvenanceDb;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    struct World {
        ledger: AtomicLedger,
        keys: KeyDirectory,
        alice: Participant,
        bob: Participant,
        mallory: Participant,
    }

    fn world() -> World {
        let mut rng = StdRng::seed_from_u64(666);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let bob = ca.enroll(ParticipantId(2), 512, &mut rng);
        let mallory = ca.enroll(ParticipantId(3), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        for p in [&alice, &bob, &mallory] {
            keys.register(p.certificate().clone()).unwrap();
        }
        World {
            ledger: AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory())),
            keys,
            alice,
            bob,
            mallory,
        }
    }

    /// A five-step history: alice inserts, bob/alice/bob update, alice updates.
    fn history(w: &mut World) -> ObjectId {
        let a = w.ledger.insert(&w.alice, Value::Int(0)).unwrap();
        w.ledger.update(&w.bob, a, Value::Int(1)).unwrap();
        w.ledger.update(&w.alice, a, Value::Int(2)).unwrap();
        w.ledger.update(&w.bob, a, Value::Int(3)).unwrap();
        w.ledger.update(&w.alice, a, Value::Int(4)).unwrap();
        a
    }

    #[test]
    fn every_single_record_tamper_is_detected() {
        let mut w = world();
        let a = history(&mut w);
        let clean = w.ledger.provenance_of(a).unwrap();
        let hash = w.ledger.object_hash(a).unwrap();
        let verifier = Verifier::new(&w.keys, ALG);
        assert!(verifier.verify(&hash, &clean).verified());

        for tamper in all_single_record_tampers(&clean, w.mallory.id()) {
            let mut tampered = clean.clone();
            assert!(apply_tamper(&mut tampered, &tamper), "{tamper:?} applied");
            let v = verifier.verify(&hash, &tampered);
            assert!(!v.verified(), "tamper {tamper:?} went undetected");
        }
    }

    #[test]
    fn r7_collusion_splice_detected_with_honest_successor() {
        let mut w = world();
        // alice(0) bob(1) alice(2) bob(3) alice(4):
        // colluders alice(seq 0) and alice(seq 2) splice out bob's seq 1...
        let a = history(&mut w);
        let mut prov = w.ledger.provenance_of(a).unwrap();
        collusion_splice(&mut prov, ALG, a, 0, 2, &w.alice).unwrap();
        // ...but bob's honest record at seq 3 still chains to alice's
        // ORIGINAL seq-2 checksum → detected.
        let hash = w.ledger.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(!v.verified());
        assert!(v
            .issues
            .iter()
            .any(|i| matches!(i, TamperEvidence::BadSignature { seq: 3, .. })));
    }

    #[test]
    fn r7_boundary_tail_splice_verifies_but_is_attributable() {
        // Known boundary (same as Hasan et al.): if the re-signing colluder
        // owns the chain TAIL and the data matches their claimed output,
        // the splice verifies — but the record is signed by the colluder,
        // so responsibility is non-repudiable (R8).
        let mut w = world();
        let a = history(&mut w); // tail is alice's seq 4
        let mut prov = w.ledger.provenance_of(a).unwrap();
        collusion_splice(&mut prov, ALG, a, 2, 4, &w.alice).unwrap();
        let hash = w.ledger.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v.verified(), "tail splice is the documented boundary");
        // The spliced record is attributable to alice — she signed it.
        let spliced = prov.record(a, 4).unwrap();
        assert_eq!(spliced.participant, w.alice.id());
    }

    #[test]
    fn r3_forged_insertion_detected_as_fork_or_dangling() {
        let mut w = world();
        let a = history(&mut w);
        let hash = w.ledger.object_hash(a).unwrap();
        let verifier = Verifier::new(&w.keys, ALG);

        // Forge a record at an OCCUPIED slot → fork (duplicate).
        let mut prov = w.ledger.provenance_of(a).unwrap();
        forge_insertion(&mut prov, ALG, &w.mallory, a, 2, vec![0xAB; 32]).unwrap();
        let v = verifier.verify(&hash, &prov);
        assert!(v
            .issues
            .iter()
            .any(|i| matches!(i, TamperEvidence::DuplicateRecord { seq: 2, .. })));

        // Forge a record BEYOND the tail → it becomes the latest record and
        // the data object no longer matches it.
        let mut prov = w.ledger.provenance_of(a).unwrap();
        forge_insertion(&mut prov, ALG, &w.mallory, a, 9, vec![0xAB; 32]).unwrap();
        let v = verifier.verify(&hash, &prov);
        assert!(!v.verified());
        assert!(v
            .issues
            .iter()
            .any(|i| matches!(i, TamperEvidence::OutputMismatch { .. })));
    }

    #[test]
    fn r6_colluders_cannot_insert_for_noncolluders() {
        // Mallory forges a record and re-attributes it to Bob: Bob's key
        // can't have signed it.
        let mut w = world();
        let a = history(&mut w);
        let mut prov = w.ledger.provenance_of(a).unwrap();
        forge_insertion(&mut prov, ALG, &w.mallory, a, 9, vec![0xAB; 32]).unwrap();
        apply_tamper(
            &mut prov,
            &Tamper::Reattribute {
                oid: a,
                seq: 9,
                to: w.bob.id(),
            },
        );
        let hash = w.ledger.object_hash(a).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v
            .issues
            .iter()
            .any(|i| matches!(i, TamperEvidence::BadSignature { seq: 9, .. })));
    }

    #[test]
    fn tamper_on_missing_record_reports_not_found() {
        let mut w = world();
        let a = history(&mut w);
        let mut prov = w.ledger.provenance_of(a).unwrap();
        assert!(!apply_tamper(
            &mut prov,
            &Tamper::FlipOutputHash { oid: a, seq: 99 }
        ));
        assert!(!apply_tamper(
            &mut prov,
            &Tamper::Remove {
                oid: ObjectId(12345),
                seq: 0
            }
        ));
        // Input index out of range.
        assert!(!apply_tamper(
            &mut prov,
            &Tamper::FlipInputHash {
                oid: a,
                seq: 0,
                input: 5
            }
        ));
    }
}
