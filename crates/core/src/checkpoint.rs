//! Trust anchors: closing the chain-tail rollback boundary.
//!
//! Pure checksum chaining (this paper's scheme, like Hasan et al.'s) has a
//! documented boundary: an attacker who controls the chain **tail** can
//! truncate the most recent records *and* roll the data object back to the
//! older matching state — to a first-time recipient the shortened history
//! is indistinguishable from one where the later operations never happened.
//!
//! A [`TrustAnchor`] closes that gap for any recipient who has seen the
//! object before (or receives an anchor out-of-band): it pins the
//! `(object, seqID, checksum)` of a record known to be genuine. At the next
//! verification, the provenance must still *contain* that exact record —
//! truncation or splicing across the anchor becomes detectable
//! ([`TamperEvidence::AnchorViolation`]). This is the natural
//! "remember-the-head" extension the paper leaves as engineering.
//!
//! ## Sealed compaction checkpoints
//!
//! A [`Checkpoint`] turns the same idea into a *server-side* commitment
//! that makes log compaction safe: it captures the shard-tree root over
//! the whole object space plus a [`TrustAnchor`] per object (its chain
//! head), stamped with the cumulative record count. Once
//! [sealed](Checkpoint::seal) by the serving participant, records at or
//! before the checkpoint can be truncated into a cold archive — a later
//! recipient verifies the surviving chain *through* the checkpoint
//! ([`Verifier::verify_through_checkpoint`]): a chain-start whose
//! predecessor was excised resolves structurally and cryptographically
//! against the anchored checksum, so R2/R3 continuity is attested across
//! the compaction boundary instead of silently waived. A checkpoint that
//! conflicts with the presented records (or whose seal fails) is
//! [`TamperEvidence::CheckpointMismatch`].

use crate::merkle::shard_tree_of;
use crate::provenance::ProvenanceObject;
use crate::verify::{TamperEvidence, Verification, Verifier};
use std::collections::HashMap;
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{KeyDirectory, Participant, ParticipantId};
use tep_model::encode::{DecodeError, Reader};
use tep_model::ObjectId;
use tep_storage::ProvenanceDb;

/// A remembered chain position for one object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrustAnchor {
    /// The anchored object.
    pub oid: ObjectId,
    /// `seqID` of the trusted record.
    pub seq: u64,
    /// Exact checksum bytes of the trusted record.
    pub checksum: Vec<u8>,
}

impl TrustAnchor {
    /// Captures an anchor at the most recent record of a (just verified)
    /// provenance object. Returns `None` if there are no records.
    pub fn capture(prov: &ProvenanceObject) -> Option<TrustAnchor> {
        prov.latest().map(|r| TrustAnchor {
            oid: r.output_oid,
            seq: r.seq_id,
            checksum: r.checksum.clone(),
        })
    }

    /// Stable byte encoding (for persisting anchors client-side).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.checksum.len());
        out.extend_from_slice(b"TEPANCH\x01");
        out.extend_from_slice(&self.oid.raw().to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&(self.checksum.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.checksum);
        out
    }

    /// Inverse of [`Self::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<TrustAnchor, DecodeError> {
        let mut r = Reader::new(buf);
        let magic = r.bytes(8)?;
        if magic != b"TEPANCH\x01" {
            return Err(DecodeError::BadTag(magic.first().copied().unwrap_or(0)));
        }
        let oid = ObjectId(r.u64()?);
        let seq = r.u64()?;
        let checksum = r.len_prefixed()?.to_vec();
        r.expect_end()?;
        Ok(TrustAnchor { oid, seq, checksum })
    }
}

/// Magic prefix of the [`Checkpoint`] encoding.
const CKPT_MAGIC: &[u8] = b"TEPCKPT\x01";
/// Domain separator for checkpoint seals.
const CKPT_SIGN_TAG: &[u8] = b"tep-ckpt-sign\x01";

/// A compaction checkpoint: the forest-wide shard root plus one
/// [`TrustAnchor`] per object (its chain head at capture time), stamped
/// with the cumulative record count the checkpoint covers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Hash algorithm of the tree and anchors.
    pub alg: HashAlgorithm,
    /// Cumulative records covered: every record appended before this
    /// checkpoint, across all prior compaction generations. Monotonic —
    /// the high-water mark compaction truncates up to.
    pub log_records: u64,
    /// Root of the [`ShardTree`](crate::merkle::ShardTree) over the whole
    /// object space at capture time.
    pub tree_root: Vec<u8>,
    /// Leaves under `tree_root`.
    pub leaf_count: u64,
    /// Chain head of every object, sorted by object id.
    pub anchors: Vec<TrustAnchor>,
}

impl Checkpoint {
    /// Captures a checkpoint over `db`'s current state. `prior_records`
    /// is the cumulative record count excised by earlier compactions
    /// (`0` for a never-compacted log); the checkpoint covers
    /// `prior_records + db.len()` records.
    pub fn capture(alg: HashAlgorithm, db: &ProvenanceDb, prior_records: u64) -> Checkpoint {
        let tree = shard_tree_of(alg, db);
        let anchors = db
            .object_ids()
            .into_iter()
            .filter_map(|oid| {
                db.latest_for(oid).map(|r| TrustAnchor {
                    oid,
                    seq: r.seq_id,
                    checksum: r.checksum,
                })
            })
            .collect();
        Checkpoint {
            alg,
            log_records: prior_records + db.len() as u64,
            tree_root: tree.root(),
            leaf_count: tree.leaf_count(),
            anchors,
        }
    }

    /// Stable byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.anchors.len() * 64);
        out.extend_from_slice(CKPT_MAGIC);
        out.push(self.alg.wire_id());
        out.extend_from_slice(&self.log_records.to_be_bytes());
        out.extend_from_slice(&self.leaf_count.to_be_bytes());
        out.extend_from_slice(&(self.tree_root.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.tree_root);
        out.extend_from_slice(&(self.anchors.len() as u32).to_be_bytes());
        for anchor in &self.anchors {
            let bytes = anchor.to_bytes();
            out.extend_from_slice(&(bytes.len() as u64).to_be_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Inverse of [`Self::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Checkpoint, DecodeError> {
        let mut r = Reader::new(buf);
        let magic = r.bytes(CKPT_MAGIC.len())?;
        if magic != CKPT_MAGIC {
            return Err(DecodeError::BadTag(magic.first().copied().unwrap_or(0)));
        }
        let alg_id = r.u8()?;
        let alg = HashAlgorithm::from_wire_id(alg_id).ok_or(DecodeError::BadTag(alg_id))?;
        let log_records = r.u64()?;
        let leaf_count = r.u64()?;
        let tree_root = r.len_prefixed()?.to_vec();
        let n = r.u32()? as usize;
        let mut anchors = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            anchors.push(TrustAnchor::from_bytes(r.len_prefixed()?)?);
        }
        r.expect_end()?;
        Ok(Checkpoint {
            alg,
            log_records,
            tree_root,
            leaf_count,
            anchors,
        })
    }

    /// Digest of the canonical encoding — what the seal signs and what
    /// compaction stamps into the archive/log headers, binding both to
    /// this exact checkpoint.
    pub fn digest(&self) -> Vec<u8> {
        self.alg.digest(&self.to_bytes())
    }

    /// Seals the checkpoint under `signer`'s key.
    pub fn seal(self, signer: &Participant) -> Result<SealedCheckpoint, crate::error::CoreError> {
        let msg = seal_message(&self.digest());
        let sig = signer
            .sign(self.alg, &msg)
            .map_err(crate::error::CoreError::Rsa)?;
        Ok(SealedCheckpoint {
            signer: signer.id(),
            sig,
            checkpoint: self,
        })
    }
}

fn seal_message(digest: &[u8]) -> Vec<u8> {
    let mut m = Vec::with_capacity(CKPT_SIGN_TAG.len() + digest.len());
    m.extend_from_slice(CKPT_SIGN_TAG);
    m.extend_from_slice(digest);
    m
}

/// A [`Checkpoint`] signed by the compacting participant — the artifact
/// persisted beside the log (and referenced by digest from the compaction
/// stamp) that makes truncation attributable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedCheckpoint {
    /// The sealed checkpoint.
    pub checkpoint: Checkpoint,
    /// Who sealed it.
    pub signer: ParticipantId,
    /// Signature over the domain-tagged checkpoint digest.
    pub sig: Vec<u8>,
}

impl SealedCheckpoint {
    /// Verifies the seal against the key directory.
    pub fn verify(&self, keys: &KeyDirectory) -> bool {
        let msg = seal_message(&self.checkpoint.digest());
        keys.verify_signature(self.signer, self.checkpoint.alg, &msg, &self.sig)
            .is_ok()
    }

    /// The anchor for `oid`, if the checkpoint covered it.
    pub fn anchor_for(&self, oid: ObjectId) -> Option<&TrustAnchor> {
        self.checkpoint
            .anchors
            .binary_search_by_key(&oid, |a| a.oid)
            .ok()
            .map(|i| &self.checkpoint.anchors[i])
    }

    /// Stable byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let ckpt = self.checkpoint.to_bytes();
        let mut out = Vec::with_capacity(24 + ckpt.len() + self.sig.len());
        out.extend_from_slice(&(ckpt.len() as u64).to_be_bytes());
        out.extend_from_slice(&ckpt);
        out.extend_from_slice(&self.signer.0.to_be_bytes());
        out.extend_from_slice(&(self.sig.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.sig);
        out
    }

    /// Inverse of [`Self::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<SealedCheckpoint, DecodeError> {
        let mut r = Reader::new(buf);
        let checkpoint = Checkpoint::from_bytes(r.len_prefixed()?)?;
        let signer = ParticipantId(r.u64()?);
        let sig = r.len_prefixed()?.to_vec();
        r.expect_end()?;
        Ok(SealedCheckpoint {
            checkpoint,
            signer,
            sig,
        })
    }
}

impl Verifier<'_> {
    /// Like [`Verifier::verify`], additionally requiring that the
    /// provenance still contains each anchored record with its exact
    /// checksum, and that the object's chain has not moved *backwards* past
    /// an anchor.
    pub fn verify_with_anchors(
        &self,
        object_hash: &[u8],
        prov: &ProvenanceObject,
        anchors: &[TrustAnchor],
    ) -> Verification {
        let mut v = self.verify(object_hash, prov);
        for anchor in anchors {
            let anchored = prov.record(anchor.oid, anchor.seq);
            let intact = anchored.is_some_and(|r| r.checksum == anchor.checksum);
            if !intact {
                v.issues.push(TamperEvidence::AnchorViolation {
                    oid: anchor.oid,
                    seq: anchor.seq,
                });
                continue;
            }
            // The chain must not have been rolled back before the anchor.
            let newest = prov
                .records
                .iter()
                .filter(|r| r.output_oid == anchor.oid)
                .map(|r| r.seq_id)
                .max();
            if newest.is_none_or(|n| n < anchor.seq) {
                v.issues.push(TamperEvidence::AnchorViolation {
                    oid: anchor.oid,
                    seq: anchor.seq,
                });
            }
        }
        v
    }

    /// Verifies provenance whose oldest records were compacted away behind
    /// `sealed` — R2/R3 continuity attested *through* the checkpoint.
    ///
    /// Differences from [`Verifier::verify`]:
    ///
    /// * a chain-start record whose claimed predecessor is exactly its
    ///   object's anchored `(seq, checksum)` slot resolves cleanly — the
    ///   record's signature is verified over the *anchored* checksum, so a
    ///   forged splice at the compaction boundary is still
    ///   `BadSignature`;
    /// * a failing seal signature is
    ///   [`TamperEvidence::CheckpointMismatch`] (and the attested slots
    ///   are not honored — the verdict falls back to plain verification);
    /// * a presented record that *occupies* an anchored slot with a
    ///   different checksum is `CheckpointMismatch` for that slot: the
    ///   server rewrote history it had already sealed.
    pub fn verify_through_checkpoint(
        &self,
        object_hash: &[u8],
        prov: &ProvenanceObject,
        sealed: &SealedCheckpoint,
    ) -> Verification {
        let mut prior: HashMap<ObjectId, (u64, Vec<u8>)> = HashMap::new();
        let seal_ok = sealed.verify(self.keys());
        if seal_ok {
            for anchor in &sealed.checkpoint.anchors {
                prior.insert(anchor.oid, (anchor.seq, anchor.checksum.clone()));
            }
        }
        let mut v = self.verify_inner_with_prior(object_hash, prov, &prior);
        if !seal_ok {
            v.issues.push(TamperEvidence::CheckpointMismatch {
                oid: prov.target,
                seq: 0,
            });
        } else {
            // A record presented *at* an anchored slot must carry the
            // sealed checksum — otherwise the server rewrote history it
            // already committed to.
            for anchor in &sealed.checkpoint.anchors {
                if let Some(r) = prov.record(anchor.oid, anchor.seq) {
                    if r.checksum != anchor.checksum {
                        v.issues.push(TamperEvidence::CheckpointMismatch {
                            oid: anchor.oid,
                            seq: anchor.seq,
                        });
                    }
                }
            }
        }
        self.record_outcome(&v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicLedger;
    use crate::hashing::hash_atom;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tep_crypto::digest::HashAlgorithm;
    use tep_crypto::pki::{CertificateAuthority, KeyDirectory, Participant, ParticipantId};
    use tep_model::Value;
    use tep_storage::ProvenanceDb;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn world() -> (AtomicLedger, KeyDirectory, Participant, Participant) {
        let mut rng = StdRng::seed_from_u64(3);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let bob = ca.enroll(ParticipantId(2), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(alice.certificate().clone()).unwrap();
        keys.register(bob.certificate().clone()).unwrap();
        let ledger = AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory()));
        (ledger, keys, alice, bob)
    }

    #[test]
    fn anchor_roundtrips() {
        let anchor = TrustAnchor {
            oid: ObjectId(7),
            seq: 42,
            checksum: vec![1, 2, 3, 4],
        };
        let bytes = anchor.to_bytes();
        assert_eq!(TrustAnchor::from_bytes(&bytes).unwrap(), anchor);
        assert!(TrustAnchor::from_bytes(&bytes[..10]).is_err());
        assert!(TrustAnchor::from_bytes(b"garbage-").is_err());
    }

    #[test]
    fn honest_growth_past_anchor_verifies() {
        let (mut ledger, keys, alice, bob) = world();
        let doc = ledger.insert(&alice, Value::Int(0)).unwrap();
        ledger.update(&bob, doc, Value::Int(1)).unwrap();

        // Recipient verifies at seq 1 and captures an anchor.
        let prov = ledger.provenance_of(doc).unwrap();
        let hash = ledger.object_hash(doc).unwrap();
        let verifier = Verifier::new(&keys, ALG);
        assert!(verifier.verify(&hash, &prov).verified());
        let anchor = TrustAnchor::capture(&prov).unwrap();
        assert_eq!(anchor.seq, 1);

        // The history continues; later verification with the anchor passes.
        ledger.update(&alice, doc, Value::Int(2)).unwrap();
        let prov2 = ledger.provenance_of(doc).unwrap();
        let hash2 = ledger.object_hash(doc).unwrap();
        let v = verifier.verify_with_anchors(&hash2, &prov2, &[anchor]);
        assert!(v.verified(), "issues: {:?}", v.issues);
    }

    #[test]
    fn tail_truncation_rollback_now_detected() {
        // The boundary case that plain verification cannot catch: truncate
        // the newest records AND roll the data back to match.
        let (mut ledger, keys, alice, bob) = world();
        let doc = ledger.insert(&alice, Value::Int(0)).unwrap();
        ledger.update(&bob, doc, Value::Int(1)).unwrap();

        // Recipient anchors at seq 1.
        let prov = ledger.provenance_of(doc).unwrap();
        let anchor = TrustAnchor::capture(&prov).unwrap();

        // More history happens…
        ledger.update(&alice, doc, Value::Int(2)).unwrap();
        ledger.update(&bob, doc, Value::Int(3)).unwrap();

        // …then the attacker truncates back to seq 0 and rolls the data
        // back to value 0.
        let mut truncated = ledger.provenance_of(doc).unwrap();
        truncated.records.retain(|r| r.seq_id == 0);
        let rolled_back_hash = hash_atom(ALG, doc, &Value::Int(0));

        let verifier = Verifier::new(&keys, ALG);
        // WITHOUT the anchor this verifies — the documented boundary.
        assert!(verifier.verify(&rolled_back_hash, &truncated).verified());
        // WITH the anchor it is caught.
        let v = verifier.verify_with_anchors(&rolled_back_hash, &truncated, &[anchor]);
        assert!(v
            .issues
            .iter()
            .any(|i| matches!(i, TamperEvidence::AnchorViolation { seq: 1, .. })));
    }

    #[test]
    fn resigned_anchor_record_detected() {
        // A colluder re-signs the anchored record itself: the checksum bytes
        // change, so the anchor no longer matches.
        let (mut ledger, keys, alice, _bob) = world();
        let doc = ledger.insert(&alice, Value::Int(0)).unwrap();
        ledger.update(&alice, doc, Value::Int(1)).unwrap();
        let prov = ledger.provenance_of(doc).unwrap();
        let anchor = TrustAnchor::capture(&prov).unwrap();

        ledger.update(&alice, doc, Value::Int(2)).unwrap();
        let mut tampered = ledger.provenance_of(doc).unwrap();
        // Simulate a splice that replaced the anchored record's checksum.
        crate::attack::collusion_splice(&mut tampered, ALG, doc, 0, 2, &alice).unwrap();
        // (splice removed seq 1, re-signed seq 2 → anchor at seq 1 is gone)
        let hash = ledger.object_hash(doc).unwrap();
        let verifier = Verifier::new(&keys, ALG);
        let v = verifier.verify_with_anchors(&hash, &tampered, &[anchor]);
        assert!(v
            .issues
            .iter()
            .any(|i| matches!(i, TamperEvidence::AnchorViolation { .. })));
    }

    #[test]
    fn anchor_for_unrelated_object_is_checked_independently() {
        let (mut ledger, keys, alice, _bob) = world();
        let a = ledger.insert(&alice, Value::Int(0)).unwrap();
        let b = ledger.insert(&alice, Value::Int(9)).unwrap();
        let prov_b = ledger.provenance_of(b).unwrap();
        let anchor_b = TrustAnchor::capture(&prov_b).unwrap();

        // Verifying A's provenance with B's anchor: B's record is not in
        // A's provenance object → anchor violation (the caller should pass
        // only anchors relevant to the delivered object).
        let prov_a = ledger.provenance_of(a).unwrap();
        let hash_a = ledger.object_hash(a).unwrap();
        let v = Verifier::new(&keys, ALG).verify_with_anchors(&hash_a, &prov_a, &[anchor_b]);
        assert!(!v.verified());
    }
}
