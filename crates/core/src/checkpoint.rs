//! Trust anchors: closing the chain-tail rollback boundary.
//!
//! Pure checksum chaining (this paper's scheme, like Hasan et al.'s) has a
//! documented boundary: an attacker who controls the chain **tail** can
//! truncate the most recent records *and* roll the data object back to the
//! older matching state — to a first-time recipient the shortened history
//! is indistinguishable from one where the later operations never happened.
//!
//! A [`TrustAnchor`] closes that gap for any recipient who has seen the
//! object before (or receives an anchor out-of-band): it pins the
//! `(object, seqID, checksum)` of a record known to be genuine. At the next
//! verification, the provenance must still *contain* that exact record —
//! truncation or splicing across the anchor becomes detectable
//! ([`TamperEvidence::AnchorViolation`]). This is the natural
//! "remember-the-head" extension the paper leaves as engineering.

use crate::provenance::ProvenanceObject;
use crate::verify::{TamperEvidence, Verification, Verifier};
use tep_model::encode::{DecodeError, Reader};
use tep_model::ObjectId;

/// A remembered chain position for one object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrustAnchor {
    /// The anchored object.
    pub oid: ObjectId,
    /// `seqID` of the trusted record.
    pub seq: u64,
    /// Exact checksum bytes of the trusted record.
    pub checksum: Vec<u8>,
}

impl TrustAnchor {
    /// Captures an anchor at the most recent record of a (just verified)
    /// provenance object. Returns `None` if there are no records.
    pub fn capture(prov: &ProvenanceObject) -> Option<TrustAnchor> {
        prov.latest().map(|r| TrustAnchor {
            oid: r.output_oid,
            seq: r.seq_id,
            checksum: r.checksum.clone(),
        })
    }

    /// Stable byte encoding (for persisting anchors client-side).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.checksum.len());
        out.extend_from_slice(b"TEPANCH\x01");
        out.extend_from_slice(&self.oid.raw().to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&(self.checksum.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.checksum);
        out
    }

    /// Inverse of [`Self::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<TrustAnchor, DecodeError> {
        let mut r = Reader::new(buf);
        let magic = r.bytes(8)?;
        if magic != b"TEPANCH\x01" {
            return Err(DecodeError::BadTag(magic.first().copied().unwrap_or(0)));
        }
        let oid = ObjectId(r.u64()?);
        let seq = r.u64()?;
        let checksum = r.len_prefixed()?.to_vec();
        r.expect_end()?;
        Ok(TrustAnchor { oid, seq, checksum })
    }
}

impl Verifier<'_> {
    /// Like [`Verifier::verify`], additionally requiring that the
    /// provenance still contains each anchored record with its exact
    /// checksum, and that the object's chain has not moved *backwards* past
    /// an anchor.
    pub fn verify_with_anchors(
        &self,
        object_hash: &[u8],
        prov: &ProvenanceObject,
        anchors: &[TrustAnchor],
    ) -> Verification {
        let mut v = self.verify(object_hash, prov);
        for anchor in anchors {
            let anchored = prov.record(anchor.oid, anchor.seq);
            let intact = anchored.is_some_and(|r| r.checksum == anchor.checksum);
            if !intact {
                v.issues.push(TamperEvidence::AnchorViolation {
                    oid: anchor.oid,
                    seq: anchor.seq,
                });
                continue;
            }
            // The chain must not have been rolled back before the anchor.
            let newest = prov
                .records
                .iter()
                .filter(|r| r.output_oid == anchor.oid)
                .map(|r| r.seq_id)
                .max();
            if newest.is_none_or(|n| n < anchor.seq) {
                v.issues.push(TamperEvidence::AnchorViolation {
                    oid: anchor.oid,
                    seq: anchor.seq,
                });
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicLedger;
    use crate::hashing::hash_atom;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tep_crypto::digest::HashAlgorithm;
    use tep_crypto::pki::{CertificateAuthority, KeyDirectory, Participant, ParticipantId};
    use tep_model::Value;
    use tep_storage::ProvenanceDb;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn world() -> (AtomicLedger, KeyDirectory, Participant, Participant) {
        let mut rng = StdRng::seed_from_u64(3);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let bob = ca.enroll(ParticipantId(2), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(alice.certificate().clone()).unwrap();
        keys.register(bob.certificate().clone()).unwrap();
        let ledger = AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory()));
        (ledger, keys, alice, bob)
    }

    #[test]
    fn anchor_roundtrips() {
        let anchor = TrustAnchor {
            oid: ObjectId(7),
            seq: 42,
            checksum: vec![1, 2, 3, 4],
        };
        let bytes = anchor.to_bytes();
        assert_eq!(TrustAnchor::from_bytes(&bytes).unwrap(), anchor);
        assert!(TrustAnchor::from_bytes(&bytes[..10]).is_err());
        assert!(TrustAnchor::from_bytes(b"garbage-").is_err());
    }

    #[test]
    fn honest_growth_past_anchor_verifies() {
        let (mut ledger, keys, alice, bob) = world();
        let doc = ledger.insert(&alice, Value::Int(0)).unwrap();
        ledger.update(&bob, doc, Value::Int(1)).unwrap();

        // Recipient verifies at seq 1 and captures an anchor.
        let prov = ledger.provenance_of(doc).unwrap();
        let hash = ledger.object_hash(doc).unwrap();
        let verifier = Verifier::new(&keys, ALG);
        assert!(verifier.verify(&hash, &prov).verified());
        let anchor = TrustAnchor::capture(&prov).unwrap();
        assert_eq!(anchor.seq, 1);

        // The history continues; later verification with the anchor passes.
        ledger.update(&alice, doc, Value::Int(2)).unwrap();
        let prov2 = ledger.provenance_of(doc).unwrap();
        let hash2 = ledger.object_hash(doc).unwrap();
        let v = verifier.verify_with_anchors(&hash2, &prov2, &[anchor]);
        assert!(v.verified(), "issues: {:?}", v.issues);
    }

    #[test]
    fn tail_truncation_rollback_now_detected() {
        // The boundary case that plain verification cannot catch: truncate
        // the newest records AND roll the data back to match.
        let (mut ledger, keys, alice, bob) = world();
        let doc = ledger.insert(&alice, Value::Int(0)).unwrap();
        ledger.update(&bob, doc, Value::Int(1)).unwrap();

        // Recipient anchors at seq 1.
        let prov = ledger.provenance_of(doc).unwrap();
        let anchor = TrustAnchor::capture(&prov).unwrap();

        // More history happens…
        ledger.update(&alice, doc, Value::Int(2)).unwrap();
        ledger.update(&bob, doc, Value::Int(3)).unwrap();

        // …then the attacker truncates back to seq 0 and rolls the data
        // back to value 0.
        let mut truncated = ledger.provenance_of(doc).unwrap();
        truncated.records.retain(|r| r.seq_id == 0);
        let rolled_back_hash = hash_atom(ALG, doc, &Value::Int(0));

        let verifier = Verifier::new(&keys, ALG);
        // WITHOUT the anchor this verifies — the documented boundary.
        assert!(verifier.verify(&rolled_back_hash, &truncated).verified());
        // WITH the anchor it is caught.
        let v = verifier.verify_with_anchors(&rolled_back_hash, &truncated, &[anchor]);
        assert!(v
            .issues
            .iter()
            .any(|i| matches!(i, TamperEvidence::AnchorViolation { seq: 1, .. })));
    }

    #[test]
    fn resigned_anchor_record_detected() {
        // A colluder re-signs the anchored record itself: the checksum bytes
        // change, so the anchor no longer matches.
        let (mut ledger, keys, alice, _bob) = world();
        let doc = ledger.insert(&alice, Value::Int(0)).unwrap();
        ledger.update(&alice, doc, Value::Int(1)).unwrap();
        let prov = ledger.provenance_of(doc).unwrap();
        let anchor = TrustAnchor::capture(&prov).unwrap();

        ledger.update(&alice, doc, Value::Int(2)).unwrap();
        let mut tampered = ledger.provenance_of(doc).unwrap();
        // Simulate a splice that replaced the anchored record's checksum.
        crate::attack::collusion_splice(&mut tampered, ALG, doc, 0, 2, &alice).unwrap();
        // (splice removed seq 1, re-signed seq 2 → anchor at seq 1 is gone)
        let hash = ledger.object_hash(doc).unwrap();
        let verifier = Verifier::new(&keys, ALG);
        let v = verifier.verify_with_anchors(&hash, &tampered, &[anchor]);
        assert!(v
            .issues
            .iter()
            .any(|i| matches!(i, TamperEvidence::AnchorViolation { .. })));
    }

    #[test]
    fn anchor_for_unrelated_object_is_checked_independently() {
        let (mut ledger, keys, alice, _bob) = world();
        let a = ledger.insert(&alice, Value::Int(0)).unwrap();
        let b = ledger.insert(&alice, Value::Int(9)).unwrap();
        let prov_b = ledger.provenance_of(b).unwrap();
        let anchor_b = TrustAnchor::capture(&prov_b).unwrap();

        // Verifying A's provenance with B's anchor: B's record is not in
        // A's provenance object → anchor violation (the caller should pass
        // only anchors relevant to the delivered object).
        let prov_a = ledger.provenance_of(a).unwrap();
        let hash_a = ledger.object_hash(a).unwrap();
        let v = Verifier::new(&keys, ALG).verify_with_anchors(&hash_a, &prov_a, &[anchor_b]);
        assert!(!v.verified());
    }
}
