//! A minimal self-scheduling worker pool for the batch crypto pipeline.
//!
//! Signing and verification are embarrassingly parallel once the dependency
//! structure is respected: within one batch every record chains onto a
//! *pre-batch* head, and distinct objects' chains never share state (§3.2 —
//! per-object chaining is precisely what makes this safe). This module
//! provides the fan-out primitive both [`crate::tracker::ProvenanceTracker::record_batch`]
//! and [`crate::verify::Verifier::verify_all_parallel`] build on.
//!
//! Scheduling is dynamic: workers claim the next item off a shared atomic
//! counter, so a straggler item (say, one object with a 100-record chain
//! among single-record ones) never idles the other workers — the same load
//! balancing a work-stealing deque buys, without the machinery. Results are
//! returned in item order regardless of completion order, so parallel runs
//! are observationally identical to sequential ones.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` across `threads` self-scheduling
/// workers and returns the results in item order.
///
/// `threads` is clamped to `1..=items.len()`; with one thread (or one item)
/// this degenerates to a plain sequential map with zero overhead. A panic
/// in `f` is propagated to the caller after all workers stop.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| match w.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut merged: Vec<(usize, R)> = chunks.into_iter().flatten().collect();
    merged.sort_unstable_by_key(|&(i, _)| i);
    merged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(8, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential() {
        let items: Vec<String> = (0..57).map(|i| format!("item-{i}")).collect();
        let seq = parallel_map(1, &items, |i, s| format!("{i}:{s}"));
        let par = parallel_map(4, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(seq, par);
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(0, &[7u8], |_, &x| x), vec![7]);
        // More threads than items.
        assert_eq!(parallel_map(64, &[1u8, 2], |_, &x| x), vec![1, 2]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        parallel_map(4, &items, |_, &x| {
            if x == 9 {
                panic!("boom");
            }
            x
        });
    }
}
