//! Error type for the provenance core.

use std::fmt;
use tep_crypto::pki::PkiError;
use tep_crypto::rsa::RsaError;
use tep_model::encode::DecodeError;
use tep_model::{ModelError, ObjectId};
use tep_storage::StoreError;

/// Errors from provenance tracking.
#[derive(Debug)]
pub enum CoreError {
    /// The underlying database operation failed.
    Model(ModelError),
    /// Signing failed.
    Rsa(RsaError),
    /// The provenance store failed.
    Store(StoreError),
    /// A stored record could not be decoded.
    Decode(DecodeError),
    /// PKI lookup/validation failed.
    Pki(PkiError),
    /// The object has no provenance records.
    NoProvenance(ObjectId),
    /// Aggregations must be tracked on their own, not inside a complex
    /// operation (§4.4 groups only insert/update/delete primitives).
    AggregateInComplexOp,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "database operation failed: {e}"),
            CoreError::Rsa(e) => write!(f, "signing failed: {e}"),
            CoreError::Store(e) => write!(f, "provenance store failed: {e}"),
            CoreError::Decode(e) => write!(f, "stored record corrupt: {e}"),
            CoreError::Pki(e) => write!(f, "pki failure: {e}"),
            CoreError::NoProvenance(oid) => write!(f, "object {oid} has no provenance records"),
            CoreError::AggregateInComplexOp => {
                write!(
                    f,
                    "aggregate operations cannot appear inside a complex operation"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Rsa(e) => Some(e),
            CoreError::Store(e) => Some(e),
            CoreError::Decode(e) => Some(e),
            CoreError::Pki(e) => Some(e),
            CoreError::NoProvenance(_) | CoreError::AggregateInComplexOp => None,
        }
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<RsaError> for CoreError {
    fn from(e: RsaError) -> Self {
        CoreError::Rsa(e)
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<DecodeError> for CoreError {
    fn from(e: DecodeError) -> Self {
        CoreError::Decode(e)
    }
}

impl From<PkiError> for CoreError {
    fn from(e: PkiError) -> Self {
        CoreError::Pki(e)
    }
}
