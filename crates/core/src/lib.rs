//! # tep-core — Tamper-Evident Database Provenance
//!
//! Implementation of *"Do You Know Where Your Data's Been? — Tamper-Evident
//! Database Provenance"* (Zhang, Chapman, LeFevre, 2009): checksum-chained
//! provenance records that let a data recipient cryptographically verify
//! that an object's history was neither altered nor forged — covering
//! **non-linear provenance** (DAGs produced by aggregation) and **compound
//! objects** (provenance at database/table/row/cell granularity).
//!
//! ## Map of the crate
//!
//! | Paper section | Module |
//! |---|---|
//! | §2.1 provenance model | [`record`], [`chain`], [`provenance`] |
//! | §3 atomic objects, Fig. 3 | [`atomic`] |
//! | §3 checksum verification, §3.1 R1–R8 | [`verify`] |
//! | §2.2 threat model (attack simulation) | [`attack`] |
//! | §4.3 compound hashing, Basic vs Economical | [`hashing`] |
//! | §4.2 inheritance + §4.4 complex operations | [`tracker`] |
//! | §5.2 larger-than-memory hashing | [`streaming`] |
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use rand::{rngs::StdRng, SeedableRng};
//! use tep_core::prelude::*;
//! use tep_model::Value;
//!
//! // PKI: a CA enrolls participants.
//! let mut rng = StdRng::seed_from_u64(1);
//! let ca = CertificateAuthority::new(512, HashAlgorithm::Sha256, &mut rng);
//! let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
//! let mut keys = KeyDirectory::new(ca.public_key().clone(), HashAlgorithm::Sha256);
//! keys.register(alice.certificate().clone()).unwrap();
//!
//! // Track operations with provenance checksums.
//! let db = Arc::new(ProvenanceDb::in_memory());
//! let mut tracker = ProvenanceTracker::new(TrackerConfig::default(), db);
//! let (obj, _) = tracker.insert(&alice, Value::Int(41), None).unwrap();
//! tracker.update(&alice, obj, Value::Int(42)).unwrap();
//!
//! // A recipient verifies the object against its provenance.
//! let prov = tep_core::provenance::collect(tracker.db(), obj).unwrap();
//! let hash = tracker.object_hash(obj).unwrap();
//! let verification = Verifier::new(&keys, HashAlgorithm::Sha256).verify(&hash, &prov);
//! assert!(verification.verified());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atomic;
pub mod attack;
pub mod batch;
pub mod chain;
pub mod checkpoint;
pub mod denial;
pub mod error;
pub mod export;
pub mod gc;
pub mod hashing;
pub mod merkle;
pub mod metrics;
pub mod parallel;
pub mod proof;
pub mod provenance;
pub mod query;
pub mod record;
pub mod slice;
pub mod streaming;
pub mod tenant;
pub mod tracker;
pub mod verify;

pub use atomic::AtomicLedger;
pub use batch::{BatcherConfig, VerifyBatcher, VerifyTicket};
pub use checkpoint::{Checkpoint, SealedCheckpoint, TrustAnchor};
pub use denial::{
    DenialFault, DenialLeaf, DenialProof, RangeProof, SignedDenial, SignedRange, SignedRoot,
};
pub use error::CoreError;
pub use export::to_opm_json;
pub use gc::{
    checkpoint_path, compact_log, load_checkpoint, prune, prune_into, seal_checkpoint, PruneReport,
};
pub use hashing::{hash_atom, subtree_hash, HashCache, HashingStrategy};
pub use merkle::{
    leaf_hash, locate_divergence, shard_tree_of, AeError, AeNodeInfo, AeOracle, AeOutcome,
    AeSummary, ShardTree, TreeOracle,
};
pub use metrics::{Metrics, TransferCounters, TransferSnapshot};
pub use parallel::{default_threads, parallel_map};
pub use proof::{prove, ProofError, SubtreeProof};
pub use provenance::{collect, ProvenanceObject};
pub use query::{DbStats, EdgeIndex, ProvenanceQuery};
pub use record::{InputRef, ProvenanceRecord, RecordKind};
pub use slice::{
    BoundaryLink, Polynomial, QueryAnswer, QueryBounds, QueryOp, QuerySpec, SliceProof,
};
pub use tenant::{
    federated_verify, FederatedReport, TenantDirectory, TenantEvidenceCounters, TenantReport,
};
pub use tracker::{ComplexReport, ProvenanceTracker, TrackerConfig};
pub use verify::{
    EvidenceCounters, EvidenceKind, StreamingVerifier, TamperEvidence, Verification, Verifier,
};

/// Common imports for library users.
pub mod prelude {
    pub use crate::atomic::AtomicLedger;
    pub use crate::checkpoint::TrustAnchor;
    pub use crate::error::CoreError;
    pub use crate::hashing::HashingStrategy;
    pub use crate::provenance::{collect, ProvenanceObject};
    pub use crate::query::ProvenanceQuery;
    pub use crate::slice::{QueryOp, QuerySpec, SliceProof};
    pub use crate::tenant::{federated_verify, FederatedReport, TenantDirectory};
    pub use crate::tracker::{ProvenanceTracker, TrackerConfig};
    pub use crate::verify::{StreamingVerifier, TamperEvidence, Verification, Verifier};
    pub use tep_crypto::digest::HashAlgorithm;
    pub use tep_crypto::pki::{CertificateAuthority, KeyDirectory, Participant, ParticipantId};
    pub use tep_model::TenantId;
    pub use tep_storage::{ProvenanceDb, TenantShards};
}
