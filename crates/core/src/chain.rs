//! Per-object checksum chains (§3.2).
//!
//! The paper chains checksums **per object** rather than through one global
//! chain: participants working on different objects never contend, and
//! corruption of one object's chain does not invalidate others. This module
//! tracks the *head* (latest seqID + checksum) of every live chain.

use std::collections::HashMap;
use tep_model::ObjectId;

/// The latest record of one object's chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Head {
    /// `seqID` of the latest record.
    pub seq: u64,
    /// Checksum bytes of the latest record (chained into the next one).
    pub checksum: Vec<u8>,
}

/// Chain heads for all live objects.
#[derive(Clone, Debug, Default)]
pub struct ChainHeads {
    heads: HashMap<ObjectId, Head>,
}

impl ChainHeads {
    /// Creates an empty head table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current head for `oid`, if it has any records.
    pub fn get(&self, oid: ObjectId) -> Option<&Head> {
        self.heads.get(&oid)
    }

    /// The `seqID` the next record for `oid` should carry: `head + 1`, or
    /// `0` for a fresh chain (§2.1 numbering).
    pub fn next_seq(&self, oid: ObjectId) -> u64 {
        self.heads.get(&oid).map_or(0, |h| h.seq + 1)
    }

    /// Advances `oid`'s chain to a new head.
    pub fn advance(&mut self, oid: ObjectId, seq: u64, checksum: Vec<u8>) {
        self.heads.insert(oid, Head { seq, checksum });
    }

    /// Drops `oid`'s chain (after deletion its provenance object is no
    /// longer relevant — §2.1 footnote 3).
    pub fn remove(&mut self, oid: ObjectId) -> Option<Head> {
        self.heads.remove(&oid)
    }

    /// Number of live chains.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// `true` when no chains exist.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_chain_starts_at_zero() {
        let heads = ChainHeads::new();
        assert_eq!(heads.next_seq(ObjectId(1)), 0);
        assert!(heads.get(ObjectId(1)).is_none());
    }

    #[test]
    fn advance_and_next() {
        let mut heads = ChainHeads::new();
        heads.advance(ObjectId(1), 0, vec![1]);
        assert_eq!(heads.next_seq(ObjectId(1)), 1);
        heads.advance(ObjectId(1), 1, vec![2]);
        assert_eq!(heads.get(ObjectId(1)).unwrap().checksum, vec![2]);
        assert_eq!(heads.next_seq(ObjectId(1)), 2);
        // Independent per object.
        assert_eq!(heads.next_seq(ObjectId(2)), 0);
    }

    #[test]
    fn remove_resets_chain() {
        let mut heads = ChainHeads::new();
        heads.advance(ObjectId(1), 4, vec![9]);
        let removed = heads.remove(ObjectId(1)).unwrap();
        assert_eq!(removed.seq, 4);
        assert_eq!(heads.next_seq(ObjectId(1)), 0);
        assert!(heads.is_empty());
    }
}
