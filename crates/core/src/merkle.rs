//! Merkle summaries over the object-ID space, for replica anti-entropy.
//!
//! A primary and its replicas each summarize a shard — the sorted set of
//! object IDs they store, with one digest per object's record history —
//! as a binary [`ShardTree`]. Comparing two shards then costs one root
//! exchange when they agree, and a descent into only the mismatching
//! subtrees when they do not: divergence at a single object is located in
//! `depth + 2 ≤ log2(n) + O(1)` round trips (summary, one node per
//! level, one leaf probe).
//!
//! The descent is *self-authenticating*: every response's child hashes
//! must recombine to the parent hash the same peer claimed one round
//! earlier. A forged root (or any forged interior node) therefore cannot
//! steer the walk anywhere useful — it is caught structurally and
//! reported as [`AeOutcome::Forged`], which callers surface as
//! [`TamperEvidence::ForgedRoot`](crate::verify::TamperEvidence). This is
//! transport-independent: the same check catches a lying peer and a
//! man-in-the-middle mutating anti-entropy frames.
//!
//! The oracle seam ([`AeOracle`]) abstracts *where* the remote tree
//! lives: tep-net implements it over AE_REQ/AE_RESP wire frames, while
//! [`TreeOracle`] answers from an in-process tree for tests and for the
//! 100k-object round-trip benchmarks, where signing real records would
//! drown the measurement.

use crate::streaming::RecordStreamDigest;
use tep_crypto::digest::HashAlgorithm;
use tep_model::ObjectId;
use tep_storage::ProvenanceDb;

/// Domain separator for leaf hashes.
const LEAF_TAG: &[u8] = b"tep-ae-leaf\x01";
/// Domain separator for interior-node hashes.
const NODE_TAG: &[u8] = b"tep-ae-node\x01";
/// Domain separator for the root of an empty shard.
const EMPTY_TAG: &[u8] = b"tep-ae-empty\x01";

/// Hash of one leaf: binds the object's identity to its record-history
/// digest, so two shards that store *different objects* at the same
/// position disagree even if the history digests collide positionally.
pub fn leaf_hash(alg: HashAlgorithm, oid: ObjectId, history_digest: &[u8]) -> Vec<u8> {
    let mut h = alg.hasher();
    h.update(LEAF_TAG);
    h.update(&oid.raw().to_be_bytes());
    h.update(history_digest);
    h.finalize()
}

/// Hash of an interior node over its (1 or 2) children, in order.
pub(crate) fn combine(alg: HashAlgorithm, children: &[Vec<u8>]) -> Vec<u8> {
    let mut h = alg.hasher();
    h.update(NODE_TAG);
    for c in children {
        h.update(c);
    }
    h.finalize()
}

/// A binary Merkle tree over a shard's sorted object-ID space.
///
/// Level 0 holds one [`leaf_hash`] per object (sorted by `ObjectId`);
/// each higher level pairs adjacent nodes (an odd tail node is hashed
/// alone, preserving its position). `depth` is the number of levels
/// above the leaves, so `depth = ceil(log2(n))` for `n ≥ 1` leaves.
#[derive(Clone, Debug)]
pub struct ShardTree {
    alg: HashAlgorithm,
    oids: Vec<ObjectId>,
    /// History digests, index-aligned with `oids` — the leaf-hash
    /// preimages, retained so non-membership proofs can ship them (a
    /// verifier must recompute `leaf_hash(oid, digest)` itself to know the
    /// claimed `oid` is really bound into the presented leaf).
    digests: Vec<Vec<u8>>,
    /// `levels[0]` = leaf hashes … `levels[depth]` = `[root]`.
    levels: Vec<Vec<Vec<u8>>>,
}

impl ShardTree {
    /// Builds the tree over `(oid, history_digest)` pairs. Input order
    /// does not matter — leaves are sorted by `ObjectId` so two peers
    /// storing the same objects build byte-identical trees.
    pub fn build(alg: HashAlgorithm, mut leaves: Vec<(ObjectId, Vec<u8>)>) -> Self {
        leaves.sort_by_key(|(oid, _)| *oid);
        let oids: Vec<ObjectId> = leaves.iter().map(|(oid, _)| *oid).collect();
        let base: Vec<Vec<u8>> = leaves
            .iter()
            .map(|(oid, d)| leaf_hash(alg, *oid, d))
            .collect();
        let digests: Vec<Vec<u8>> = leaves.into_iter().map(|(_, d)| d).collect();
        let mut levels = vec![base];
        while levels.last().map(Vec::len).unwrap_or(0) > 1 {
            let below = levels.last().expect("at least one level");
            let up: Vec<Vec<u8>> = below.chunks(2).map(|pair| combine(alg, pair)).collect();
            levels.push(up);
        }
        ShardTree {
            alg,
            oids,
            digests,
            levels,
        }
    }

    /// The well-defined root of an **empty** shard (the tagged empty
    /// hash), against which non-membership in an empty tree verifies.
    pub fn empty_root(alg: HashAlgorithm) -> Vec<u8> {
        alg.digest(EMPTY_TAG)
    }

    /// The shard's hash algorithm.
    pub fn alg(&self) -> HashAlgorithm {
        self.alg
    }

    /// Number of leaves (objects) in the shard.
    pub fn leaf_count(&self) -> u64 {
        self.oids.len() as u64
    }

    /// Levels above the leaves (`0` for an empty or single-object shard).
    pub fn depth(&self) -> u32 {
        (self.levels.len() as u32).saturating_sub(1)
    }

    /// The root hash. An empty shard has a well-defined root (the tagged
    /// empty hash) so "both empty" still compares as converged.
    pub fn root(&self) -> Vec<u8> {
        match self.levels.last().and_then(|l| l.first()) {
            Some(r) => r.clone(),
            None => self.alg.digest(EMPTY_TAG),
        }
    }

    /// The node hash at `(level, index)`, if in range.
    pub fn node(&self, level: u32, index: u64) -> Option<&[u8]> {
        self.levels
            .get(level as usize)?
            .get(index as usize)
            .map(Vec::as_slice)
    }

    /// The (1 or 2) child hashes of the node at `(level, index)`;
    /// empty at level 0.
    pub fn children(&self, level: u32, index: u64) -> Vec<Vec<u8>> {
        if level == 0 {
            return Vec::new();
        }
        let below = match self.levels.get(level as usize - 1) {
            Some(l) => l,
            None => return Vec::new(),
        };
        let base = (index as usize) * 2;
        below.iter().skip(base).take(2).cloned().collect()
    }

    /// The object at leaf `index`, if in range.
    pub fn leaf_oid(&self, index: u64) -> Option<ObjectId> {
        self.oids.get(index as usize).copied()
    }

    /// The history digest (leaf-hash preimage) at leaf `index`.
    pub fn leaf_digest(&self, index: u64) -> Option<&[u8]> {
        self.digests.get(index as usize).map(Vec::as_slice)
    }

    /// Where `oid` sits in the sorted leaf space: `Ok(index)` when
    /// present, `Err(insertion_point)` when absent — the two adjacent
    /// leaves around an insertion point are exactly a non-membership
    /// proof's witnesses.
    pub fn oid_position(&self, oid: ObjectId) -> Result<u64, u64> {
        self.oids
            .binary_search(&oid)
            .map(|i| i as u64)
            .map_err(|i| i as u64)
    }

    /// The authenticated sibling path from leaf `index` to the root: one
    /// entry per level below the root, `Some(sibling_hash)` when the node
    /// has a sibling at that level and `None` when it is an odd tail
    /// hashed alone. Verify with [`ShardTree::verify_leaf_path`].
    pub fn leaf_path(&self, index: u64) -> Option<Vec<Option<Vec<u8>>>> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut path = Vec::with_capacity(self.depth() as usize);
        for level in 0..self.depth() {
            let idx = (index >> level) as usize;
            let sibling = idx ^ 1;
            path.push(self.levels[level as usize].get(sibling).cloned());
        }
        Some(path)
    }

    /// Recomputes the root from a leaf hash and its sibling path,
    /// checking the path's **position** at every level: a `Some` sibling
    /// combines on the side `index` dictates, and a `None` entry is only
    /// legal where the tree shape for `leaf_count` really has an unpaired
    /// tail node. Returns `true` iff the recombination lands on `root`.
    pub fn verify_leaf_path(
        alg: HashAlgorithm,
        root: &[u8],
        leaf_count: u64,
        index: u64,
        leaf: &[u8],
        path: &[Option<Vec<u8>>],
    ) -> bool {
        if index >= leaf_count {
            return false;
        }
        // Expected depth for this cardinality.
        let mut expected_depth = 0u32;
        let mut c = leaf_count;
        while c > 1 {
            c = c.div_ceil(2);
            expected_depth += 1;
        }
        if path.len() != expected_depth as usize {
            return false;
        }
        let mut h = leaf.to_vec();
        let mut idx = index;
        let mut count = leaf_count;
        for sibling in path {
            match sibling {
                Some(sib) => {
                    if idx.is_multiple_of(2) {
                        // A right sibling must actually exist at this level.
                        if idx + 1 >= count {
                            return false;
                        }
                        h = combine(alg, &[h, sib.clone()]);
                    } else {
                        h = combine(alg, &[sib.clone(), h]);
                    }
                }
                None => {
                    // Only the unpaired tail node may combine alone.
                    if !idx.is_multiple_of(2) || idx + 1 != count {
                        return false;
                    }
                    h = combine(alg, std::slice::from_ref(&h));
                }
            }
            idx >>= 1;
            count = count.div_ceil(2);
        }
        h == root
    }

    /// This shard's [`AeSummary`] (what a root exchange ships).
    pub fn summary(&self) -> AeSummary {
        AeSummary {
            leaf_count: self.leaf_count(),
            depth: self.depth(),
            root: self.root(),
        }
    }

    /// The [`AeNodeInfo`] a peer would answer for `(level, index)`, or
    /// `None` if out of range.
    pub fn node_info(&self, level: u32, index: u64) -> Option<AeNodeInfo> {
        let hash = self.node(level, index)?.to_vec();
        Some(AeNodeInfo {
            hash,
            children: self.children(level, index),
            oid: if level == 0 {
                self.leaf_oid(index)
            } else {
                None
            },
        })
    }
}

/// Builds the shard tree summarizing an entire provenance store: one
/// leaf per object id present in `db`, whose digest is the rolling
/// [`RecordStreamDigest`] over the object's stored records in sequence
/// order — the same digest the RESUME handshake proves positions with,
/// so a primary and a fully-caught-up replica build byte-identical
/// trees from their independent stores.
pub fn shard_tree_of(alg: HashAlgorithm, db: &ProvenanceDb) -> ShardTree {
    let leaves = db
        .object_ids()
        .into_iter()
        .map(|oid| {
            let mut d = RecordStreamDigest::new(alg, oid);
            for rec in db.records_for(oid) {
                d.push(&rec.to_bytes());
            }
            (oid, d.current().to_vec())
        })
        .collect();
    ShardTree::build(alg, leaves)
}

/// A shard's tree summary: the payload of the anti-entropy root exchange.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AeSummary {
    /// Leaves (objects) in the shard.
    pub leaf_count: u64,
    /// Levels above the leaves.
    pub depth: u32,
    /// Root hash.
    pub root: Vec<u8>,
}

/// One node of the remote tree, as presented during descent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AeNodeInfo {
    /// The node's own hash.
    pub hash: Vec<u8>,
    /// Its (1 or 2) child hashes; empty at leaf level.
    pub children: Vec<Vec<u8>>,
    /// At leaf level, the leaf's object — `None` for interior nodes.
    pub oid: Option<ObjectId>,
}

/// Anti-entropy transport/protocol failure (not evidence — a refusal or
/// broken connection, retryable by policy).
#[derive(Debug)]
pub enum AeError {
    /// The transport failed (socket error, peer refusal, decode failure).
    Transport(String),
    /// The peer answered with a structurally unusable response (missing
    /// node, wrong arity) that is not self-contradictory enough to be
    /// forgery evidence on its own.
    Protocol(String),
}

impl std::fmt::Display for AeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AeError::Transport(s) => write!(f, "anti-entropy transport error: {s}"),
            AeError::Protocol(s) => write!(f, "anti-entropy protocol error: {s}"),
        }
    }
}

impl std::error::Error for AeError {}

/// Where the remote tree's answers come from: wire frames (tep-net) or an
/// in-process [`TreeOracle`].
pub trait AeOracle {
    /// The peer's root exchange (one round trip).
    fn summary(&mut self) -> Result<AeSummary, AeError>;
    /// The peer's node at `(level, index)` (one round trip).
    fn node(&mut self, level: u32, index: u64) -> Result<AeNodeInfo, AeError>;
}

/// An [`AeOracle`] answering from a local [`ShardTree`] — the "remote"
/// side of tests and benchmarks, with zero transport cost.
pub struct TreeOracle<'a> {
    tree: &'a ShardTree,
}

impl<'a> TreeOracle<'a> {
    /// Wraps `tree` as the remote peer.
    pub fn new(tree: &'a ShardTree) -> Self {
        TreeOracle { tree }
    }
}

impl AeOracle for TreeOracle<'_> {
    fn summary(&mut self) -> Result<AeSummary, AeError> {
        Ok(self.tree.summary())
    }

    fn node(&mut self, level: u32, index: u64) -> Result<AeNodeInfo, AeError> {
        self.tree
            .node_info(level, index)
            .ok_or_else(|| AeError::Protocol(format!("no node at level {level} index {index}")))
    }
}

/// The verdict of one anti-entropy pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AeOutcome {
    /// Roots agree: the shards are record-digest identical.
    Converged {
        /// Round trips spent (always 1: the summary exchange).
        rounds: u64,
    },
    /// The shards hold different numbers of objects — benign lag, not
    /// evidence; the smaller side should catch up and re-run.
    CountMismatch {
        /// Local leaf count.
        local: u64,
        /// Remote leaf count.
        remote: u64,
        /// Round trips spent.
        rounds: u64,
    },
    /// Equal-cardinality shards disagree at a located leaf. The caller
    /// re-verifies both histories and attributes the divergence
    /// ([`TamperEvidence::ReplicaDivergence`](crate::verify::TamperEvidence)).
    Diverged {
        /// The divergent leaf's index.
        index: u64,
        /// The local object at that leaf.
        oid: ObjectId,
        /// The remote object at that leaf (differs from `oid` when the
        /// shards store different object sets of equal size).
        remote_oid: Option<ObjectId>,
        /// Round trips spent locating it.
        rounds: u64,
        /// Tree depth (the `log2 n` term of the bound).
        depth: u32,
    },
    /// The peer's answers are self-contradictory: children fail to
    /// recombine to a previously claimed parent, or the claimed shape is
    /// impossible. Forgery evidence regardless of whose data is right.
    Forged {
        /// Level of the node that fails authentication.
        level: u32,
        /// Its index within the level.
        index: u64,
        /// Round trips spent.
        rounds: u64,
    },
}

/// Compares `local` against the peer behind `oracle`, descending only
/// into mismatching subtrees.
///
/// Round-trip cost: 1 when converged; `depth + 2` at most when a single
/// leaf diverges (summary + one node per level + one leaf probe), i.e.
/// `≤ log2(n) + O(1)`.
pub fn locate_divergence(
    local: &ShardTree,
    oracle: &mut dyn AeOracle,
) -> Result<AeOutcome, AeError> {
    let mut rounds = 1u64;
    let remote = oracle.summary()?;
    if remote.leaf_count != local.leaf_count() {
        return Ok(AeOutcome::CountMismatch {
            local: local.leaf_count(),
            remote: remote.leaf_count,
            rounds,
        });
    }
    if remote.root == local.root() {
        return Ok(AeOutcome::Converged { rounds });
    }
    // Same leaf count ⇒ same shape: a peer claiming a different depth for
    // the same cardinality is structurally lying.
    if remote.depth != local.depth() {
        return Ok(AeOutcome::Forged {
            level: local.depth(),
            index: 0,
            rounds,
        });
    }

    let mut level = local.depth();
    let mut index = 0u64;
    let mut expected = remote.root;
    while level > 0 {
        let info = oracle.node(level, index)?;
        rounds += 1;
        if info.hash != expected || combine(local.alg, &info.children) != info.hash {
            return Ok(AeOutcome::Forged {
                level,
                index,
                rounds,
            });
        }
        let base = index * 2;
        let mut next = None;
        for (k, child) in info.children.iter().enumerate() {
            if local.node(level - 1, base + k as u64) != Some(child.as_slice()) {
                next = Some((base + k as u64, child.clone()));
                break;
            }
        }
        match next {
            Some((i, h)) => {
                index = i;
                expected = h;
                level -= 1;
            }
            // Every presented child matches the local tree, yet the
            // parent differed: impossible for an honest peer.
            None => {
                return Ok(AeOutcome::Forged {
                    level,
                    index,
                    rounds,
                });
            }
        }
    }
    // One leaf probe confirms the divergent leaf and learns its oid.
    let leaf = oracle.node(0, index)?;
    rounds += 1;
    if leaf.hash != expected {
        return Ok(AeOutcome::Forged {
            level: 0,
            index,
            rounds,
        });
    }
    let oid = local
        .leaf_oid(index)
        .ok_or_else(|| AeError::Protocol(format!("local shard has no leaf {index}")))?;
    Ok(AeOutcome::Diverged {
        index,
        oid,
        remote_oid: leaf.oid,
        rounds,
        depth: local.depth(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn shard(n: u64) -> Vec<(ObjectId, Vec<u8>)> {
        (0..n)
            .map(|i| (ObjectId(i + 1), ALG.digest(&i.to_be_bytes())))
            .collect()
    }

    #[test]
    fn identical_shards_converge_in_one_round() {
        for n in [0u64, 1, 2, 3, 7, 8, 9, 100] {
            let a = ShardTree::build(ALG, shard(n));
            let b = ShardTree::build(ALG, shard(n));
            let mut oracle = TreeOracle::new(&b);
            assert_eq!(
                locate_divergence(&a, &mut oracle).unwrap(),
                AeOutcome::Converged { rounds: 1 },
                "n = {n}"
            );
        }
    }

    #[test]
    fn leaf_order_is_canonical() {
        let mut leaves = shard(9);
        leaves.reverse();
        let a = ShardTree::build(ALG, shard(9));
        let b = ShardTree::build(ALG, leaves);
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn single_divergence_located_at_every_position_within_bound() {
        for n in [1u64, 2, 3, 7, 8, 9, 33] {
            for pos in 0..n {
                let local = ShardTree::build(ALG, shard(n));
                let mut leaves = shard(n);
                leaves[pos as usize].1 = ALG.digest(b"tampered history");
                let remote = ShardTree::build(ALG, leaves);
                let mut oracle = TreeOracle::new(&remote);
                match locate_divergence(&local, &mut oracle).unwrap() {
                    AeOutcome::Diverged {
                        index,
                        oid,
                        rounds,
                        depth,
                        ..
                    } => {
                        assert_eq!(index, pos, "n = {n}");
                        assert_eq!(oid, ObjectId(pos + 1));
                        assert_eq!(depth, local.depth());
                        assert!(
                            rounds <= u64::from(local.depth()) + 2,
                            "n = {n} pos = {pos}: {rounds} rounds > depth {} + 2",
                            local.depth()
                        );
                    }
                    other => panic!("n = {n} pos = {pos}: expected divergence, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn differing_object_sets_diverge_with_remote_oid() {
        let local = ShardTree::build(ALG, shard(4));
        let mut leaves = shard(4);
        leaves[2].0 = ObjectId(99); // same digest, different object
        let remote = ShardTree::build(ALG, leaves);
        let mut oracle = TreeOracle::new(&remote);
        match locate_divergence(&local, &mut oracle).unwrap() {
            AeOutcome::Diverged {
                oid, remote_oid, ..
            } => {
                assert_eq!(oid, ObjectId(3));
                assert_eq!(remote_oid, Some(ObjectId(4)));
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn count_mismatch_is_lag_not_evidence() {
        let local = ShardTree::build(ALG, shard(3));
        let remote = ShardTree::build(ALG, shard(5));
        let mut oracle = TreeOracle::new(&remote);
        assert_eq!(
            locate_divergence(&local, &mut oracle).unwrap(),
            AeOutcome::CountMismatch {
                local: 3,
                remote: 5,
                rounds: 1
            }
        );
    }

    /// An oracle that forwards to a real tree but lies about one node's
    /// hash — the children it presents then cannot recombine to it.
    struct LyingOracle<'a> {
        inner: TreeOracle<'a>,
        lie_level: u32,
    }

    impl AeOracle for LyingOracle<'_> {
        fn summary(&mut self) -> Result<AeSummary, AeError> {
            let mut s = self.inner.summary()?;
            if self.lie_level == s.depth {
                s.root = ALG.digest(b"forged root");
            }
            Ok(s)
        }

        fn node(&mut self, level: u32, index: u64) -> Result<AeNodeInfo, AeError> {
            let mut info = self.inner.node(level, index)?;
            if level == self.lie_level {
                info.hash = ALG.digest(b"forged node");
            }
            Ok(info)
        }
    }

    #[test]
    fn forged_root_or_node_fails_self_authentication_at_every_level() {
        // The remote genuinely diverges at leaf 0, so the descent walks
        // the leftmost path — and meets the lie at whichever level it
        // was planted on.
        let local = ShardTree::build(ALG, shard(8));
        let mut leaves = shard(8);
        leaves[0].1 = ALG.digest(b"tampered");
        let remote = ShardTree::build(ALG, leaves);
        for lie_level in 0..=local.depth() {
            let mut oracle = LyingOracle {
                inner: TreeOracle::new(&remote),
                lie_level,
            };
            match locate_divergence(&local, &mut oracle).unwrap() {
                AeOutcome::Forged { .. } => {}
                other => panic!("lie at level {lie_level} undetected: {other:?}"),
            }
        }
    }

    #[test]
    fn hundred_k_shard_locates_divergence_in_log_rounds() {
        let n = 100_000u64;
        let local = ShardTree::build(ALG, shard(n));
        let mut leaves = shard(n);
        leaves[(n / 2) as usize].1 = ALG.digest(b"flip");
        let remote = ShardTree::build(ALG, leaves);
        let mut oracle = TreeOracle::new(&remote);
        match locate_divergence(&local, &mut oracle).unwrap() {
            AeOutcome::Diverged { rounds, depth, .. } => {
                assert_eq!(depth, 17); // ceil(log2(100_000))
                assert!(rounds <= 19, "{rounds} rounds exceeds log2(n) + 2");
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }
}
