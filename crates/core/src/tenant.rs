//! Tenancy: per-tenant signing identities and federated verification.
//!
//! A tenant is an **isolation domain**: its own signing key minted from
//! the simulated PKI, its own append-log shard
//! ([`tep_storage::TenantShards`]), its own key directory, and its own
//! evidence counters. The [`TenantDirectory`] is the control plane — it
//! mints tenant signers from the [`CertificateAuthority`], tracks which
//! tenants are enabled for admission, and scopes every verification to
//! the right key set so one tenant's records (or forged denials) can
//! never be accepted in another tenant's scope.
//!
//! [`federated_verify`] runs the full R1–R8 + denial verification
//! independently per tenant over a sharded store and aggregates the
//! results into one [`FederatedReport`], attributing every piece of
//! evidence (and every quarantined byte) to exactly one tenant.

use crate::denial::{DenialProof, SignedRoot};
use crate::merkle::shard_tree_of;
use crate::provenance::collect;
use crate::verify::{EvidenceKind, TamperEvidence, Verifier};
use rand::RngCore;
use std::collections::BTreeMap;
use std::sync::Arc;
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{Certificate, CertificateAuthority, KeyDirectory, Participant, PkiError};
use tep_crypto::rsa::RsaPublicKey;
use tep_crypto::ParticipantId;
use tep_model::{ObjectId, TenantId};
use tep_obs::{names, Counter, Registry};
use tep_storage::TenantShards;

/// High bits folded into every tenant signer's [`ParticipantId`], so
/// tenant-signer ids can never collide with ordinary workload
/// participants (which use small ids) and the tenant is recoverable
/// from the id for attribution.
pub const TENANT_SIGNER_BASE: u64 = 0x7E4A_0000_0000_0000;

/// One tenant's identity material and admission state.
struct TenantEntry {
    signer: Arc<Participant>,
    keys: KeyDirectory,
    enabled: bool,
}

/// The tenant control plane: per-tenant signers, key directories, and
/// enable/disable state.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use tep_core::tenant::TenantDirectory;
/// use tep_crypto::digest::HashAlgorithm;
/// use tep_crypto::pki::CertificateAuthority;
/// use tep_model::TenantId;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let ca = CertificateAuthority::new(512, HashAlgorithm::Sha256, &mut rng);
/// let mut dir = TenantDirectory::new(&ca);
/// dir.mint(&ca, TenantId(1), 512, &mut rng);
/// assert!(dir.is_enabled(TenantId(1)));
/// assert!(!dir.is_enabled(TenantId(2))); // unknown ⇒ not admitted
/// ```
pub struct TenantDirectory {
    alg: HashAlgorithm,
    ca_key: RsaPublicKey,
    tenants: BTreeMap<TenantId, TenantEntry>,
}

impl TenantDirectory {
    /// Creates an empty directory trusting `ca`.
    pub fn new(ca: &CertificateAuthority) -> TenantDirectory {
        TenantDirectory {
            alg: ca.algorithm(),
            ca_key: ca.public_key().clone(),
            tenants: BTreeMap::new(),
        }
    }

    /// The hash algorithm every tenant in this directory signs with.
    pub fn alg(&self) -> HashAlgorithm {
        self.alg
    }

    /// The deterministic signer identity of `tenant` — the key
    /// derivation is pure (tenant id → participant id), so any party
    /// can attribute a signature to its tenant without a lookup.
    pub fn signer_id(tenant: TenantId) -> ParticipantId {
        ParticipantId(TENANT_SIGNER_BASE | tenant.raw())
    }

    /// Mints `tenant`'s signing identity from the PKI: generates a
    /// fresh key pair, has `ca` certify it under
    /// [`TenantDirectory::signer_id`], and starts the tenant enabled.
    /// Re-minting an existing tenant rotates its key.
    pub fn mint(
        &mut self,
        ca: &CertificateAuthority,
        tenant: TenantId,
        key_bits: usize,
        rng: &mut dyn RngCore,
    ) -> Arc<Participant> {
        let signer = Arc::new(ca.enroll(Self::signer_id(tenant), key_bits, rng));
        let mut keys = KeyDirectory::new(self.ca_key.clone(), self.alg);
        keys.register(signer.certificate().clone())
            .expect("a certificate this CA just issued must register");
        self.tenants.insert(
            tenant,
            TenantEntry {
                signer: Arc::clone(&signer),
                keys,
                enabled: true,
            },
        );
        signer
    }

    /// Registers an additional CA-certified participant *within*
    /// `tenant`'s scope (a workload actor whose records that tenant's
    /// verifier should accept). Certificates registered for one tenant
    /// are invisible to every other tenant — that scoping is what makes
    /// cross-tenant replay attributable instead of accepted.
    pub fn register(&mut self, tenant: TenantId, cert: Certificate) -> Result<(), PkiError> {
        let entry = self
            .tenants
            .get_mut(&tenant)
            .ok_or(PkiError::UnknownParticipant(cert.subject()))?;
        entry.keys.register(cert)
    }

    /// `tenant`'s signing identity, if minted.
    pub fn signer(&self, tenant: TenantId) -> Option<Arc<Participant>> {
        self.tenants.get(&tenant).map(|e| Arc::clone(&e.signer))
    }

    /// `tenant`'s key directory (the CA plus every certificate
    /// registered in that tenant's scope), if minted.
    pub fn keys(&self, tenant: TenantId) -> Option<&KeyDirectory> {
        self.tenants.get(&tenant).map(|e| &e.keys)
    }

    /// Enables or disables `tenant` for admission. Disabling never
    /// deletes identity material — evidence already attributed to the
    /// tenant stays verifiable.
    pub fn set_enabled(&mut self, tenant: TenantId, enabled: bool) {
        if let Some(e) = self.tenants.get_mut(&tenant) {
            e.enabled = enabled;
        }
    }

    /// `true` iff `tenant` is minted **and** enabled — the admission
    /// predicate tep-net's HELLO handler asks.
    pub fn is_enabled(&self, tenant: TenantId) -> bool {
        self.tenants.get(&tenant).is_some_and(|e| e.enabled)
    }

    /// `true` iff `tenant` has been minted (enabled or not).
    pub fn contains(&self, tenant: TenantId) -> bool {
        self.tenants.contains_key(&tenant)
    }

    /// Every minted tenant, in id order.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.tenants.keys().copied().collect()
    }
}

/// Per-tenant [`EvidenceKind`] counters: the same
/// `tep_core_evidence_<kind>_total` family as
/// [`crate::verify::EvidenceCounters`], with a `tenant` label baked
/// into each name via [`names::with_tenant`] — so damage shows up both
/// in the unlabeled aggregate (recorded by the verify paths) and
/// attributed to the tenant it hit.
#[derive(Clone)]
pub struct TenantEvidenceCounters {
    counters: Vec<Counter>,
}

impl TenantEvidenceCounters {
    /// Registers (or re-resolves) `tenant`'s labeled counters.
    pub fn new(registry: &Registry, tenant: TenantId) -> TenantEvidenceCounters {
        TenantEvidenceCounters {
            counters: EvidenceKind::ALL
                .iter()
                .map(|k| registry.counter(&names::with_tenant(&k.counter_name(), tenant.raw())))
                .collect(),
        }
    }

    /// Counts one piece of evidence of `kind` against the tenant.
    pub fn record(&self, kind: EvidenceKind) {
        self.counters[kind as usize].inc();
    }

    /// Counts every issue in `issues` by kind.
    pub fn record_issues(&self, issues: &[TamperEvidence]) {
        for issue in issues {
            self.record(issue.kind());
        }
    }
}

/// One tenant's slice of a [`FederatedReport`].
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// The tenant this slice describes.
    pub tenant: TenantId,
    /// Objects whose histories were verified.
    pub objects: usize,
    /// Records whose signatures were checked.
    pub records_checked: usize,
    /// Every piece of tamper evidence found in this tenant's scope.
    pub issues: Vec<TamperEvidence>,
    /// `true` when the tenant's signed denial tree was built and a
    /// non-membership proof under it verified (false when the shard is
    /// empty or the tenant has no signer to sign the root).
    pub denial_checked: bool,
    /// Why the tenant's shard failed to open, if it did (a failed open
    /// is isolation working: the damage stays in this report).
    pub shard_error: Option<String>,
}

impl TenantReport {
    /// `true` iff no evidence was found and the shard opened.
    pub fn verified(&self) -> bool {
        self.issues.is_empty() && self.shard_error.is_none()
    }
}

/// Aggregated per-tenant verification results — R1–R8 chain checks,
/// storage-recovery attribution, and denial-tree self-checks, each run
/// under the *tenant's own* key directory.
#[derive(Clone, Debug, Default)]
pub struct FederatedReport {
    /// One report per tenant, in tenant-id order.
    pub tenants: Vec<TenantReport>,
}

impl FederatedReport {
    /// `true` iff every tenant verified clean.
    pub fn verified(&self) -> bool {
        self.tenants.iter().all(|t| t.verified())
    }

    /// The report for `tenant`, if it was verified.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }
}

/// Verifies every tenant's shard independently and aggregates the
/// results.
///
/// Per tenant: the shard's recovery report is surfaced as
/// [`TamperEvidence::StorageQuarantine`] when degraded; every object's
/// full history is collected and verified under the tenant's own
/// [`KeyDirectory`] (`hash_of` supplies the live object hash where one
/// exists — when it returns `None` the latest record's claimed output
/// hash anchors the chain checks, i.e. an audit-mode verify); and, when
/// the tenant has a signer and a non-empty shard, the denial tree is
/// built, its root signed, and a non-membership proof for an absent
/// object verified under the same keys.
///
/// When `registry` is given, every issue is recorded into that tenant's
/// labeled evidence counters ([`TenantEvidenceCounters`]) — exact
/// attribution, no cross-tenant bleed.
pub fn federated_verify(
    dir: &TenantDirectory,
    shards: &TenantShards,
    hash_of: impl Fn(TenantId, ObjectId) -> Option<Vec<u8>>,
    registry: Option<&Registry>,
) -> FederatedReport {
    let mut report = FederatedReport::default();
    for tenant in dir.tenants() {
        let mut tr = TenantReport {
            tenant,
            objects: 0,
            records_checked: 0,
            issues: Vec::new(),
            denial_checked: false,
            shard_error: shards.shard_error(tenant).map(str::to_owned),
        };
        if let Some(db) = shards.shard(tenant) {
            let keys = dir.keys(tenant).expect("tenant came from the directory");
            let verifier = Verifier::new(keys, dir.alg());
            let recovery = db.recovery();
            for oid in db.object_ids() {
                let Ok(prov) = collect(&db, oid) else {
                    continue;
                };
                let hash = hash_of(tenant, oid).or_else(|| {
                    prov.records
                        .iter()
                        .filter(|r| r.output_oid == oid)
                        .max_by_key(|r| r.seq_id)
                        .map(|r| r.output_hash.clone())
                });
                let Some(hash) = hash else { continue };
                let v = verifier.verify_recovered(&hash, &prov, &recovery);
                tr.objects += 1;
                tr.records_checked += v.records_checked;
                tr.issues.extend(v.issues);
            }
            // `verify_recovered` attributes quarantined storage per
            // object; if the damage wiped every chain (or emptied the
            // shard) there is no object left to carry it, so surface it
            // here once instead.
            if recovery.is_degraded()
                && !tr
                    .issues
                    .iter()
                    .any(|i| i.kind() == EvidenceKind::StorageQuarantine)
            {
                tr.issues.push(TamperEvidence::StorageQuarantine {
                    gaps: recovery.corruption_gaps() as u64 + recovery.decode_failures,
                    bytes: recovery.quarantined_bytes,
                });
            }
            // Denial self-check: the tenant's own signer must be able to
            // prove non-membership under its own signed root.
            if let Some(signer) = dir.signer(tenant) {
                if !db.is_empty() {
                    let tree = shard_tree_of(dir.alg(), &db);
                    let absent =
                        ObjectId(db.object_ids().iter().map(|o| o.raw()).max().unwrap_or(0) + 1);
                    match SignedRoot::sign(&tree, db.len() as u64, &signer) {
                        Ok(root) => match DenialProof::prove(&tree, absent) {
                            Some(proof) => {
                                let denial = crate::denial::SignedDenial { root, proof };
                                if denial.check(keys).is_err() {
                                    tr.issues.push(TamperEvidence::ForgedDenial { oid: absent });
                                }
                                tr.denial_checked = true;
                            }
                            None => {
                                tr.issues.push(TamperEvidence::ForgedDenial { oid: absent });
                            }
                        },
                        Err(_) => {
                            tr.issues.push(TamperEvidence::ForgedDenial { oid: absent });
                        }
                    }
                }
            }
        }
        if let Some(reg) = registry {
            TenantEvidenceCounters::new(reg, tenant).record_issues(&tr.issues);
        }
        report.tenants.push(tr);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::{ProvenanceTracker, TrackerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;
    use tep_model::Value;
    use tep_storage::vfs::{FaultConfig, FaultVfs};
    use tep_storage::{shard_path, Vfs};

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn two_tenant_world() -> (CertificateAuthority, TenantDirectory, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x7E4A);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let mut dir = TenantDirectory::new(&ca);
        dir.mint(&ca, TenantId(1), 512, &mut rng);
        dir.mint(&ca, TenantId(2), 512, &mut rng);
        (ca, dir, rng)
    }

    fn populate(
        dir: &TenantDirectory,
        shards: &TenantShards,
        tenant: TenantId,
        updates: usize,
    ) -> ObjectId {
        let signer = dir.signer(tenant).unwrap();
        let db = shards.shard(tenant).unwrap();
        let mut tracker = ProvenanceTracker::new(TrackerConfig::default(), db);
        let (obj, _) = tracker.insert(&signer, Value::Int(0), None).unwrap();
        for i in 1..=updates {
            tracker.update(&signer, obj, Value::Int(i as i64)).unwrap();
        }
        shards.shard(tenant).unwrap().sync().unwrap();
        obj
    }

    fn fault_shards(root: &str, vfs_a: Arc<FaultVfs>, vfs_b: Arc<FaultVfs>) -> TenantShards {
        TenantShards::open_with(
            root,
            vec![
                (TenantId(1), vfs_a as Arc<dyn Vfs>),
                (TenantId(2), vfs_b as Arc<dyn Vfs>),
            ],
        )
    }

    #[test]
    fn signer_ids_are_disjoint_from_workload_participants() {
        let a = TenantDirectory::signer_id(TenantId(1));
        let b = TenantDirectory::signer_id(TenantId(2));
        assert_ne!(a, b);
        assert!(a.0 >= TENANT_SIGNER_BASE);
        assert_ne!(a, ParticipantId(1));
    }

    #[test]
    fn disabled_tenant_is_not_admitted_but_keeps_identity() {
        let (_ca, mut dir, _rng) = two_tenant_world();
        assert!(dir.is_enabled(TenantId(1)));
        dir.set_enabled(TenantId(1), false);
        assert!(!dir.is_enabled(TenantId(1)));
        assert!(dir.contains(TenantId(1)));
        assert!(dir.signer(TenantId(1)).is_some());
        dir.set_enabled(TenantId(1), true);
        assert!(dir.is_enabled(TenantId(1)));
    }

    #[test]
    fn cross_tenant_certificates_are_scoped() {
        let (ca, mut dir, mut rng) = two_tenant_world();
        // A workload participant certified by the CA, registered only in
        // tenant 1's scope.
        let worker = ca.enroll(ParticipantId(42), 512, &mut rng);
        dir.register(TenantId(1), worker.certificate().clone())
            .unwrap();
        assert!(dir
            .keys(TenantId(1))
            .unwrap()
            .public_key(worker.id())
            .is_ok());
        assert!(dir
            .keys(TenantId(2))
            .unwrap()
            .public_key(worker.id())
            .is_err());
        // Unknown tenant: registration refused.
        assert!(dir
            .register(TenantId(9), worker.certificate().clone())
            .is_err());
    }

    #[test]
    fn federated_verify_clean_two_tenants() {
        let (_ca, dir, _rng) = two_tenant_world();
        let vfs_a = FaultVfs::new(FaultConfig::default());
        let vfs_b = FaultVfs::new(FaultConfig::default());
        let shards = fault_shards("/fed", vfs_a, vfs_b);
        populate(&dir, &shards, TenantId(1), 3);
        populate(&dir, &shards, TenantId(2), 2);

        let registry = Registry::new();
        let report = federated_verify(&dir, &shards, |_, _| None, Some(&registry));
        assert!(report.verified(), "issues: {:?}", report.tenants);
        let t1 = report.tenant(TenantId(1)).unwrap();
        assert!(t1.denial_checked);
        assert!(t1.records_checked >= 4);
        for kind in EvidenceKind::ALL {
            for t in [1u64, 2] {
                assert_eq!(
                    registry.counter_value(&names::with_tenant(&kind.counter_name(), t)),
                    0
                );
            }
        }
    }

    #[test]
    fn corruption_is_attributed_to_the_right_tenant() {
        let (_ca, dir, _rng) = two_tenant_world();
        let vfs_a = FaultVfs::new(FaultConfig::default());
        let vfs_b = FaultVfs::new(FaultConfig::default());
        {
            let shards = fault_shards("/fed", Arc::clone(&vfs_a), Arc::clone(&vfs_b));
            populate(&dir, &shards, TenantId(1), 5);
            populate(&dir, &shards, TenantId(2), 5);
        }
        // Flip one byte in the interior of tenant 1's shard only.
        assert!(vfs_a.corrupt_byte(&shard_path(&PathBuf::from("/fed"), TenantId(1)), 300));
        let shards = fault_shards("/fed", vfs_a, vfs_b);

        let registry = Registry::new();
        let report = federated_verify(&dir, &shards, |_, _| None, Some(&registry));
        let t1 = report.tenant(TenantId(1)).unwrap();
        let t2 = report.tenant(TenantId(2)).unwrap();
        assert!(!t1.verified(), "tenant 1 must carry the damage");
        assert!(
            t1.issues
                .iter()
                .any(|i| i.kind() == EvidenceKind::StorageQuarantine),
            "damage must be attributed to quarantined storage: {:?}",
            t1.issues
        );
        assert!(t2.verified(), "tenant 2 must be untouched: {:?}", t2.issues);
        // Labeled counters: tenant 1 has the evidence, tenant 2 has none.
        let quarantine = names::with_tenant(&EvidenceKind::StorageQuarantine.counter_name(), 1);
        assert_eq!(registry.counter_value(&quarantine), 1);
        for kind in EvidenceKind::ALL {
            assert_eq!(
                registry.counter_value(&names::with_tenant(&kind.counter_name(), 2)),
                0,
                "tenant 2 must have zero {kind} evidence"
            );
        }
    }

    #[test]
    fn tenant_verify_rejects_records_signed_for_another_tenant() {
        // Records minted by tenant 1's signer, replayed into tenant 2's
        // shard: tenant 2's key directory has no certificate for tenant
        // 1's signer, so verification attributes every record rather
        // than accepting any.
        let (_ca, dir, _rng) = two_tenant_world();
        let vfs_a = FaultVfs::new(FaultConfig::default());
        let vfs_b = FaultVfs::new(FaultConfig::default());
        let shards = fault_shards("/fed", vfs_a, vfs_b);
        populate(&dir, &shards, TenantId(1), 2);
        // Replay A's rows into B's shard byte-for-byte.
        let a = shards.shard(TenantId(1)).unwrap();
        let b = shards.shard(TenantId(2)).unwrap();
        for rec in a.all_records() {
            b.append(rec).unwrap();
        }
        let report = federated_verify(&dir, &shards, |_, _| None, None);
        let t2 = report.tenant(TenantId(2)).unwrap();
        assert!(!t2.verified());
        assert!(
            t2.issues
                .iter()
                .any(|i| i.kind() == EvidenceKind::UnknownParticipant),
            "replayed records must be unattributable in tenant 2's scope: {:?}",
            t2.issues
        );
        // Tenant 1's own scope still verifies.
        assert!(report.tenant(TenantId(1)).unwrap().verified());
    }
}
