//! Phase-level timing and space metrics.
//!
//! The paper's figures decompose checksum overhead into *hashing trees*,
//! *encrypting* (signing), and *inserting checksums* (Fig. 10's caption
//! names exactly these phases). Every tracked operation reports a
//! [`Metrics`] with that breakdown so the bench harness can regenerate the
//! figures without instrumenting the library from outside.
//!
//! [`TransferCounters`] extends the same philosophy to provenance
//! *exchange*: lock-free per-connection counters (frames, bytes, verify
//! failures, retries) that the `tep-net` transport increments on its hot
//! path and the bench harness snapshots to report transfer throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tep_obs::{Counter, Registry};

/// Timing/space breakdown of one or more tracked operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Time spent hashing the *input* trees (pre-state walk / cache warm-up).
    pub hash_input_ns: u64,
    /// Time spent hashing the *output* trees (post-state recompute) — the
    /// quantity Figure 7 plots for Basic vs Economical.
    pub hash_output_ns: u64,
    /// Time spent producing signatures ("encrypting" in the paper).
    pub sign_ns: u64,
    /// Time spent appending checksum rows to the provenance store.
    pub store_ns: u64,
    /// Provenance records emitted (actual + inherited).
    pub records: u64,
    /// Nodes whose subtree hash was (re)computed.
    pub nodes_hashed: u64,
    /// Bytes of paper-layout checksum rows written
    /// (`SeqID + Participant + Oid + checksum` per record).
    pub row_bytes: u64,
}

impl Metrics {
    /// Total hashing time (input + output walks).
    pub fn hash_ns(&self) -> u64 {
        self.hash_input_ns + self.hash_output_ns
    }

    /// Total measured time across all phases.
    pub fn total_ns(&self) -> u64 {
        self.hash_ns() + self.sign_ns + self.store_ns
    }

    /// Total time as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns())
    }

    /// Accumulates another metrics value into this one.
    pub fn accumulate(&mut self, other: &Metrics) {
        self.hash_input_ns += other.hash_input_ns;
        self.hash_output_ns += other.hash_output_ns;
        self.sign_ns += other.sign_ns;
        self.store_ns += other.store_ns;
        self.records += other.records;
        self.nodes_hashed += other.nodes_hashed;
        self.row_bytes += other.row_bytes;
    }
}

/// Lock-free counters for one provenance transfer endpoint (a connection,
/// a client session, or a whole server — callers pick the granularity and
/// may share one instance across threads behind an `Arc`).
#[derive(Debug, Default)]
pub struct TransferCounters {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    verify_failures: AtomicU64,
    retries: AtomicU64,
    worker_panics: AtomicU64,
    obs: Option<TransferObs>,
}

/// Registry mirror for [`TransferCounters`]: every increment is doubled
/// into these `tep_net_*` counters so transport traffic shows up in the
/// shared metric registry alongside the crypto/core/storage metrics.
#[derive(Clone, Debug)]
struct TransferObs {
    frames_sent: Counter,
    frames_received: Counter,
    bytes_sent: Counter,
    bytes_received: Counter,
    verify_failures: Counter,
    retries: Counter,
    worker_panics: Counter,
}

impl TransferObs {
    fn new(registry: &Registry) -> Self {
        TransferObs {
            frames_sent: registry.counter("tep_net_frames_sent_total"),
            frames_received: registry.counter("tep_net_frames_received_total"),
            bytes_sent: registry.counter("tep_net_bytes_sent_total"),
            bytes_received: registry.counter("tep_net_bytes_received_total"),
            verify_failures: registry.counter("tep_net_verify_failures_total"),
            retries: registry.counter("tep_net_retries_total"),
            worker_panics: registry.counter("tep_net_worker_panics_total"),
        }
    }
}

/// A point-in-time copy of a [`TransferCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferSnapshot {
    /// Wire frames written.
    pub frames_sent: u64,
    /// Wire frames read.
    pub frames_received: u64,
    /// Bytes written (frame headers + payloads).
    pub bytes_sent: u64,
    /// Bytes read (frame headers + payloads).
    pub bytes_received: u64,
    /// Transfers rejected by streaming verification.
    pub verify_failures: u64,
    /// Connect/read attempts that were retried after a failure.
    pub retries: u64,
    /// Server worker iterations that panicked and were isolated (the
    /// worker recovered and kept serving).
    pub worker_panics: u64,
}

impl TransferCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh counters that additionally mirror every increment into
    /// `registry` under the `tep_net_*` names.
    pub fn observed(registry: &Registry) -> Self {
        TransferCounters {
            obs: Some(TransferObs::new(registry)),
            ..Self::default()
        }
    }

    /// Records one sent frame of `bytes` total wire bytes.
    pub fn frame_sent(&self, bytes: u64) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.frames_sent.inc();
            o.bytes_sent.add(bytes);
        }
    }

    /// Records one received frame of `bytes` total wire bytes.
    pub fn frame_received(&self, bytes: u64) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.frames_received.inc();
            o.bytes_received.add(bytes);
        }
    }

    /// Records a transfer rejected by verification.
    pub fn verify_failure(&self) {
        self.verify_failures.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.verify_failures.inc();
        }
    }

    /// Records a retried connect/read attempt.
    pub fn retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.retries.inc();
        }
    }

    /// Records a worker panic that was caught and isolated.
    pub fn worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.worker_panics.inc();
        }
    }

    /// Folds another endpoint's counters into this one (e.g. per-connection
    /// into per-server totals).
    pub fn merge(&self, other: &TransferSnapshot) {
        self.frames_sent
            .fetch_add(other.frames_sent, Ordering::Relaxed);
        self.frames_received
            .fetch_add(other.frames_received, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(other.bytes_sent, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(other.bytes_received, Ordering::Relaxed);
        self.verify_failures
            .fetch_add(other.verify_failures, Ordering::Relaxed);
        self.retries.fetch_add(other.retries, Ordering::Relaxed);
        self.worker_panics
            .fetch_add(other.worker_panics, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.frames_sent.add(other.frames_sent);
            o.frames_received.add(other.frames_received);
            o.bytes_sent.add(other.bytes_sent);
            o.bytes_received.add(other.bytes_received);
            o.verify_failures.add(other.verify_failures);
            o.retries.add(other.retries);
            o.worker_panics.add(other.worker_panics);
        }
    }

    /// Reads all counters at once.
    pub fn snapshot(&self) -> TransferSnapshot {
        TransferSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            verify_failures: self.verify_failures.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_counters_accumulate_and_merge() {
        let c = TransferCounters::new();
        c.frame_sent(100);
        c.frame_sent(28);
        c.frame_received(64);
        c.verify_failure();
        c.retry();
        c.retry();
        let snap = c.snapshot();
        assert_eq!(snap.frames_sent, 2);
        assert_eq!(snap.bytes_sent, 128);
        assert_eq!(snap.frames_received, 1);
        assert_eq!(snap.bytes_received, 64);
        assert_eq!(snap.verify_failures, 1);
        assert_eq!(snap.retries, 2);

        let totals = TransferCounters::new();
        totals.merge(&snap);
        totals.merge(&snap);
        assert_eq!(totals.snapshot().bytes_sent, 256);
        assert_eq!(totals.snapshot().retries, 4);
    }

    #[test]
    fn transfer_counters_are_thread_safe() {
        use std::sync::Arc;
        let c = Arc::new(TransferCounters::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.frame_sent(8);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = c.snapshot();
        assert_eq!(snap.frames_sent, 4000);
        assert_eq!(snap.bytes_sent, 32_000);
    }

    #[test]
    fn totals_and_accumulation() {
        let a = Metrics {
            hash_input_ns: 4,
            hash_output_ns: 6,
            sign_ns: 20,
            store_ns: 30,
            records: 2,
            nodes_hashed: 5,
            row_bytes: 280,
        };
        assert_eq!(a.hash_ns(), 10);
        assert_eq!(a.total_ns(), 60);
        assert_eq!(a.total(), Duration::from_nanos(60));
        let mut b = Metrics::default();
        b.accumulate(&a);
        b.accumulate(&a);
        assert_eq!(b.records, 4);
        assert_eq!(b.total_ns(), 120);
        assert_eq!(b.row_bytes, 560);
    }
}
