//! Phase-level timing and space metrics.
//!
//! The paper's figures decompose checksum overhead into *hashing trees*,
//! *encrypting* (signing), and *inserting checksums* (Fig. 10's caption
//! names exactly these phases). Every tracked operation reports a
//! [`Metrics`] with that breakdown so the bench harness can regenerate the
//! figures without instrumenting the library from outside.

use std::time::Duration;

/// Timing/space breakdown of one or more tracked operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Time spent hashing the *input* trees (pre-state walk / cache warm-up).
    pub hash_input_ns: u64,
    /// Time spent hashing the *output* trees (post-state recompute) — the
    /// quantity Figure 7 plots for Basic vs Economical.
    pub hash_output_ns: u64,
    /// Time spent producing signatures ("encrypting" in the paper).
    pub sign_ns: u64,
    /// Time spent appending checksum rows to the provenance store.
    pub store_ns: u64,
    /// Provenance records emitted (actual + inherited).
    pub records: u64,
    /// Nodes whose subtree hash was (re)computed.
    pub nodes_hashed: u64,
    /// Bytes of paper-layout checksum rows written
    /// (`SeqID + Participant + Oid + checksum` per record).
    pub row_bytes: u64,
}

impl Metrics {
    /// Total hashing time (input + output walks).
    pub fn hash_ns(&self) -> u64 {
        self.hash_input_ns + self.hash_output_ns
    }

    /// Total measured time across all phases.
    pub fn total_ns(&self) -> u64 {
        self.hash_ns() + self.sign_ns + self.store_ns
    }

    /// Total time as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns())
    }

    /// Accumulates another metrics value into this one.
    pub fn accumulate(&mut self, other: &Metrics) {
        self.hash_input_ns += other.hash_input_ns;
        self.hash_output_ns += other.hash_output_ns;
        self.sign_ns += other.sign_ns;
        self.store_ns += other.store_ns;
        self.records += other.records;
        self.nodes_hashed += other.nodes_hashed;
        self.row_bytes += other.row_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulation() {
        let a = Metrics {
            hash_input_ns: 4,
            hash_output_ns: 6,
            sign_ns: 20,
            store_ns: 30,
            records: 2,
            nodes_hashed: 5,
            row_bytes: 280,
        };
        assert_eq!(a.hash_ns(), 10);
        assert_eq!(a.total_ns(), 60);
        assert_eq!(a.total(), Duration::from_nanos(60));
        let mut b = Metrics::default();
        b.accumulate(&a);
        b.accumulate(&a);
        assert_eq!(b.records, 4);
        assert_eq!(b.total_ns(), 120);
        assert_eq!(b.row_bytes, 560);
    }
}
