//! Provenance integrity for **atomic objects** (§3 of the paper).
//!
//! [`AtomicLedger`] is the standalone form of the scheme for databases of
//! plain `(id, value)` objects — no tree structure, hashes computed as
//! `h(A, val)` — supporting linear chains (insert/update) and non-linear
//! DAGs (aggregate). It reproduces Figure 3's worked example exactly,
//! including aggregation of *historical* versions (Figure 2 aggregates the
//! original value of `A` after `A` had already been updated).
//!
//! The full compound-object scheme (§4) lives in
//! [`crate::tracker::ProvenanceTracker`]; both share the same record,
//! storage, and verification machinery.

use crate::chain::ChainHeads;
use crate::error::CoreError;
use crate::hashing::hash_atom;
use crate::provenance::{collect, ProvenanceObject};
use crate::record::{InputRef, ProvenanceRecord, RecordKind};
use std::collections::HashMap;
use std::sync::Arc;
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::Participant;
use tep_model::{ModelError, ObjectId, Value};
use tep_storage::ProvenanceDb;

/// A database of atomic objects with checksummed provenance.
///
/// ```
/// use std::sync::Arc;
/// use rand::{rngs::StdRng, SeedableRng};
/// use tep_core::prelude::*;
/// use tep_model::Value;
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let ca = CertificateAuthority::new(512, HashAlgorithm::Sha256, &mut rng);
/// let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
///
/// let mut ledger = AtomicLedger::new(HashAlgorithm::Sha256, Arc::new(ProvenanceDb::in_memory()));
/// let a = ledger.insert(&alice, Value::Int(1)).unwrap();
/// let b = ledger.insert(&alice, Value::Int(2)).unwrap();
/// let c = ledger.aggregate(&alice, &[a, b], Value::Int(3)).unwrap(); // non-linear!
/// assert_eq!(ledger.provenance_of(c).unwrap().len(), 3);
/// ```
pub struct AtomicLedger {
    alg: HashAlgorithm,
    db: Arc<ProvenanceDb>,
    heads: ChainHeads,
    values: HashMap<ObjectId, Value>,
    next_id: u64,
}

impl AtomicLedger {
    /// Creates an empty ledger writing records to `db`.
    pub fn new(alg: HashAlgorithm, db: Arc<ProvenanceDb>) -> Self {
        AtomicLedger {
            alg,
            db,
            heads: ChainHeads::new(),
            values: HashMap::new(),
            next_id: 0,
        }
    }

    /// The provenance store.
    pub fn db(&self) -> &Arc<ProvenanceDb> {
        &self.db
    }

    /// Current value of an object.
    pub fn value(&self, id: ObjectId) -> Option<&Value> {
        self.values.get(&id)
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no objects exist.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `h(A, val)` for the object's current value.
    pub fn object_hash(&self, id: ObjectId) -> Result<Vec<u8>, CoreError> {
        let value = self
            .values
            .get(&id)
            .ok_or(CoreError::Model(ModelError::UnknownObject(id)))?;
        Ok(hash_atom(self.alg, id, value))
    }

    /// Latest chain seq for an object.
    pub fn head_seq(&self, id: ObjectId) -> Option<u64> {
        self.heads.get(id).map(|h| h.seq)
    }

    /// **Insert**: `C₀ = S_SKp(0 ‖ h(A,val) ‖ 0)`.
    pub fn insert(&mut self, signer: &Participant, value: Value) -> Result<ObjectId, CoreError> {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        let output_hash = hash_atom(self.alg, id, &value);
        let record = ProvenanceRecord::create(
            self.alg,
            signer,
            RecordKind::Insert,
            0,
            vec![],
            id,
            output_hash,
            &[],
        )?;
        self.heads.advance(id, 0, record.checksum.clone());
        self.db.append(record.to_stored())?;
        self.values.insert(id, value);
        Ok(id)
    }

    /// **Update**: `Cᵢ = S_SKp(h(A,val) ‖ h(A,val′) ‖ Cᵢ₋₁)`.
    pub fn update(
        &mut self,
        signer: &Participant,
        id: ObjectId,
        value: Value,
    ) -> Result<(), CoreError> {
        let old = self
            .values
            .get(&id)
            .ok_or(CoreError::Model(ModelError::UnknownObject(id)))?;
        let input_hash = hash_atom(self.alg, id, old);
        let output_hash = hash_atom(self.alg, id, &value);
        let head = self
            .heads
            .get(id)
            .expect("live atomic object always has a head");
        let seq = head.seq + 1;
        let prev = head.checksum.clone();
        let record = ProvenanceRecord::create(
            self.alg,
            signer,
            RecordKind::Update,
            seq,
            vec![InputRef {
                oid: id,
                hash: input_hash,
                prev_seq: Some(head.seq),
            }],
            id,
            output_hash,
            &[&prev],
        )?;
        self.heads.advance(id, seq, record.checksum.clone());
        self.db.append(record.to_stored())?;
        self.values.insert(id, value);
        Ok(())
    }

    /// **Delete**: removes the object; its provenance object is no longer
    /// relevant (§2.1 footnote 3) so no record is emitted.
    pub fn delete(&mut self, id: ObjectId) -> Result<Value, CoreError> {
        let value = self
            .values
            .remove(&id)
            .ok_or(CoreError::Model(ModelError::UnknownObject(id)))?;
        self.heads.remove(id);
        Ok(value)
    }

    /// **Aggregate** of the inputs' *current* versions:
    /// `C = S_SKp(h(h(A₁,v₁)‖…‖h(Aₙ,vₙ)) ‖ h(B,val) ‖ C₁‖…‖Cₙ)`.
    pub fn aggregate(
        &mut self,
        signer: &Participant,
        inputs: &[ObjectId],
        value: Value,
    ) -> Result<ObjectId, CoreError> {
        let versions: Result<Vec<(ObjectId, u64)>, CoreError> = inputs
            .iter()
            .map(|&oid| {
                let head = self
                    .heads
                    .get(oid)
                    .ok_or(CoreError::Model(ModelError::UnknownObject(oid)))?;
                Ok((oid, head.seq))
            })
            .collect();
        self.aggregate_versions(signer, &versions?, value)
    }

    /// **Aggregate of specific historical versions** — Figure 2/3 combine
    /// the *original* value of `A` (seq 0) after `A` has moved on. Each
    /// input is `(object, seqID)` naming the version whose record hash and
    /// checksum are chained.
    pub fn aggregate_versions(
        &mut self,
        signer: &Participant,
        inputs: &[(ObjectId, u64)],
        value: Value,
    ) -> Result<ObjectId, CoreError> {
        if inputs.is_empty() {
            return Err(CoreError::Model(ModelError::EmptyAggregation));
        }
        let mut sorted = inputs.to_vec();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(CoreError::Model(ModelError::DuplicateAggregationInput(
                    w[0].0,
                )));
            }
        }

        // Resolve each referenced version's record: its output hash is
        // h(Aᵢ, vᵢ) for that version, its checksum is the chained Cᵢ.
        let mut input_refs = Vec::with_capacity(sorted.len());
        let mut prev_checksums = Vec::with_capacity(sorted.len());
        for &(oid, seq) in &sorted {
            let stored = self
                .db
                .records_for(oid)
                .into_iter()
                .find(|r| r.seq_id == seq)
                .ok_or(CoreError::NoProvenance(oid))?;
            let record = ProvenanceRecord::from_stored(&stored)?;
            input_refs.push(InputRef {
                oid,
                hash: record.output_hash,
                prev_seq: Some(seq),
            });
            prev_checksums.push(stored.checksum);
        }
        let prev_refs: Vec<&[u8]> = prev_checksums.iter().map(Vec::as_slice).collect();

        // seqID = 1 + max referenced seq (§2.1).
        let seq = sorted.iter().map(|&(_, s)| s).max().unwrap_or(0) + 1;

        let id = ObjectId(self.next_id);
        self.next_id += 1;
        let output_hash = hash_atom(self.alg, id, &value);
        let record = ProvenanceRecord::create(
            self.alg,
            signer,
            RecordKind::Aggregate,
            seq,
            input_refs,
            id,
            output_hash,
            &prev_refs,
        )?;
        self.heads.advance(id, seq, record.checksum.clone());
        self.db.append(record.to_stored())?;
        self.values.insert(id, value);
        Ok(id)
    }

    /// The provenance object (record DAG) for `id`.
    pub fn provenance_of(&self, id: ObjectId) -> Result<ProvenanceObject, CoreError> {
        collect(&self.db, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::Verifier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tep_crypto::pki::{CertificateAuthority, KeyDirectory, ParticipantId};

    const ALG: HashAlgorithm = HashAlgorithm::Sha1; // paper fidelity

    struct World {
        ledger: AtomicLedger,
        keys: KeyDirectory,
        p1: Participant,
        p2: Participant,
        p3: Participant,
    }

    fn world() -> World {
        let mut rng = StdRng::seed_from_u64(2009);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let p1 = ca.enroll(ParticipantId(1), 512, &mut rng);
        let p2 = ca.enroll(ParticipantId(2), 512, &mut rng);
        let p3 = ca.enroll(ParticipantId(3), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        for p in [&p1, &p2, &p3] {
            keys.register(p.certificate().clone()).unwrap();
        }
        World {
            ledger: AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory())),
            keys,
            p1,
            p2,
            p3,
        }
    }

    /// Reproduces Figure 3 of the paper record-for-record.
    #[test]
    fn figure3_worked_example() {
        let mut w = world();
        // seq 0: p2 inserts A = a1 (C1) and B = b1 (C2).
        let a = w.ledger.insert(&w.p2, Value::text("a1")).unwrap();
        let b = w.ledger.insert(&w.p2, Value::text("b1")).unwrap();
        // seq 1: p1 updates A → a2 (C3); p2 updates B → b2 (C4).
        w.ledger.update(&w.p1, a, Value::text("a2")).unwrap();
        w.ledger.update(&w.p2, b, Value::text("b2")).unwrap();
        // seq 2: p2 updates A → a3 (C5); p3 aggregates {(A,a1),(B,b2)} → C (C6).
        w.ledger.update(&w.p2, a, Value::text("a3")).unwrap();
        let c = w
            .ledger
            .aggregate_versions(&w.p3, &[(a, 0), (b, 1)], Value::text("c1"))
            .unwrap();
        // seq 3: p1 aggregates {(A,a3),(C,c1)} → D (C7).
        let d = w
            .ledger
            .aggregate_versions(&w.p1, &[(a, 2), (c, 2)], Value::text("d1"))
            .unwrap();

        // Sequence ids match the paper's table.
        assert_eq!(w.ledger.head_seq(a), Some(2));
        assert_eq!(w.ledger.head_seq(b), Some(1));
        assert_eq!(w.ledger.head_seq(c), Some(2)); // 1 + max(0, 1)
        assert_eq!(w.ledger.head_seq(d), Some(3)); // 1 + max(2, 2)

        // The provenance object of D is the 7-record DAG of Figure 2/3.
        let prov = w.ledger.provenance_of(d).unwrap();
        assert_eq!(prov.len(), 7);

        // And the recipient can verify it end-to-end.
        let hash = w.ledger.object_hash(d).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v.verified(), "issues: {:?}", v.issues);
        assert_eq!(v.participants.len(), 3);
    }

    #[test]
    fn insert_update_delete_lifecycle() {
        let mut w = world();
        let a = w.ledger.insert(&w.p1, Value::Int(5)).unwrap();
        assert_eq!(w.ledger.value(a), Some(&Value::Int(5)));
        w.ledger.update(&w.p1, a, Value::Int(6)).unwrap();
        assert_eq!(w.ledger.value(a), Some(&Value::Int(6)));
        assert_eq!(w.ledger.head_seq(a), Some(1));
        let last = w.ledger.delete(a).unwrap();
        assert_eq!(last, Value::Int(6));
        assert!(w.ledger.value(a).is_none());
        assert!(w.ledger.head_seq(a).is_none());
        assert!(w.ledger.is_empty());
    }

    #[test]
    fn update_unknown_object_fails() {
        let mut w = world();
        assert!(w.ledger.update(&w.p1, ObjectId(9), Value::Null).is_err());
        assert!(w.ledger.delete(ObjectId(9)).is_err());
        assert!(w.ledger.object_hash(ObjectId(9)).is_err());
    }

    #[test]
    fn aggregate_validates_inputs() {
        let mut w = world();
        let a = w.ledger.insert(&w.p1, Value::Int(1)).unwrap();
        assert!(w.ledger.aggregate(&w.p1, &[], Value::Null).is_err());
        assert!(w
            .ledger
            .aggregate_versions(&w.p1, &[(a, 0), (a, 0)], Value::Null)
            .is_err());
        assert!(w
            .ledger
            .aggregate(&w.p1, &[ObjectId(77)], Value::Null)
            .is_err());
        // Referencing a version that never existed fails.
        assert!(w
            .ledger
            .aggregate_versions(&w.p1, &[(a, 5)], Value::Null)
            .is_err());
    }

    #[test]
    fn aggregate_of_current_versions_verifies() {
        let mut w = world();
        let a = w.ledger.insert(&w.p1, Value::Int(1)).unwrap();
        let b = w.ledger.insert(&w.p2, Value::Int(2)).unwrap();
        w.ledger.update(&w.p2, b, Value::Int(3)).unwrap();
        let c = w.ledger.aggregate(&w.p3, &[a, b], Value::Int(4)).unwrap();
        assert_eq!(w.ledger.head_seq(c), Some(2));
        let prov = w.ledger.provenance_of(c).unwrap();
        let hash = w.ledger.object_hash(c).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
        assert!(v.verified(), "issues: {:?}", v.issues);
    }

    #[test]
    fn per_object_chains_are_independent() {
        // §3.2: corrupting A's chain must not affect verifying B.
        let mut w = world();
        let a = w.ledger.insert(&w.p1, Value::Int(1)).unwrap();
        let b = w.ledger.insert(&w.p2, Value::Int(2)).unwrap();
        w.ledger.update(&w.p1, a, Value::Int(10)).unwrap();
        w.ledger.update(&w.p2, b, Value::Int(20)).unwrap();

        // Tamper with A's provenance...
        let mut prov_a = w.ledger.provenance_of(a).unwrap();
        prov_a.records[0].output_hash[0] ^= 1;
        let va = Verifier::new(&w.keys, ALG).verify(&w.ledger.object_hash(a).unwrap(), &prov_a);
        assert!(!va.verified());

        // ...B still verifies untouched.
        let prov_b = w.ledger.provenance_of(b).unwrap();
        let vb = Verifier::new(&w.keys, ALG).verify(&w.ledger.object_hash(b).unwrap(), &prov_b);
        assert!(vb.verified());
    }
}
