//! Streaming compound hashing for larger-than-memory databases (§5.2).
//!
//! The paper: *"we can read one row at a time, hashing the row and the
//! cells in it, and updating the table's hash value with the row's hash
//! value. When all rows are read and hashed, we get the final hash value of
//! the table"* — demonstrated there on an 18.9-million-row `Title` table
//! (56,886,125 nodes).
//!
//! The canonical compound hash (`h(prefix(A) ‖ h(c₁) ‖ … ‖ h(c_k) ‖ k)`)
//! folds children incrementally, so these hashers produce **bit-identical**
//! results to [`crate::hashing::subtree_hash`] over an equivalent in-memory
//! forest while holding only one root-to-leaf path of digest states.

use tep_crypto::digest::{HashAlgorithm, Hasher};
use tep_model::encode::node_prefix;
use tep_model::{ObjectId, Value};

/// Error from streaming construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Children must be appended in strictly increasing `ObjectId` order to
    /// match the canonical child ordering.
    OutOfOrderChild {
        /// Previously appended child.
        prev: ObjectId,
        /// The offending child.
        next: ObjectId,
    },
    /// A depth-tagged entry skipped a tree level (its depth exceeds the
    /// current path length).
    DepthSkipped {
        /// The entry's claimed depth.
        got: usize,
        /// Deepest admissible depth at this point.
        max: usize,
    },
    /// A second root-level entry arrived after the first root completed.
    MultipleRoots,
    /// The stream ended with no entries at all.
    EmptyStream,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::OutOfOrderChild { prev, next } => write!(
                f,
                "children must arrive in increasing id order: {next} after {prev}"
            ),
            StreamError::DepthSkipped { got, max } => {
                write!(f, "entry depth {got} skips a level (max admissible {max})")
            }
            StreamError::MultipleRoots => write!(f, "more than one depth-0 entry in the stream"),
            StreamError::EmptyStream => write!(f, "subtree stream carried no entries"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Incrementally computes `h(subtree(A))` for one node whose children are
/// supplied as already-computed hashes, in `ObjectId` order.
pub struct StreamingNodeHasher {
    hasher: Hasher,
    child_count: u64,
    last_child: Option<ObjectId>,
}

impl StreamingNodeHasher {
    /// Starts hashing node `(id, value)`.
    pub fn new(alg: HashAlgorithm, id: ObjectId, value: &Value) -> Self {
        let mut hasher = alg.hasher();
        hasher.update(&node_prefix(id, value));
        StreamingNodeHasher {
            hasher,
            child_count: 0,
            last_child: None,
        }
    }

    /// Folds in the next child's subtree hash.
    pub fn add_child(&mut self, child: ObjectId, hash: &[u8]) -> Result<(), StreamError> {
        if let Some(prev) = self.last_child {
            if child <= prev {
                return Err(StreamError::OutOfOrderChild { prev, next: child });
            }
        }
        self.hasher.update(hash);
        self.child_count += 1;
        self.last_child = Some(child);
        Ok(())
    }

    /// Number of children folded so far.
    pub fn child_count(&self) -> u64 {
        self.child_count
    }

    /// Finishes: returns `h(subtree)` for this node.
    pub fn finish(mut self) -> Vec<u8> {
        self.hasher.update(&self.child_count.to_be_bytes());
        self.hasher.finalize()
    }
}

/// Hash of a leaf node (no children).
pub fn leaf_hash(alg: HashAlgorithm, id: ObjectId, value: &Value) -> Vec<u8> {
    StreamingNodeHasher::new(alg, id, value).finish()
}

/// Streams a whole table (table → rows → cells) one row at a time.
///
/// This is exactly the paper's large-database procedure: per row, hash each
/// cell, fold cell hashes into the row hash, fold the row hash into the
/// table hash — O(1) digest state, O(row) memory.
///
/// ```
/// use tep_core::streaming::StreamingTableHasher;
/// use tep_crypto::HashAlgorithm;
/// use tep_model::{ObjectId, Value};
///
/// let mut t = StreamingTableHasher::new(HashAlgorithm::Sha1, ObjectId(1), &Value::text("Title"));
/// for i in 0..1000u64 {
///     let base = 2 + i * 3;
///     t.add_row(
///         ObjectId(base),
///         &Value::Null,
///         &[
///             (ObjectId(base + 1), Value::Int(i as i64)),
///             (ObjectId(base + 2), Value::text(format!("doc {i}"))),
///         ],
///     ).unwrap();
/// }
/// let (hash, nodes) = t.finish();
/// assert_eq!(nodes, 1 + 1000 * 3);
/// assert_eq!(hash.len(), 20); // SHA-1
/// ```
pub struct StreamingTableHasher {
    alg: HashAlgorithm,
    table: StreamingNodeHasher,
    /// Total nodes hashed (table itself counted at finish).
    nodes: u64,
}

impl StreamingTableHasher {
    /// Starts a table node `(id, value)`.
    pub fn new(alg: HashAlgorithm, table_id: ObjectId, table_value: &Value) -> Self {
        StreamingTableHasher {
            alg,
            table: StreamingNodeHasher::new(alg, table_id, table_value),
            nodes: 0,
        }
    }

    /// Hashes one row (with its cells) and folds it into the table hash.
    ///
    /// Cells must be in increasing id order, and the row id must exceed all
    /// previously added row ids.
    pub fn add_row(
        &mut self,
        row_id: ObjectId,
        row_value: &Value,
        cells: &[(ObjectId, Value)],
    ) -> Result<(), StreamError> {
        let mut row = StreamingNodeHasher::new(self.alg, row_id, row_value);
        for (cell_id, cell_value) in cells {
            let ch = leaf_hash(self.alg, *cell_id, cell_value);
            row.add_child(*cell_id, &ch)?;
            self.nodes += 1;
        }
        let row_hash = row.finish();
        self.nodes += 1;
        self.table.add_child(row_id, &row_hash)
    }

    /// Rows folded so far.
    pub fn row_count(&self) -> u64 {
        self.table.child_count()
    }

    /// Finishes: `(table hash, total nodes hashed including the table)`.
    pub fn finish(self) -> (Vec<u8>, u64) {
        (self.table.finish(), self.nodes + 1)
    }
}

/// Streams a whole database: fold table hashes into the root, then roots
/// into the forest hash.
pub struct StreamingDatabaseHasher {
    root: StreamingNodeHasher,
    nodes: u64,
}

impl StreamingDatabaseHasher {
    /// Starts the database root node.
    pub fn new(alg: HashAlgorithm, root_id: ObjectId, root_value: &Value) -> Self {
        StreamingDatabaseHasher {
            root: StreamingNodeHasher::new(alg, root_id, root_value),
            nodes: 0,
        }
    }

    /// Folds in one finished table.
    pub fn add_table(
        &mut self,
        table_id: ObjectId,
        table_hash: &[u8],
        table_nodes: u64,
    ) -> Result<(), StreamError> {
        self.nodes += table_nodes;
        self.root.add_child(table_id, table_hash)
    }

    /// Finishes: `(database hash, total nodes including the root)`.
    pub fn finish(self) -> (Vec<u8>, u64) {
        (self.root.finish(), self.nodes + 1)
    }
}

/// Recomputes a canonical subtree hash from a **depth-tagged DFS preorder**
/// stream of `(depth, id, value)` entries — the shape `tep-net` DATA frames
/// carry, and the natural order a sender produces by walking its forest.
///
/// The hasher keeps one [`StreamingNodeHasher`] per level of the current
/// root-to-leaf path, so memory is O(tree depth), never O(tree size). An
/// entry at depth `d` first folds every open node deeper than `d` into its
/// parent, then opens a new node as a child of the node at depth `d - 1`.
/// Sibling order is enforced by [`StreamingNodeHasher::add_child`], so a
/// reordered or duplicated stream fails instead of hashing to something
/// unexpected.
///
/// The result is bit-identical to [`crate::hashing::subtree_hash`] over the
/// equivalent in-memory forest.
pub struct DepthStreamHasher {
    alg: HashAlgorithm,
    /// Open nodes along the current path, outermost (depth 0) first.
    stack: Vec<(ObjectId, StreamingNodeHasher)>,
    nodes: u64,
    /// Set once the depth-0 node has been fully folded.
    root_hash: Option<Vec<u8>>,
}

impl DepthStreamHasher {
    /// A fresh hasher expecting the root entry at depth 0 first.
    pub fn new(alg: HashAlgorithm) -> Self {
        DepthStreamHasher {
            alg,
            stack: Vec::new(),
            nodes: 0,
            root_hash: None,
        }
    }

    /// Feeds the next preorder entry.
    pub fn push(&mut self, depth: usize, id: ObjectId, value: &Value) -> Result<(), StreamError> {
        if depth > self.stack.len() {
            return Err(StreamError::DepthSkipped {
                got: depth,
                max: self.stack.len(),
            });
        }
        while self.stack.len() > depth {
            self.fold_top()?;
        }
        if self.root_hash.is_some() {
            return Err(StreamError::MultipleRoots);
        }
        self.stack
            .push((id, StreamingNodeHasher::new(self.alg, id, value)));
        Ok(())
    }

    /// Entries consumed so far.
    pub fn node_count(&self) -> u64 {
        self.nodes + self.stack.len() as u64
    }

    /// Folds remaining open nodes and returns `(subtree hash, node count)`.
    pub fn finish(mut self) -> Result<(Vec<u8>, u64), StreamError> {
        while !self.stack.is_empty() {
            self.fold_top()?;
        }
        match self.root_hash {
            Some(h) => Ok((h, self.nodes)),
            None => Err(StreamError::EmptyStream),
        }
    }

    fn fold_top(&mut self) -> Result<(), StreamError> {
        let (id, hasher) = self.stack.pop().expect("fold_top on empty stack");
        let hash = hasher.finish();
        self.nodes += 1;
        match self.stack.last_mut() {
            Some((_, parent)) => parent.add_child(id, &hash),
            None => {
                self.root_hash = Some(hash);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::subtree_hash;
    use tep_model::{relational, Forest};

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    #[test]
    fn leaf_hash_matches_forest() {
        let mut f = Forest::new();
        let a = f.insert(Value::Int(7), None).unwrap();
        assert_eq!(leaf_hash(ALG, a, &Value::Int(7)), subtree_hash(ALG, &f, a));
    }

    #[test]
    fn streamed_table_matches_in_memory_forest() {
        // Build in memory.
        let mut f = Forest::new();
        let root = relational::create_root(&mut f, "db");
        let th = relational::build_table(&mut f, root, "title", 20, 2, |r, a| {
            if a == 0 {
                Value::Int(r as i64)
            } else {
                Value::text(format!("doc title {r}"))
            }
        })
        .unwrap();
        let expected = subtree_hash(ALG, &f, th.id);

        // Stream the identical structure.
        let mut stream = StreamingTableHasher::new(ALG, th.id, &Value::text("title"));
        for (r, row) in th.rows.iter().enumerate() {
            let cells: Vec<(ObjectId, Value)> = row
                .cells
                .iter()
                .enumerate()
                .map(|(a, &cid)| {
                    let v = if a == 0 {
                        Value::Int(r as i64)
                    } else {
                        Value::text(format!("doc title {r}"))
                    };
                    (cid, v)
                })
                .collect();
            stream.add_row(row.id, &Value::Null, &cells).unwrap();
        }
        let (hash, nodes) = stream.finish();
        assert_eq!(hash, expected);
        assert_eq!(nodes, 1 + 20 + 40); // table + rows + cells
    }

    #[test]
    fn streamed_database_matches_forest() {
        let mut f = Forest::new();
        let root = relational::create_root(&mut f, "db");
        let t1 = relational::build_table(&mut f, root, "t1", 5, 3, |r, a| {
            Value::Int((r * 10 + a) as i64)
        })
        .unwrap();
        let t2 = relational::build_table(&mut f, root, "t2", 4, 2, |r, a| {
            Value::Int((r * 100 + a) as i64)
        })
        .unwrap();
        let expected = subtree_hash(ALG, &f, root);

        let mut db = StreamingDatabaseHasher::new(ALG, root, &Value::text("db"));
        for (th, name, rows, attrs, mult) in
            [(&t1, "t1", 5usize, 3usize, 10i64), (&t2, "t2", 4, 2, 100)]
        {
            let mut st = StreamingTableHasher::new(ALG, th.id, &Value::text(name));
            for (r, row) in th.rows.iter().enumerate() {
                let cells: Vec<(ObjectId, Value)> = row
                    .cells
                    .iter()
                    .enumerate()
                    .map(|(a, &cid)| (cid, Value::Int(r as i64 * mult + a as i64)))
                    .collect();
                st.add_row(row.id, &Value::Null, &cells).unwrap();
            }
            let (h, n) = st.finish();
            db.add_table(th.id, &h, n).unwrap();
            let _ = (rows, attrs);
        }
        let (hash, nodes) = db.finish();
        assert_eq!(hash, expected);
        assert_eq!(nodes as usize, f.len());
    }

    #[test]
    fn out_of_order_children_rejected() {
        let mut n = StreamingNodeHasher::new(ALG, ObjectId(0), &Value::Null);
        n.add_child(ObjectId(5), &[0u8; 32]).unwrap();
        assert_eq!(
            n.add_child(ObjectId(5), &[0u8; 32]),
            Err(StreamError::OutOfOrderChild {
                prev: ObjectId(5),
                next: ObjectId(5)
            })
        );
        assert!(n.add_child(ObjectId(3), &[0u8; 32]).is_err());
        assert!(n.add_child(ObjectId(6), &[0u8; 32]).is_ok());
    }

    /// Depth-tagged DFS preorder walk of `root`'s subtree, as a sender
    /// (or the `tep-net` DATA encoder) would emit it.
    fn preorder(f: &Forest, root: ObjectId) -> Vec<(usize, ObjectId, Value)> {
        let mut out = Vec::new();
        let mut work = vec![(0usize, root)];
        while let Some((depth, id)) = work.pop() {
            let node = f.node(id).expect("node exists");
            out.push((depth, id, node.value().clone()));
            // Children are in increasing-id order; push reversed so the
            // smallest id is visited first.
            let kids: Vec<ObjectId> = node.children().collect();
            for &c in kids.iter().rev() {
                work.push((depth + 1, c));
            }
        }
        out
    }

    #[test]
    fn depth_stream_matches_subtree_hash() {
        let mut f = Forest::new();
        let root = relational::create_root(&mut f, "db");
        relational::build_table(&mut f, root, "title", 7, 3, |r, a| {
            Value::text(format!("cell {r}/{a}"))
        })
        .unwrap();
        relational::build_table(&mut f, root, "cast", 4, 2, |r, a| {
            Value::Int((r + a) as i64)
        })
        .unwrap();

        let first_table = f
            .node(root)
            .unwrap()
            .children()
            .next()
            .expect("root has tables");
        for target in [root, first_table] {
            let mut h = DepthStreamHasher::new(ALG);
            let entries = preorder(&f, target);
            for (d, id, v) in &entries {
                h.push(*d, *id, v).unwrap();
            }
            assert_eq!(h.node_count(), entries.len() as u64);
            let (hash, nodes) = h.finish().unwrap();
            assert_eq!(hash, subtree_hash(ALG, &f, target));
            assert_eq!(nodes, entries.len() as u64);
        }
    }

    #[test]
    fn depth_stream_single_leaf() {
        let mut f = Forest::new();
        let a = f.insert(Value::Int(42), None).unwrap();
        let mut h = DepthStreamHasher::new(ALG);
        h.push(0, a, &Value::Int(42)).unwrap();
        let (hash, nodes) = h.finish().unwrap();
        assert_eq!(hash, subtree_hash(ALG, &f, a));
        assert_eq!(nodes, 1);
    }

    #[test]
    fn depth_stream_rejects_malformed_streams() {
        // Skipped level: root at 0, then an entry claiming depth 2.
        let mut h = DepthStreamHasher::new(ALG);
        h.push(0, ObjectId(0), &Value::Null).unwrap();
        assert_eq!(
            h.push(2, ObjectId(1), &Value::Null),
            Err(StreamError::DepthSkipped { got: 2, max: 1 })
        );

        // First entry must be the root.
        let mut h = DepthStreamHasher::new(ALG);
        assert_eq!(
            h.push(1, ObjectId(0), &Value::Null),
            Err(StreamError::DepthSkipped { got: 1, max: 0 })
        );

        // Two depth-0 entries: a second root is not a subtree.
        let mut h = DepthStreamHasher::new(ALG);
        h.push(0, ObjectId(0), &Value::Null).unwrap();
        assert_eq!(
            h.push(0, ObjectId(1), &Value::Null),
            Err(StreamError::MultipleRoots)
        );

        // Out-of-order siblings propagate the node hasher's error.
        let mut h = DepthStreamHasher::new(ALG);
        h.push(0, ObjectId(0), &Value::Null).unwrap();
        h.push(1, ObjectId(5), &Value::Null).unwrap();
        h.push(1, ObjectId(3), &Value::Null).unwrap();
        assert!(matches!(
            h.finish(),
            Err(StreamError::OutOfOrderChild { .. })
        ));

        // Empty stream has no hash.
        assert_eq!(
            DepthStreamHasher::new(ALG).finish(),
            Err(StreamError::EmptyStream)
        );
    }

    #[test]
    fn empty_table_hash_is_defined() {
        let mut f = Forest::new();
        let t = f.insert(Value::text("empty"), None).unwrap();
        let stream = StreamingTableHasher::new(ALG, t, &Value::text("empty"));
        let (hash, nodes) = stream.finish();
        assert_eq!(hash, subtree_hash(ALG, &f, t));
        assert_eq!(nodes, 1);
    }
}
