//! Streaming compound hashing for larger-than-memory databases (§5.2).
//!
//! The paper: *"we can read one row at a time, hashing the row and the
//! cells in it, and updating the table's hash value with the row's hash
//! value. When all rows are read and hashed, we get the final hash value of
//! the table"* — demonstrated there on an 18.9-million-row `Title` table
//! (56,886,125 nodes).
//!
//! The canonical compound hash (`h(prefix(A) ‖ h(c₁) ‖ … ‖ h(c_k) ‖ k)`)
//! folds children incrementally, so these hashers produce **bit-identical**
//! results to [`crate::hashing::subtree_hash`] over an equivalent in-memory
//! forest while holding only one root-to-leaf path of digest states.

use tep_crypto::digest::{HashAlgorithm, Hasher};
use tep_crypto::pki::ParticipantId;
use tep_model::encode::{node_prefix, DecodeError, Reader};
use tep_model::{ObjectId, Value};

/// Error from streaming construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Children must be appended in strictly increasing `ObjectId` order to
    /// match the canonical child ordering.
    OutOfOrderChild {
        /// Previously appended child.
        prev: ObjectId,
        /// The offending child.
        next: ObjectId,
    },
    /// A depth-tagged entry skipped a tree level (its depth exceeds the
    /// current path length).
    DepthSkipped {
        /// The entry's claimed depth.
        got: usize,
        /// Deepest admissible depth at this point.
        max: usize,
    },
    /// A second root-level entry arrived after the first root completed.
    MultipleRoots,
    /// The stream ended with no entries at all.
    EmptyStream,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::OutOfOrderChild { prev, next } => write!(
                f,
                "children must arrive in increasing id order: {next} after {prev}"
            ),
            StreamError::DepthSkipped { got, max } => {
                write!(f, "entry depth {got} skips a level (max admissible {max})")
            }
            StreamError::MultipleRoots => write!(f, "more than one depth-0 entry in the stream"),
            StreamError::EmptyStream => write!(f, "subtree stream carried no entries"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Incrementally computes `h(subtree(A))` for one node whose children are
/// supplied as already-computed hashes, in `ObjectId` order.
pub struct StreamingNodeHasher {
    hasher: Hasher,
    child_count: u64,
    last_child: Option<ObjectId>,
}

impl StreamingNodeHasher {
    /// Starts hashing node `(id, value)`.
    pub fn new(alg: HashAlgorithm, id: ObjectId, value: &Value) -> Self {
        let mut hasher = alg.hasher();
        hasher.update(&node_prefix(id, value));
        StreamingNodeHasher {
            hasher,
            child_count: 0,
            last_child: None,
        }
    }

    /// Folds in the next child's subtree hash.
    pub fn add_child(&mut self, child: ObjectId, hash: &[u8]) -> Result<(), StreamError> {
        if let Some(prev) = self.last_child {
            if child <= prev {
                return Err(StreamError::OutOfOrderChild { prev, next: child });
            }
        }
        self.hasher.update(hash);
        self.child_count += 1;
        self.last_child = Some(child);
        Ok(())
    }

    /// Number of children folded so far.
    pub fn child_count(&self) -> u64 {
        self.child_count
    }

    /// Finishes: returns `h(subtree)` for this node.
    pub fn finish(mut self) -> Vec<u8> {
        self.hasher.update(&self.child_count.to_be_bytes());
        self.hasher.finalize()
    }
}

/// Hash of a leaf node (no children).
pub fn leaf_hash(alg: HashAlgorithm, id: ObjectId, value: &Value) -> Vec<u8> {
    StreamingNodeHasher::new(alg, id, value).finish()
}

/// Streams a whole table (table → rows → cells) one row at a time.
///
/// This is exactly the paper's large-database procedure: per row, hash each
/// cell, fold cell hashes into the row hash, fold the row hash into the
/// table hash — O(1) digest state, O(row) memory.
///
/// ```
/// use tep_core::streaming::StreamingTableHasher;
/// use tep_crypto::HashAlgorithm;
/// use tep_model::{ObjectId, Value};
///
/// let mut t = StreamingTableHasher::new(HashAlgorithm::Sha1, ObjectId(1), &Value::text("Title"));
/// for i in 0..1000u64 {
///     let base = 2 + i * 3;
///     t.add_row(
///         ObjectId(base),
///         &Value::Null,
///         &[
///             (ObjectId(base + 1), Value::Int(i as i64)),
///             (ObjectId(base + 2), Value::text(format!("doc {i}"))),
///         ],
///     ).unwrap();
/// }
/// let (hash, nodes) = t.finish();
/// assert_eq!(nodes, 1 + 1000 * 3);
/// assert_eq!(hash.len(), 20); // SHA-1
/// ```
pub struct StreamingTableHasher {
    alg: HashAlgorithm,
    table: StreamingNodeHasher,
    /// Total nodes hashed (table itself counted at finish).
    nodes: u64,
}

impl StreamingTableHasher {
    /// Starts a table node `(id, value)`.
    pub fn new(alg: HashAlgorithm, table_id: ObjectId, table_value: &Value) -> Self {
        StreamingTableHasher {
            alg,
            table: StreamingNodeHasher::new(alg, table_id, table_value),
            nodes: 0,
        }
    }

    /// Hashes one row (with its cells) and folds it into the table hash.
    ///
    /// Cells must be in increasing id order, and the row id must exceed all
    /// previously added row ids.
    pub fn add_row(
        &mut self,
        row_id: ObjectId,
        row_value: &Value,
        cells: &[(ObjectId, Value)],
    ) -> Result<(), StreamError> {
        let mut row = StreamingNodeHasher::new(self.alg, row_id, row_value);
        for (cell_id, cell_value) in cells {
            let ch = leaf_hash(self.alg, *cell_id, cell_value);
            row.add_child(*cell_id, &ch)?;
            self.nodes += 1;
        }
        let row_hash = row.finish();
        self.nodes += 1;
        self.table.add_child(row_id, &row_hash)
    }

    /// Rows folded so far.
    pub fn row_count(&self) -> u64 {
        self.table.child_count()
    }

    /// Finishes: `(table hash, total nodes hashed including the table)`.
    pub fn finish(self) -> (Vec<u8>, u64) {
        (self.table.finish(), self.nodes + 1)
    }
}

/// Streams a whole database: fold table hashes into the root, then roots
/// into the forest hash.
pub struct StreamingDatabaseHasher {
    root: StreamingNodeHasher,
    nodes: u64,
}

impl StreamingDatabaseHasher {
    /// Starts the database root node.
    pub fn new(alg: HashAlgorithm, root_id: ObjectId, root_value: &Value) -> Self {
        StreamingDatabaseHasher {
            root: StreamingNodeHasher::new(alg, root_id, root_value),
            nodes: 0,
        }
    }

    /// Folds in one finished table.
    pub fn add_table(
        &mut self,
        table_id: ObjectId,
        table_hash: &[u8],
        table_nodes: u64,
    ) -> Result<(), StreamError> {
        self.nodes += table_nodes;
        self.root.add_child(table_id, table_hash)
    }

    /// Finishes: `(database hash, total nodes including the root)`.
    pub fn finish(self) -> (Vec<u8>, u64) {
        (self.root.finish(), self.nodes + 1)
    }
}

/// Recomputes a canonical subtree hash from a **depth-tagged DFS preorder**
/// stream of `(depth, id, value)` entries — the shape `tep-net` DATA frames
/// carry, and the natural order a sender produces by walking its forest.
///
/// The hasher keeps one [`StreamingNodeHasher`] per level of the current
/// root-to-leaf path, so memory is O(tree depth), never O(tree size). An
/// entry at depth `d` first folds every open node deeper than `d` into its
/// parent, then opens a new node as a child of the node at depth `d - 1`.
/// Sibling order is enforced by [`StreamingNodeHasher::add_child`], so a
/// reordered or duplicated stream fails instead of hashing to something
/// unexpected.
///
/// The result is bit-identical to [`crate::hashing::subtree_hash`] over the
/// equivalent in-memory forest.
pub struct DepthStreamHasher {
    alg: HashAlgorithm,
    /// Open nodes along the current path, outermost (depth 0) first.
    stack: Vec<(ObjectId, StreamingNodeHasher)>,
    nodes: u64,
    /// Set once the depth-0 node has been fully folded.
    root_hash: Option<Vec<u8>>,
}

impl DepthStreamHasher {
    /// A fresh hasher expecting the root entry at depth 0 first.
    pub fn new(alg: HashAlgorithm) -> Self {
        DepthStreamHasher {
            alg,
            stack: Vec::new(),
            nodes: 0,
            root_hash: None,
        }
    }

    /// Feeds the next preorder entry.
    pub fn push(&mut self, depth: usize, id: ObjectId, value: &Value) -> Result<(), StreamError> {
        if depth > self.stack.len() {
            return Err(StreamError::DepthSkipped {
                got: depth,
                max: self.stack.len(),
            });
        }
        while self.stack.len() > depth {
            self.fold_top()?;
        }
        if self.root_hash.is_some() {
            return Err(StreamError::MultipleRoots);
        }
        self.stack
            .push((id, StreamingNodeHasher::new(self.alg, id, value)));
        Ok(())
    }

    /// Entries consumed so far.
    pub fn node_count(&self) -> u64 {
        self.nodes + self.stack.len() as u64
    }

    /// Folds remaining open nodes and returns `(subtree hash, node count)`.
    pub fn finish(mut self) -> Result<(Vec<u8>, u64), StreamError> {
        while !self.stack.is_empty() {
            self.fold_top()?;
        }
        match self.root_hash {
            Some(h) => Ok((h, self.nodes)),
            None => Err(StreamError::EmptyStream),
        }
    }

    fn fold_top(&mut self) -> Result<(), StreamError> {
        let (id, hasher) = self.stack.pop().expect("fold_top on empty stack");
        let hash = hasher.finish();
        self.nodes += 1;
        match self.stack.last_mut() {
            Some((_, parent)) => parent.add_child(id, &hash),
            None => {
                self.root_hash = Some(hash);
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Resumable-transfer checkpoints
// ---------------------------------------------------------------------------

/// Magic bytes opening every sealed verifier checkpoint (family + version).
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"TEPCKPT\x01";

/// Domain-separation tag for the rolling record-stream digest.
const STREAM_DIGEST_TAG: &[u8] = b"tep-resume-stream\x01";

/// Rolling digest over the canonical byte encodings of a record stream:
/// `d₀ = h(tag ‖ alg ‖ target)`, `dᵢ₊₁ = h(dᵢ ‖ record_bytes)`.
///
/// Both ends of a resumable transfer compute this independently over the
/// records they have sent/accepted, so a RESUME handshake can prove — not
/// merely claim — that the first `k` records of both histories are
/// byte-identical. Chaining through the previous state makes the digest
/// position-dependent: reordered, dropped, or substituted records change
/// every subsequent state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordStreamDigest {
    alg: HashAlgorithm,
    state: Vec<u8>,
}

impl RecordStreamDigest {
    /// The digest of an empty stream for `target`.
    pub fn new(alg: HashAlgorithm, target: ObjectId) -> Self {
        let mut h = alg.hasher();
        h.update(STREAM_DIGEST_TAG);
        h.update(&[alg.wire_id()]);
        h.update(&target.raw().to_be_bytes());
        RecordStreamDigest {
            alg,
            state: h.finalize(),
        }
    }

    /// Rebuilds a digest from a previously observed `state` (e.g. out of a
    /// sealed checkpoint). The state is trusted only as far as the
    /// checkpoint's own authentication; a wrong state simply fails to match
    /// the peer's recomputation.
    pub fn resume(alg: HashAlgorithm, state: Vec<u8>) -> Self {
        RecordStreamDigest { alg, state }
    }

    /// Folds the next record's canonical bytes into the digest.
    pub fn push(&mut self, record_bytes: &[u8]) {
        let mut h = self.alg.hasher();
        h.update(&self.state);
        h.update(record_bytes);
        self.state = h.finalize();
    }

    /// The current digest state.
    pub fn current(&self) -> &[u8] {
        &self.state
    }
}

/// Why a sealed checkpoint blob was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The blob names a hash algorithm this build does not know.
    UnknownAlgorithm(u8),
    /// The self-authenticating trailer digest does not match the body —
    /// the blob was corrupted or tampered with.
    BadSeal,
    /// The body failed structural decoding.
    Malformed(DecodeError),
    /// The body decoded but its fields contradict each other.
    Inconsistent(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a verifier checkpoint (bad magic)"),
            CheckpointError::UnknownAlgorithm(id) => {
                write!(f, "checkpoint names unknown hash algorithm 0x{id:02x}")
            }
            CheckpointError::BadSeal => {
                write!(f, "checkpoint seal digest mismatch (corrupt or tampered)")
            }
            CheckpointError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::Inconsistent(why) => write!(f, "inconsistent checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<DecodeError> for CheckpointError {
    fn from(e: DecodeError) -> Self {
        CheckpointError::Malformed(e)
    }
}

/// A record slot `(oid, seq_id)` — the key every per-record table in a
/// checkpoint (and in the verifier it restores) is indexed by.
pub type RecordSlot = (ObjectId, u64);

/// The full resumable state of a
/// [`StreamingVerifier`](crate::verify::StreamingVerifier), with a
/// **self-authenticating** byte encoding: [`seal`](Self::seal) appends a
/// digest of everything before it, and [`open`](Self::open) refuses blobs
/// whose trailer does not match. A checkpoint restored from a sealed blob
/// is therefore exactly the state that was saved — a flipped bit anywhere
/// (including in the trailer itself) surfaces as
/// [`CheckpointError::BadSeal`], never as a silently different verifier.
///
/// The encoding is deterministic (maps are serialized in sorted key order)
/// so equal states seal to identical bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifierCheckpoint {
    /// Hash algorithm of the verification session.
    pub alg: HashAlgorithm,
    /// The object whose history is being verified.
    pub target: ObjectId,
    /// Records accepted so far (all clean — checkpoints of tampered
    /// sessions do not exist; evidence is never resumed past).
    pub records: u64,
    /// State of the rolling [`RecordStreamDigest`] after `records` records.
    pub stream_digest: Vec<u8>,
    /// `(seq_id, output_hash)` of the newest target record seen, if any.
    pub latest_target: Option<(u64, Vec<u8>)>,
    /// Participants seen, ascending.
    pub participants: Vec<ParticipantId>,
    /// Highest sequence id per object chain, sorted by object.
    pub chain_tail: Vec<RecordSlot>,
    /// Push order of accepted record slots.
    pub order: Vec<RecordSlot>,
    /// Checksum of every accepted record, sorted by `(oid, seq)`.
    pub checksums: Vec<(RecordSlot, Vec<u8>)>,
    /// Predecessor edges per record slot, sorted by `(oid, seq)`.
    pub edges: Vec<(RecordSlot, Vec<RecordSlot>)>,
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u64).to_be_bytes());
    out.extend_from_slice(b);
}

fn put_key(out: &mut Vec<u8>, key: (ObjectId, u64)) {
    out.extend_from_slice(&key.0.raw().to_be_bytes());
    out.extend_from_slice(&key.1.to_be_bytes());
}

fn read_key(r: &mut Reader<'_>) -> Result<(ObjectId, u64), DecodeError> {
    Ok((ObjectId(r.u64()?), r.u64()?))
}

impl VerifierCheckpoint {
    /// Serializes and seals the checkpoint: `magic ‖ body ‖ digest(magic ‖ body)`.
    pub fn seal(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.checksums.len() * 64);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.push(self.alg.wire_id());
        out.extend_from_slice(&self.target.raw().to_be_bytes());
        out.extend_from_slice(&self.records.to_be_bytes());
        put_bytes(&mut out, &self.stream_digest);
        match &self.latest_target {
            None => out.push(0),
            Some((seq, hash)) => {
                out.push(1);
                out.extend_from_slice(&seq.to_be_bytes());
                put_bytes(&mut out, hash);
            }
        }
        out.extend_from_slice(&(self.participants.len() as u32).to_be_bytes());
        for p in &self.participants {
            out.extend_from_slice(&p.0.to_be_bytes());
        }
        out.extend_from_slice(&(self.chain_tail.len() as u32).to_be_bytes());
        for &(oid, seq) in &self.chain_tail {
            put_key(&mut out, (oid, seq));
        }
        out.extend_from_slice(&(self.order.len() as u32).to_be_bytes());
        for &key in &self.order {
            put_key(&mut out, key);
        }
        out.extend_from_slice(&(self.checksums.len() as u32).to_be_bytes());
        for (key, checksum) in &self.checksums {
            put_key(&mut out, *key);
            put_bytes(&mut out, checksum);
        }
        out.extend_from_slice(&(self.edges.len() as u32).to_be_bytes());
        for (key, preds) in &self.edges {
            put_key(&mut out, *key);
            out.extend_from_slice(&(preds.len() as u32).to_be_bytes());
            for &p in preds {
                put_key(&mut out, p);
            }
        }
        let seal = self.alg.digest(&out);
        put_bytes(&mut out, &seal);
        out
    }

    /// Parses and authenticates a sealed blob. Every failure mode —
    /// truncation, bit flips, trailing garbage, internal contradictions —
    /// is an error; no partially trusted checkpoint is ever returned.
    pub fn open(blob: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::new(blob);
        let magic: [u8; 8] = r.array()?;
        if magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let alg_id = r.u8()?;
        let alg =
            HashAlgorithm::from_wire_id(alg_id).ok_or(CheckpointError::UnknownAlgorithm(alg_id))?;
        let target = ObjectId(r.u64()?);
        let records = r.u64()?;
        let stream_digest = r.len_prefixed()?.to_vec();
        let latest_target = match r.u8()? {
            0 => None,
            1 => {
                let seq = r.u64()?;
                let hash = r.len_prefixed()?.to_vec();
                Some((seq, hash))
            }
            _ => return Err(CheckpointError::Inconsistent("bad latest-target tag")),
        };
        let n = r.u32()? as usize;
        let mut participants = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
        for _ in 0..n {
            participants.push(ParticipantId(r.u64()?));
        }
        let n = r.u32()? as usize;
        let mut chain_tail = Vec::with_capacity(n.min(r.remaining() / 16 + 1));
        for _ in 0..n {
            chain_tail.push(read_key(&mut r)?);
        }
        let n = r.u32()? as usize;
        let mut order = Vec::with_capacity(n.min(r.remaining() / 16 + 1));
        for _ in 0..n {
            order.push(read_key(&mut r)?);
        }
        let n = r.u32()? as usize;
        let mut checksums = Vec::with_capacity(n.min(r.remaining() / 24 + 1));
        for _ in 0..n {
            let key = read_key(&mut r)?;
            checksums.push((key, r.len_prefixed()?.to_vec()));
        }
        let n = r.u32()? as usize;
        let mut edges = Vec::with_capacity(n.min(r.remaining() / 20 + 1));
        for _ in 0..n {
            let key = read_key(&mut r)?;
            let m = r.u32()? as usize;
            let mut preds = Vec::with_capacity(m.min(r.remaining() / 16 + 1));
            for _ in 0..m {
                preds.push(read_key(&mut r)?);
            }
            edges.push((key, preds));
        }

        // Authenticate: the trailer must be the digest of everything
        // before it.
        let body_len = blob.len() - r.remaining();
        let seal = r.len_prefixed()?;
        r.expect_end()?;
        if seal != alg.digest(&blob[..body_len]) {
            return Err(CheckpointError::BadSeal);
        }

        let cp = VerifierCheckpoint {
            alg,
            target,
            records,
            stream_digest,
            latest_target,
            participants,
            chain_tail,
            order,
            checksums,
            edges,
        };
        cp.check_consistency()?;
        Ok(cp)
    }

    fn check_consistency(&self) -> Result<(), CheckpointError> {
        if self.records != self.order.len() as u64 {
            return Err(CheckpointError::Inconsistent(
                "record count disagrees with push order",
            ));
        }
        if self.checksums.len() > self.order.len() || self.edges.len() != self.checksums.len() {
            return Err(CheckpointError::Inconsistent(
                "checksum/edge tables disagree with push order",
            ));
        }
        if !self.checksums.windows(2).all(|w| w[0].0 < w[1].0)
            || !self.edges.windows(2).all(|w| w[0].0 < w[1].0)
        {
            return Err(CheckpointError::Inconsistent(
                "map entries must be strictly sorted",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::subtree_hash;
    use tep_model::{relational, Forest};

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    #[test]
    fn leaf_hash_matches_forest() {
        let mut f = Forest::new();
        let a = f.insert(Value::Int(7), None).unwrap();
        assert_eq!(leaf_hash(ALG, a, &Value::Int(7)), subtree_hash(ALG, &f, a));
    }

    #[test]
    fn streamed_table_matches_in_memory_forest() {
        // Build in memory.
        let mut f = Forest::new();
        let root = relational::create_root(&mut f, "db");
        let th = relational::build_table(&mut f, root, "title", 20, 2, |r, a| {
            if a == 0 {
                Value::Int(r as i64)
            } else {
                Value::text(format!("doc title {r}"))
            }
        })
        .unwrap();
        let expected = subtree_hash(ALG, &f, th.id);

        // Stream the identical structure.
        let mut stream = StreamingTableHasher::new(ALG, th.id, &Value::text("title"));
        for (r, row) in th.rows.iter().enumerate() {
            let cells: Vec<(ObjectId, Value)> = row
                .cells
                .iter()
                .enumerate()
                .map(|(a, &cid)| {
                    let v = if a == 0 {
                        Value::Int(r as i64)
                    } else {
                        Value::text(format!("doc title {r}"))
                    };
                    (cid, v)
                })
                .collect();
            stream.add_row(row.id, &Value::Null, &cells).unwrap();
        }
        let (hash, nodes) = stream.finish();
        assert_eq!(hash, expected);
        assert_eq!(nodes, 1 + 20 + 40); // table + rows + cells
    }

    #[test]
    fn streamed_database_matches_forest() {
        let mut f = Forest::new();
        let root = relational::create_root(&mut f, "db");
        let t1 = relational::build_table(&mut f, root, "t1", 5, 3, |r, a| {
            Value::Int((r * 10 + a) as i64)
        })
        .unwrap();
        let t2 = relational::build_table(&mut f, root, "t2", 4, 2, |r, a| {
            Value::Int((r * 100 + a) as i64)
        })
        .unwrap();
        let expected = subtree_hash(ALG, &f, root);

        let mut db = StreamingDatabaseHasher::new(ALG, root, &Value::text("db"));
        for (th, name, rows, attrs, mult) in
            [(&t1, "t1", 5usize, 3usize, 10i64), (&t2, "t2", 4, 2, 100)]
        {
            let mut st = StreamingTableHasher::new(ALG, th.id, &Value::text(name));
            for (r, row) in th.rows.iter().enumerate() {
                let cells: Vec<(ObjectId, Value)> = row
                    .cells
                    .iter()
                    .enumerate()
                    .map(|(a, &cid)| (cid, Value::Int(r as i64 * mult + a as i64)))
                    .collect();
                st.add_row(row.id, &Value::Null, &cells).unwrap();
            }
            let (h, n) = st.finish();
            db.add_table(th.id, &h, n).unwrap();
            let _ = (rows, attrs);
        }
        let (hash, nodes) = db.finish();
        assert_eq!(hash, expected);
        assert_eq!(nodes as usize, f.len());
    }

    #[test]
    fn out_of_order_children_rejected() {
        let mut n = StreamingNodeHasher::new(ALG, ObjectId(0), &Value::Null);
        n.add_child(ObjectId(5), &[0u8; 32]).unwrap();
        assert_eq!(
            n.add_child(ObjectId(5), &[0u8; 32]),
            Err(StreamError::OutOfOrderChild {
                prev: ObjectId(5),
                next: ObjectId(5)
            })
        );
        assert!(n.add_child(ObjectId(3), &[0u8; 32]).is_err());
        assert!(n.add_child(ObjectId(6), &[0u8; 32]).is_ok());
    }

    /// Depth-tagged DFS preorder walk of `root`'s subtree, as a sender
    /// (or the `tep-net` DATA encoder) would emit it.
    fn preorder(f: &Forest, root: ObjectId) -> Vec<(usize, ObjectId, Value)> {
        let mut out = Vec::new();
        let mut work = vec![(0usize, root)];
        while let Some((depth, id)) = work.pop() {
            let node = f.node(id).expect("node exists");
            out.push((depth, id, node.value().clone()));
            // Children are in increasing-id order; push reversed so the
            // smallest id is visited first.
            let kids: Vec<ObjectId> = node.children().collect();
            for &c in kids.iter().rev() {
                work.push((depth + 1, c));
            }
        }
        out
    }

    #[test]
    fn depth_stream_matches_subtree_hash() {
        let mut f = Forest::new();
        let root = relational::create_root(&mut f, "db");
        relational::build_table(&mut f, root, "title", 7, 3, |r, a| {
            Value::text(format!("cell {r}/{a}"))
        })
        .unwrap();
        relational::build_table(&mut f, root, "cast", 4, 2, |r, a| {
            Value::Int((r + a) as i64)
        })
        .unwrap();

        let first_table = f
            .node(root)
            .unwrap()
            .children()
            .next()
            .expect("root has tables");
        for target in [root, first_table] {
            let mut h = DepthStreamHasher::new(ALG);
            let entries = preorder(&f, target);
            for (d, id, v) in &entries {
                h.push(*d, *id, v).unwrap();
            }
            assert_eq!(h.node_count(), entries.len() as u64);
            let (hash, nodes) = h.finish().unwrap();
            assert_eq!(hash, subtree_hash(ALG, &f, target));
            assert_eq!(nodes, entries.len() as u64);
        }
    }

    #[test]
    fn depth_stream_single_leaf() {
        let mut f = Forest::new();
        let a = f.insert(Value::Int(42), None).unwrap();
        let mut h = DepthStreamHasher::new(ALG);
        h.push(0, a, &Value::Int(42)).unwrap();
        let (hash, nodes) = h.finish().unwrap();
        assert_eq!(hash, subtree_hash(ALG, &f, a));
        assert_eq!(nodes, 1);
    }

    #[test]
    fn depth_stream_rejects_malformed_streams() {
        // Skipped level: root at 0, then an entry claiming depth 2.
        let mut h = DepthStreamHasher::new(ALG);
        h.push(0, ObjectId(0), &Value::Null).unwrap();
        assert_eq!(
            h.push(2, ObjectId(1), &Value::Null),
            Err(StreamError::DepthSkipped { got: 2, max: 1 })
        );

        // First entry must be the root.
        let mut h = DepthStreamHasher::new(ALG);
        assert_eq!(
            h.push(1, ObjectId(0), &Value::Null),
            Err(StreamError::DepthSkipped { got: 1, max: 0 })
        );

        // Two depth-0 entries: a second root is not a subtree.
        let mut h = DepthStreamHasher::new(ALG);
        h.push(0, ObjectId(0), &Value::Null).unwrap();
        assert_eq!(
            h.push(0, ObjectId(1), &Value::Null),
            Err(StreamError::MultipleRoots)
        );

        // Out-of-order siblings propagate the node hasher's error.
        let mut h = DepthStreamHasher::new(ALG);
        h.push(0, ObjectId(0), &Value::Null).unwrap();
        h.push(1, ObjectId(5), &Value::Null).unwrap();
        h.push(1, ObjectId(3), &Value::Null).unwrap();
        assert!(matches!(
            h.finish(),
            Err(StreamError::OutOfOrderChild { .. })
        ));

        // Empty stream has no hash.
        assert_eq!(
            DepthStreamHasher::new(ALG).finish(),
            Err(StreamError::EmptyStream)
        );
    }

    #[test]
    fn empty_table_hash_is_defined() {
        let mut f = Forest::new();
        let t = f.insert(Value::text("empty"), None).unwrap();
        let stream = StreamingTableHasher::new(ALG, t, &Value::text("empty"));
        let (hash, nodes) = stream.finish();
        assert_eq!(hash, subtree_hash(ALG, &f, t));
        assert_eq!(nodes, 1);
    }

    fn sample_checkpoint() -> VerifierCheckpoint {
        VerifierCheckpoint {
            alg: ALG,
            target: ObjectId(7),
            records: 3,
            stream_digest: vec![0xAB; 32],
            latest_target: Some((2, vec![0xCD; 32])),
            participants: vec![ParticipantId(1), ParticipantId(4)],
            chain_tail: vec![(ObjectId(3), 1), (ObjectId(7), 2)],
            order: vec![(ObjectId(3), 0), (ObjectId(3), 1), (ObjectId(7), 2)],
            checksums: vec![
                ((ObjectId(3), 0), vec![1; 64]),
                ((ObjectId(3), 1), vec![2; 64]),
                ((ObjectId(7), 2), vec![3; 64]),
            ],
            edges: vec![
                ((ObjectId(3), 0), vec![]),
                ((ObjectId(3), 1), vec![(ObjectId(3), 0)]),
                ((ObjectId(7), 2), vec![(ObjectId(3), 1)]),
            ],
        }
    }

    #[test]
    fn checkpoint_seal_open_roundtrips() {
        let cp = sample_checkpoint();
        let blob = cp.seal();
        let back = VerifierCheckpoint::open(&blob).unwrap();
        assert_eq!(back, cp);
        // Determinism: equal states seal to identical bytes.
        assert_eq!(cp.seal(), blob);
    }

    #[test]
    fn checkpoint_rejects_every_single_bit_flip() {
        let blob = sample_checkpoint().seal();
        for byte in 0..blob.len() {
            let mut bad = blob.clone();
            bad[byte] ^= 0x01;
            assert!(
                VerifierCheckpoint::open(&bad).is_err(),
                "flipped bit in byte {byte} of {} went unnoticed",
                blob.len()
            );
        }
    }

    #[test]
    fn checkpoint_rejects_truncation_and_trailing_garbage() {
        let blob = sample_checkpoint().seal();
        for cut in 0..blob.len() {
            assert!(
                VerifierCheckpoint::open(&blob[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        let mut extended = blob.clone();
        extended.push(0);
        assert!(VerifierCheckpoint::open(&extended).is_err());
    }

    #[test]
    fn checkpoint_rejects_internal_contradictions() {
        // Re-sealed with a record count that disagrees with the order list:
        // structurally valid, correctly sealed, still refused.
        let mut cp = sample_checkpoint();
        cp.records = 99;
        assert_eq!(
            VerifierCheckpoint::open(&cp.seal()),
            Err(CheckpointError::Inconsistent(
                "record count disagrees with push order"
            ))
        );

        let mut cp = sample_checkpoint();
        cp.checksums.swap(0, 1); // unsorted map entries
        assert!(matches!(
            VerifierCheckpoint::open(&cp.seal()),
            Err(CheckpointError::Inconsistent(_))
        ));
    }

    #[test]
    fn record_stream_digest_is_position_and_content_dependent() {
        let a = b"record-a".as_slice();
        let b = b"record-b".as_slice();
        let mut ab = RecordStreamDigest::new(ALG, ObjectId(1));
        ab.push(a);
        ab.push(b);
        let mut ba = RecordStreamDigest::new(ALG, ObjectId(1));
        ba.push(b);
        ba.push(a);
        assert_ne!(ab.current(), ba.current(), "order must matter");

        let mut other_target = RecordStreamDigest::new(ALG, ObjectId(2));
        other_target.push(a);
        let mut same = RecordStreamDigest::new(ALG, ObjectId(1));
        same.push(a);
        assert_ne!(
            other_target.current(),
            same.current(),
            "target must be domain-separated"
        );

        // Resuming from a serialized state continues the same chain.
        let mut resumed = RecordStreamDigest::resume(ALG, same.current().to_vec());
        resumed.push(b);
        assert_eq!(resumed.current(), ab.current());
    }
}
