//! Cross-connection verify batching for the network path.
//!
//! The event-loop server (tep-net) multiplexes hundreds of connections on
//! one thread, and each finished transfer wants its signatures checked.
//! Calling [`Verifier::verify`] inline would serialize the crypto behind
//! the slowest caller; spawning a thread per verification would rebuild
//! the thread-per-connection server the event loop just replaced. The
//! [`VerifyBatcher`] sits between: callers [`submit`](VerifyBatcher::submit)
//! `(object hash, provenance)` jobs from any thread and immediately get a
//! [`VerifyTicket`]; a single collector thread coalesces submissions into
//! micro-batches bounded by a **size watermark** (`max_batch`) and a
//! **latency watermark** (`max_wait`), runs each batch through
//! [`Verifier::verify_all_parallel`], and answers every ticket.
//!
//! The watermarks trade latency for batch efficiency: under load the size
//! watermark dominates (full batches, maximum parallel efficiency); when
//! traffic is sparse the latency watermark bounds how long a lone job can
//! be held hostage waiting for company. Verdicts are exactly those of
//! calling [`Verifier::verify`] per job — batching changes scheduling,
//! never semantics (§3.2 per-object chaining keeps jobs independent).

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::KeyDirectory;
use tep_obs::{names, Histogram, Registry};

use crate::parallel::default_threads;
use crate::provenance::ProvenanceObject;
use crate::verify::{Verification, Verifier};

/// Watermarks and sizing for a [`VerifyBatcher`].
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Size watermark: a batch is dispatched as soon as it holds this many
    /// jobs, regardless of how recently it started filling.
    pub max_batch: usize,
    /// Latency watermark: a batch is dispatched this long after its first
    /// job arrived, regardless of how empty it is.
    pub max_wait: Duration,
    /// Worker threads `verify_all_parallel` fans each batch over.
    pub threads: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(500),
            threads: default_threads(),
        }
    }
}

struct Job {
    object_hash: Vec<u8>,
    prov: ProvenanceObject,
    reply: mpsc::Sender<Verification>,
}

/// A pending verification handed out by [`VerifyBatcher::submit`].
///
/// Redeem it with [`wait`](VerifyTicket::wait); tickets are independent,
/// so many threads can submit concurrently and block only on their own
/// verdicts.
pub struct VerifyTicket {
    rx: mpsc::Receiver<Verification>,
}

impl VerifyTicket {
    /// Blocks until the batch containing this job has been verified.
    /// Returns `None` if the batcher shut down before answering (it was
    /// dropped with jobs still queued).
    pub fn wait(self) -> Option<Verification> {
        self.rx.recv().ok()
    }

    /// Like [`wait`](Self::wait) but gives up after `timeout`.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Verification> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// A shared micro-batching front end to [`Verifier::verify_all_parallel`].
///
/// Cheap to clone ([`Arc`] internally is not needed — clone the handle by
/// wrapping in your own `Arc`); submissions are thread-safe through the
/// internal channel. Dropping the last handle joins the collector thread
/// after it drains every queued job, so no ticket is ever silently lost
/// on graceful shutdown.
pub struct VerifyBatcher {
    tx: Option<mpsc::Sender<Job>>,
    collector: Option<thread::JoinHandle<()>>,
}

impl VerifyBatcher {
    /// Spawns the collector thread. `keys` must contain every participant
    /// the submitted provenance can reference; `registry`, when given,
    /// attaches verifier obs (evidence counters, verify latency) and
    /// records each dispatched batch's size into the
    /// `tep_net_batch_verify_size` histogram.
    pub fn new(
        keys: Arc<KeyDirectory>,
        alg: HashAlgorithm,
        cfg: BatcherConfig,
        registry: Option<&Registry>,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let registry = registry.cloned();
        let collector = thread::Builder::new()
            .name("tep-verify-batcher".into())
            .spawn(move || collect_loop(rx, keys, alg, cfg, registry))
            .expect("spawn verify batcher collector");
        VerifyBatcher {
            tx: Some(tx),
            collector: Some(collector),
        }
    }

    /// Queues one `(object hash, provenance)` verification and returns its
    /// ticket. Never blocks on the crypto — only on the channel send.
    pub fn submit(&self, object_hash: Vec<u8>, prov: ProvenanceObject) -> VerifyTicket {
        let (reply, rx) = mpsc::channel();
        let job = Job {
            object_hash,
            prov,
            reply,
        };
        if let Some(tx) = &self.tx {
            // A send can only fail if the collector died (panicked); the
            // ticket then reports `None` rather than hanging.
            let _ = tx.send(job);
        }
        VerifyTicket { rx }
    }
}

impl Drop for VerifyBatcher {
    fn drop(&mut self) {
        // Closing the channel lets the collector drain and exit; joining
        // makes shutdown deterministic (every submitted ticket answered).
        drop(self.tx.take());
        if let Some(handle) = self.collector.take() {
            let _ = handle.join();
        }
    }
}

fn collect_loop(
    rx: mpsc::Receiver<Job>,
    keys: Arc<KeyDirectory>,
    alg: HashAlgorithm,
    cfg: BatcherConfig,
    registry: Option<Registry>,
) {
    let mut verifier = Verifier::new(&keys, alg);
    if let Some(reg) = &registry {
        verifier.attach_obs(reg);
    }
    let batch_sizes: Option<Histogram> = registry
        .as_ref()
        .map(|reg| reg.histogram(names::NET_BATCH_VERIFY_SIZE, &[1, 2, 4, 8, 16, 32, 64, 128]));
    let max_batch = cfg.max_batch.max(1);

    let mut disconnected = false;
    while !disconnected {
        // Sleep until the first job of the next batch arrives.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let mut jobs = vec![first];
        // Fill until a watermark trips: size (batch full) or latency
        // (max_wait since the batch opened).
        let deadline = Instant::now() + cfg.max_wait;
        while jobs.len() < max_batch {
            let now = Instant::now();
            let left = deadline.saturating_duration_since(now);
            if left.is_zero() {
                break;
            }
            match rx.recv_timeout(left) {
                Ok(job) => jobs.push(job),
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }

        if let Some(h) = &batch_sizes {
            h.observe(jobs.len() as u64);
        }
        let (pairs, replies): (Vec<_>, Vec<_>) = jobs
            .into_iter()
            .map(|j| ((j.object_hash, j.prov), j.reply))
            .unzip();
        let verdicts = verifier.verify_all_parallel(&pairs, cfg.threads);
        for (reply, verdict) in replies.into_iter().zip(verdicts) {
            // A caller that dropped its ticket just doesn't hear back.
            let _ = reply.send(verdict);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::collect;
    use crate::tracker::{ProvenanceTracker, TrackerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tep_crypto::pki::{CertificateAuthority, ParticipantId};
    use tep_model::Value;
    use tep_storage::ProvenanceDb;

    struct World {
        keys: Arc<KeyDirectory>,
        jobs: Vec<(Vec<u8>, ProvenanceObject)>,
    }

    fn world(objects: usize) -> World {
        let mut rng = StdRng::seed_from_u64(77);
        let ca = CertificateAuthority::new(512, HashAlgorithm::Sha256, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), HashAlgorithm::Sha256);
        keys.register(alice.certificate().clone()).unwrap();

        let db = Arc::new(ProvenanceDb::in_memory());
        let mut tracker = ProvenanceTracker::new(TrackerConfig::default(), db);
        let jobs = (0..objects)
            .map(|i| {
                let (obj, _) = tracker.insert(&alice, Value::Int(i as i64), None).unwrap();
                tracker
                    .update(&alice, obj, Value::Int(i as i64 + 1))
                    .unwrap();
                let prov = collect(tracker.db(), obj).unwrap();
                let hash = tracker.object_hash(obj).unwrap();
                (hash, prov)
            })
            .collect();
        World {
            keys: Arc::new(keys),
            jobs,
        }
    }

    #[test]
    fn batched_verdicts_match_sequential_ones() {
        let w = world(6);
        let registry = Registry::new();
        let batcher = VerifyBatcher::new(
            Arc::clone(&w.keys),
            HashAlgorithm::Sha256,
            BatcherConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(5),
                threads: 2,
            },
            Some(&registry),
        );
        let tickets: Vec<_> = w
            .jobs
            .iter()
            .map(|(hash, prov)| batcher.submit(hash.clone(), prov.clone()))
            .collect();
        let sequential = Verifier::new(&w.keys, HashAlgorithm::Sha256);
        for (ticket, (hash, prov)) in tickets.into_iter().zip(&w.jobs) {
            let batched = ticket.wait().expect("batcher answered");
            let direct = sequential.verify(hash, prov);
            assert_eq!(batched.verified(), direct.verified());
            assert_eq!(batched.records_checked, direct.records_checked);
        }
        drop(batcher);
        // Batch sizes were recorded, and every job landed in some batch.
        let sizes = registry.snapshot();
        let batch = sizes
            .iter()
            .find(|s| s.name == names::NET_BATCH_VERIFY_SIZE)
            .expect("batch size histogram registered");
        match &batch.value {
            tep_obs::MetricValue::Histogram { sum, count, .. } => {
                assert_eq!(*sum, w.jobs.len() as u64, "every job batched exactly once");
                assert!(*count >= 1);
            }
            other => panic!("unexpected metric kind: {other:?}"),
        }
    }

    #[test]
    fn tampering_is_still_detected_through_the_batcher() {
        let w = world(2);
        let batcher = VerifyBatcher::new(
            Arc::clone(&w.keys),
            HashAlgorithm::Sha256,
            BatcherConfig::default(),
            None,
        );
        let (hash, prov) = &w.jobs[0];
        let mut forged = prov.clone();
        forged.records[0].output_hash[0] ^= 1;
        let clean = batcher.submit(hash.clone(), prov.clone());
        let tampered = batcher.submit(hash.clone(), forged);
        assert!(clean.wait().unwrap().verified());
        assert!(!tampered.wait().unwrap().verified());
    }

    #[test]
    fn size_watermark_dispatches_full_batches_without_waiting() {
        let w = world(8);
        let registry = Registry::new();
        let batcher = VerifyBatcher::new(
            Arc::clone(&w.keys),
            HashAlgorithm::Sha256,
            BatcherConfig {
                max_batch: 2,
                // A latency watermark far beyond the test timeout: only the
                // size watermark can dispatch these batches.
                max_wait: Duration::from_secs(60),
                threads: 1,
            },
            Some(&registry),
        );
        let tickets: Vec<_> = w
            .jobs
            .iter()
            .map(|(hash, prov)| batcher.submit(hash.clone(), prov.clone()))
            .collect();
        for ticket in tickets {
            assert!(ticket
                .wait_timeout(Duration::from_secs(30))
                .expect("size watermark dispatched without waiting out max_wait")
                .verified());
        }
    }

    #[test]
    fn drop_drains_queued_jobs_before_joining() {
        let w = world(3);
        let batcher = VerifyBatcher::new(
            Arc::clone(&w.keys),
            HashAlgorithm::Sha256,
            BatcherConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
                threads: 1,
            },
            None,
        );
        let tickets: Vec<_> = w
            .jobs
            .iter()
            .map(|(hash, prov)| batcher.submit(hash.clone(), prov.clone()))
            .collect();
        drop(batcher); // joins the collector; all queued jobs must answer
        for ticket in tickets {
            assert!(ticket.wait().expect("drained on drop").verified());
        }
    }
}
