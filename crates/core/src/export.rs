//! Interchange export of provenance objects.
//!
//! The paper's related work points at the Open Provenance Model (its
//! ref [30]) as the emerging cross-system interchange format. This module
//! renders a [`ProvenanceObject`] in an OPM-flavored JSON structure —
//! artifacts (object versions), processes (operations), agents
//! (participants), and the *used* / *wasGeneratedBy* / *wasControlledBy* /
//! *wasDerivedFrom* dependencies — so other provenance tooling can consume
//! tamper-evident histories. Checksums travel along (hex-encoded), so a
//! consumer can round-trip back to verification evidence.
//!
//! The emitter is hand-rolled (no serialization dependency) and produces
//! deterministic, stably-ordered output.

use crate::provenance::ProvenanceObject;
use crate::record::RecordKind;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use tep_crypto::hex::to_hex;

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `prov` as OPM-flavored JSON.
///
/// Structure:
/// ```json
/// {
///   "format": "tepdb-opm/1",
///   "target": "#7",
///   "agents": ["p1", ...],
///   "artifacts": [{"id": "#7@2", "object": "#7", "seq": 2, "hash": "..."}],
///   "processes": [{
///     "id": "proc:#7@2", "kind": "update", "agent": "p1",
///     "checksum": "...", "annotation": "...",
///     "used": ["#7@1"], "generated": "#7@2"
///   }],
///   "derivations": [{"artifact": "#7@2", "derivedFrom": "#7@1"}]
/// }
/// ```
pub fn to_opm_json(prov: &ProvenanceObject) -> String {
    let mut agents: BTreeSet<String> = BTreeSet::new();
    for r in &prov.records {
        agents.insert(r.participant.to_string());
    }

    let mut out = String::new();
    out.push_str("{\n  \"format\": \"tepdb-opm/1\",\n");
    let _ = writeln!(out, "  \"target\": \"{}\",", prov.target);

    // Agents.
    out.push_str("  \"agents\": [");
    let agent_list: Vec<String> = agents.iter().map(|a| format!("\"{}\"", esc(a))).collect();
    out.push_str(&agent_list.join(", "));
    out.push_str("],\n");

    // Artifacts: every (object, seq) version a record generated, plus the
    // input versions records consumed.
    let mut artifacts: BTreeSet<(u64, u64, String)> = BTreeSet::new();
    for r in &prov.records {
        artifacts.insert((r.output_oid.raw(), r.seq_id, to_hex(&r.output_hash)));
    }
    out.push_str("  \"artifacts\": [\n");
    let artifact_rows: Vec<String> = artifacts
        .iter()
        .map(|(oid, seq, hash)| {
            format!(
                "    {{\"id\": \"#{oid}@{seq}\", \"object\": \"#{oid}\", \"seq\": {seq}, \"hash\": \"{hash}\"}}"
            )
        })
        .collect();
    out.push_str(&artifact_rows.join(",\n"));
    out.push_str("\n  ],\n");

    // Processes (one per record) with used/generated/controlled-by edges.
    out.push_str("  \"processes\": [\n");
    let mut process_rows = Vec::with_capacity(prov.records.len());
    for r in &prov.records {
        let kind = match r.kind {
            RecordKind::Insert => "insert",
            RecordKind::Update => "update",
            RecordKind::Aggregate => "aggregate",
        };
        let used: Vec<String> = r
            .inputs
            .iter()
            .map(|i| match i.prev_seq {
                Some(s) => format!("\"#{}@{}\"", i.oid.raw(), s),
                None => format!("\"#{}@pre\"", i.oid.raw()),
            })
            .collect();
        let annotation = r
            .annotation_text()
            .map(|t| format!(", \"annotation\": \"{}\"", esc(t)))
            .unwrap_or_default();
        process_rows.push(format!(
            "    {{\"id\": \"proc:#{oid}@{seq}\", \"kind\": \"{kind}\", \"agent\": \"{agent}\", \
             \"checksum\": \"{chk}\"{annotation}, \"used\": [{used}], \"generated\": \"#{oid}@{seq}\"}}",
            oid = r.output_oid.raw(),
            seq = r.seq_id,
            agent = esc(&r.participant.to_string()),
            chk = to_hex(&r.checksum),
            used = used.join(", "),
        ));
    }
    out.push_str(&process_rows.join(",\n"));
    out.push_str("\n  ],\n");

    // wasDerivedFrom: artifact-level dependencies (the DAG edges).
    out.push_str("  \"derivations\": [\n");
    let mut derivation_rows = Vec::new();
    for e in prov.edges() {
        derivation_rows.push(format!(
            "    {{\"artifact\": \"#{}@{}\", \"derivedFrom\": \"#{}@{}\"}}",
            e.from.0.raw(),
            e.from.1,
            e.to.0.raw(),
            e.to.1
        ));
    }
    out.push_str(&derivation_rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicLedger;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tep_crypto::digest::HashAlgorithm;
    use tep_crypto::pki::{CertificateAuthority, ParticipantId};
    use tep_model::Value;
    use tep_storage::ProvenanceDb;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn sample() -> ProvenanceObject {
        let mut rng = StdRng::seed_from_u64(31);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let p1 = ca.enroll(ParticipantId(1), 512, &mut rng);
        let p2 = ca.enroll(ParticipantId(2), 512, &mut rng);
        let mut ledger = AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory()));
        let a = ledger.insert(&p1, Value::Int(1)).unwrap();
        let b = ledger.insert(&p2, Value::Int(2)).unwrap();
        ledger.update(&p2, b, Value::Int(3)).unwrap();
        let c = ledger.aggregate(&p1, &[a, b], Value::Int(4)).unwrap();
        ledger.provenance_of(c).unwrap()
    }

    #[test]
    fn export_structure_is_complete() {
        let prov = sample();
        let json = to_opm_json(&prov);
        // All sections present.
        for key in [
            "\"format\"",
            "\"agents\"",
            "\"artifacts\"",
            "\"processes\"",
            "\"derivations\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        // Every record appears as a process and an artifact.
        for r in &prov.records {
            let id = format!("#{}@{}", r.output_oid.raw(), r.seq_id);
            assert!(
                json.contains(&format!("\"proc:{id}\"")),
                "missing process {id}"
            );
            assert!(
                json.contains(&format!("\"id\": \"{id}\"")),
                "missing artifact {id}"
            );
        }
        // Both agents listed.
        assert!(json.contains("\"p1\"") && json.contains("\"p2\""));
        // Aggregation shows both inputs as used.
        assert!(json.contains("\"kind\": \"aggregate\""));
        // DAG edges exported.
        assert_eq!(json.matches("\"derivedFrom\"").count(), prov.edges().len());
    }

    #[test]
    fn export_is_deterministic() {
        let prov = sample();
        assert_eq!(to_opm_json(&prov), to_opm_json(&prov));
    }

    #[test]
    fn export_is_parseable_shape() {
        // Minimal structural sanity: balanced braces/brackets, no raw
        // control characters.
        let json = to_opm_json(&sample());
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != '\n'));
    }

    #[test]
    fn escaping_handles_special_chars() {
        assert_eq!(esc("a\"b"), "a\\\"b");
        assert_eq!(esc("back\\slash"), "back\\\\slash");
        assert_eq!(esc("line\nbreak"), "line\\nbreak");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
