//! Compound-object hashing (§4.3 of the paper).
//!
//! The hash of a compound object is defined recursively, Merkle-style
//! (Fig. 5): `h(subtree(A)) = H(prefix(A) ‖ h(c₁) ‖ … ‖ h(c_k) ‖ k)` with
//! children in global `ObjectId` order. Atomic objects hash as
//! `h(A, val) = H(TAG_ATOM ‖ A ‖ val)` (§3).
//!
//! [`HashCache`] implements the two evaluation strategies the paper
//! compares in Figure 7:
//!
//! * **Basic** — re-walk the whole tree for every operation (the cache is
//!   cleared first); cost is proportional to database size regardless of
//!   how little changed.
//! * **Economical** — keep per-node hashes, invalidate only the nodes an
//!   operation dirtied (the touched node plus its root path), and recompute
//!   bottom-up reusing every clean child hash; cost tracks the size of the
//!   change.

use tep_crypto::digest::{Digest, HashAlgorithm};
use tep_model::encode::{atom_preimage, node_prefix_into};
use tep_model::idhash::IdMap;
use tep_model::{DirtyMark, Forest, ObjectId, Value};
use tep_obs::{Counter, Registry};

/// Cache instrumentation: `tep_core_cache_{hits,misses,evictions}_total`.
/// Hits count cached entries reused (at the walk root or as a clean child
/// subtree); misses count nodes actually hashed; evictions count entries
/// dropped by invalidation, dirty-log sync, or a Basic-strategy clear.
#[derive(Clone, Debug)]
struct CacheObs {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

/// Hash of an atomic object: the paper's `h(A, val)` (§3).
pub fn hash_atom(alg: HashAlgorithm, id: ObjectId, value: &Value) -> Vec<u8> {
    alg.digest(&atom_preimage(id, value))
}

/// Which hashing strategy the tracker uses (§4.3, "Economical Approach").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HashingStrategy {
    /// Re-hash the whole tree on every operation.
    Basic,
    /// Cache per-node hashes and recompute only dirtied paths.
    #[default]
    Economical,
}

/// A cache of `h(subtree(n))` for forest nodes.
///
/// Entries are inline [`Digest`] values (not `Vec<u8>`), so a warm cache of
/// `n` nodes is one flat hash map with no per-node heap allocations.
#[derive(Clone, Debug, Default)]
pub struct HashCache {
    alg: HashAlgorithm,
    hashes: IdMap<Digest>,
    /// Subtree hash computations performed since the last counter reset
    /// (one per node hashed) — the work metric behind Figure 7.
    nodes_hashed: u64,
    /// Optional tep-obs counters (hit/miss/eviction).
    obs: Option<CacheObs>,
}

impl HashCache {
    /// Creates an empty cache for `alg`.
    pub fn new(alg: HashAlgorithm) -> Self {
        HashCache {
            alg,
            hashes: IdMap::default(),
            nodes_hashed: 0,
            obs: None,
        }
    }

    /// Attaches tep-obs hit/miss/eviction counters
    /// (`tep_core_cache_*_total`).
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(CacheObs {
            hits: registry.counter("tep_core_cache_hits_total"),
            misses: registry.counter("tep_core_cache_misses_total"),
            evictions: registry.counter("tep_core_cache_evictions_total"),
        });
    }

    #[inline]
    fn count_evictions(&self, n: u64) {
        if n > 0 {
            if let Some(obs) = &self.obs {
                obs.evictions.add(n);
            }
        }
    }

    /// The configured hash algorithm.
    pub fn algorithm(&self) -> HashAlgorithm {
        self.alg
    }

    /// Cached hash for `id`, if present.
    pub fn get(&self, id: ObjectId) -> Option<&[u8]> {
        self.hashes.get(&id).map(Digest::as_slice)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Nodes hashed since the last [`Self::reset_counter`].
    pub fn nodes_hashed(&self) -> u64 {
        self.nodes_hashed
    }

    /// Resets the work counter (start of a measured phase).
    pub fn reset_counter(&mut self) {
        self.nodes_hashed = 0;
    }

    /// Drops a cached entry (the node was deleted or dirtied).
    pub fn invalidate(&mut self, id: ObjectId) {
        if self.hashes.remove(&id).is_some() {
            self.count_evictions(1);
        }
    }

    /// Dirties `id` and every ancestor — the invalidation an update/insert/
    /// delete at `id` requires.
    pub fn invalidate_path(&mut self, forest: &Forest, id: ObjectId) {
        let mut evicted = u64::from(self.hashes.remove(&id).is_some());
        let mut cur = forest.node(id).and_then(|n| n.parent());
        while let Some(p) = cur {
            evicted += u64::from(self.hashes.remove(&p).is_some());
            cur = forest.node(p).and_then(|n| n.parent());
        }
        self.count_evictions(evicted);
    }

    /// Drains the forest's dirty log and applies exactly the invalidations
    /// it calls for: the touched node plus its root path per mutation, and
    /// eviction (plus the former parent's path) per deletion.
    ///
    /// This is the economical mode's incremental step: after `sync`, a
    /// [`Self::get_or_compute`] on a root rehashes only the dirtied paths
    /// and reuses every clean subtree hash.
    pub fn sync(&mut self, forest: &mut Forest) {
        let marks = forest.drain_dirty();
        for mark in marks {
            match mark {
                DirtyMark::Path(id) => self.evict_path(forest, id),
                DirtyMark::Removed { id, parent } => {
                    self.hashes.remove(&id);
                    if let Some(p) = parent {
                        self.evict_path(forest, p);
                    }
                }
            }
        }
    }

    /// `invalidate_path` with an early exit for batch draining: evictions
    /// always remove whole root paths and a computed node always has its
    /// full subtree cached, so once an *ancestor* turns out to be already
    /// absent the rest of its path is absent too. (The start node is evicted
    /// unconditionally — a freshly inserted node is absent while its
    /// ancestors still hold stale entries.)
    fn evict_path(&mut self, forest: &Forest, id: ObjectId) {
        let mut evicted = u64::from(self.hashes.remove(&id).is_some());
        let mut cur = forest.node(id).and_then(|n| n.parent());
        while let Some(p) = cur {
            if self.hashes.remove(&p).is_none() {
                break;
            }
            evicted += 1;
            cur = forest.node(p).and_then(|n| n.parent());
        }
        self.count_evictions(evicted);
    }

    /// Clears everything (the Basic strategy does this before each walk).
    pub fn clear(&mut self) {
        self.count_evictions(self.hashes.len() as u64);
        self.hashes.clear();
    }

    /// Returns `h(subtree(id))`, computing any missing entries bottom-up and
    /// reusing every cached descendant (the Economical evaluation).
    ///
    /// # Panics
    /// Panics if `id` is not in the forest.
    pub fn get_or_compute(&mut self, forest: &Forest, id: ObjectId) -> Vec<u8> {
        if let Some(h) = self.hashes.get(&id) {
            if let Some(obs) = &self.obs {
                obs.hits.inc();
            }
            return h.to_vec();
        }
        let mut hits = 0u64;
        let mut misses = 0u64;
        // Iterative post-order: compute children before parents without
        // recursing (trees may be arbitrarily deep). Only cache misses are
        // ever pushed (each node has one parent, so no node is pushed
        // twice), and every preimage is assembled in one reused buffer and
        // hashed in a single shot — no per-node allocation.
        // Stack entries: (node, children_scheduled).
        let mut preimage: Vec<u8> = Vec::with_capacity(256);
        let mut stack: Vec<(ObjectId, bool)> = vec![(id, false)];
        while let Some((n, expanded)) = stack.pop() {
            let node = forest
                .node(n)
                .unwrap_or_else(|| panic!("object {n} not in forest"));
            if expanded {
                preimage.clear();
                node_prefix_into(node.id(), node.value(), &mut preimage);
                let mut count = 0u64;
                for child in node.children() {
                    let ch = self
                        .hashes
                        .get(&child)
                        .expect("children computed before parent");
                    preimage.extend_from_slice(ch.as_slice());
                    count += 1;
                }
                preimage.extend_from_slice(&count.to_be_bytes());
                self.hashes.insert(n, self.alg.digest_fixed(&preimage));
                self.nodes_hashed += 1;
                misses += 1;
            } else {
                stack.push((n, true));
                for child in node.children() {
                    if !self.hashes.contains_key(&child) {
                        stack.push((child, false));
                    } else {
                        hits += 1;
                    }
                }
            }
        }
        if let Some(obs) = &self.obs {
            obs.hits.add(hits);
            obs.misses.add(misses);
        }
        self.hashes[&id].to_vec()
    }

    /// Full recompute of `subtree(id)` ignoring the cache (Basic walk).
    /// The cache is repopulated with the fresh values.
    pub fn recompute_subtree(&mut self, forest: &Forest, id: ObjectId) -> Vec<u8> {
        let mut evicted = 0u64;
        for n in forest.subtree_ids(id) {
            evicted += u64::from(self.hashes.remove(&n).is_some());
        }
        self.count_evictions(evicted);
        self.get_or_compute(forest, id)
    }

    /// Drops cache entries for ids no longer in the forest.
    pub fn retain_live(&mut self, forest: &Forest) {
        let before = self.hashes.len();
        self.hashes.retain(|id, _| forest.contains(*id));
        self.count_evictions((before - self.hashes.len()) as u64);
    }
}

/// One-shot subtree hash without a persistent cache.
pub fn subtree_hash(alg: HashAlgorithm, forest: &Forest, id: ObjectId) -> Vec<u8> {
    HashCache::new(alg).get_or_compute(forest, id)
}

/// Hash of an entire database (forest): the fold of all root hashes in
/// `ObjectId` order under a domain-separated prefix.
///
/// This is the "database hash" of Figure 6: hash every tree, then combine.
pub fn forest_hash(alg: HashAlgorithm, forest: &Forest, cache: &mut HashCache) -> Vec<u8> {
    let mut hasher = alg.hasher();
    hasher.update(b"TEP-FOREST\x01");
    let mut count = 0u64;
    for root in forest.roots() {
        let h = cache.get_or_compute(forest, root);
        hasher.update(&h);
        count += 1;
    }
    hasher.update(&count.to_be_bytes());
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_model::relational;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn small_tree() -> (Forest, ObjectId, ObjectId, ObjectId, ObjectId) {
        // Figure 4: A -> {B -> {D}, C}
        let mut f = Forest::new();
        let a = f.insert(Value::text("a"), None).unwrap();
        let b = f.insert(Value::text("b"), Some(a)).unwrap();
        let c = f.insert(Value::text("c"), Some(a)).unwrap();
        let d = f.insert(Value::text("d"), Some(b)).unwrap();
        (f, a, b, c, d)
    }

    #[test]
    fn atom_hash_binds_id_and_value() {
        let h1 = hash_atom(ALG, ObjectId(1), &Value::Int(5));
        let h2 = hash_atom(ALG, ObjectId(2), &Value::Int(5));
        let h3 = hash_atom(ALG, ObjectId(1), &Value::Int(6));
        assert_ne!(h1, h2);
        assert_ne!(h1, h3);
        assert_eq!(h1.len(), 32);
    }

    #[test]
    fn subtree_hash_changes_with_any_descendant() {
        let (mut f, a, _, _, d) = small_tree();
        let before = subtree_hash(ALG, &f, a);
        f.update(d, Value::text("d2")).unwrap();
        let after = subtree_hash(ALG, &f, a);
        assert_ne!(before, after);
    }

    #[test]
    fn subtree_hash_changes_with_structure() {
        let (mut f, a, _, c, _) = small_tree();
        let before = subtree_hash(ALG, &f, a);
        f.delete(c).unwrap();
        let after = subtree_hash(ALG, &f, a);
        assert_ne!(before, after);
    }

    #[test]
    fn leaf_hash_differs_from_atom_hash() {
        // Compound (subtree) hashing of a leaf and §3 atomic hashing are
        // distinct domains by construction.
        let mut f = Forest::new();
        let a = f.insert(Value::Int(1), None).unwrap();
        assert_ne!(subtree_hash(ALG, &f, a), hash_atom(ALG, a, &Value::Int(1)));
    }

    #[test]
    fn cache_reuses_child_hashes() {
        let (mut f, a, b, _, d) = small_tree();
        let mut cache = HashCache::new(ALG);
        cache.get_or_compute(&f, a);
        assert_eq!(cache.nodes_hashed(), 4);

        // Update D: invalidate D's path (D, B, A); C's hash is reused.
        cache.reset_counter();
        f.update(d, Value::text("d2")).unwrap();
        cache.invalidate_path(&f, d);
        assert_eq!(cache.len(), 1); // only C remains cached
        let economical = cache.get_or_compute(&f, a);
        assert_eq!(cache.nodes_hashed(), 3); // D, B, A — not C

        // Must equal a from-scratch recompute.
        assert_eq!(economical, subtree_hash(ALG, &f, a));
        let _ = b;
    }

    #[test]
    fn recompute_subtree_matches_fresh() {
        let (mut f, a, _, c, _) = small_tree();
        let mut cache = HashCache::new(ALG);
        cache.get_or_compute(&f, a);
        f.update(c, Value::text("c2")).unwrap();
        // Basic walk: full recompute ignores the (now stale) cache.
        let recomputed = cache.recompute_subtree(&f, a);
        assert_eq!(recomputed, subtree_hash(ALG, &f, a));
    }

    #[test]
    fn stale_cache_detected_by_invalidate_path() {
        let (mut f, a, _, _, d) = small_tree();
        let mut cache = HashCache::new(ALG);
        let stale = cache.get_or_compute(&f, a);
        f.update(d, Value::text("d2")).unwrap();
        // Without invalidation the cache would (wrongly) return the old value;
        // invalidate_path is what keeps Economical correct.
        assert_eq!(cache.get_or_compute(&f, a), stale);
        cache.invalidate_path(&f, d);
        assert_ne!(cache.get_or_compute(&f, a), stale);
    }

    #[test]
    fn sync_applies_dirty_marks() {
        let (mut f, a, _b, c, d) = small_tree();
        let mut cache = HashCache::new(ALG);
        f.clear_dirty();
        cache.get_or_compute(&f, a);

        // Update D: sync invalidates exactly D's root path; C survives.
        f.update(d, Value::text("d2")).unwrap();
        cache.reset_counter();
        cache.sync(&mut f);
        assert_eq!(cache.len(), 1); // only C
        let h = cache.get_or_compute(&f, a);
        assert_eq!(cache.nodes_hashed(), 3); // D, B, A — not C
        assert_eq!(h, subtree_hash(ALG, &f, a));

        // Delete C: the Removed mark evicts C and dirties A's path.
        f.delete(c).unwrap();
        cache.sync(&mut f);
        assert!(cache.get(c).is_none());
        assert_eq!(cache.get_or_compute(&f, a), subtree_hash(ALG, &f, a));
        assert!(f.dirty_marks().is_empty());
    }

    #[test]
    fn forest_hash_covers_all_roots() {
        let mut f = Forest::new();
        let r1 = f.insert(Value::Int(1), None).unwrap();
        let _r2 = f.insert(Value::Int(2), None).unwrap();
        let mut cache = HashCache::new(ALG);
        let h = forest_hash(ALG, &f, &mut cache);
        f.update(r1, Value::Int(99)).unwrap();
        cache.invalidate_path(&f, r1);
        assert_ne!(forest_hash(ALG, &f, &mut cache), h);
    }

    #[test]
    fn sibling_order_is_by_id_not_insertion() {
        // Hash must not depend on insertion order of siblings.
        let mut f1 = Forest::new();
        let r1 = f1.insert(Value::Null, None).unwrap();
        f1.insert_with_id(ObjectId(10), Value::Int(1), Some(r1))
            .unwrap();
        f1.insert_with_id(ObjectId(20), Value::Int(2), Some(r1))
            .unwrap();

        let mut f2 = Forest::new();
        let r2 = f2.insert(Value::Null, None).unwrap();
        f2.insert_with_id(ObjectId(20), Value::Int(2), Some(r2))
            .unwrap();
        f2.insert_with_id(ObjectId(10), Value::Int(1), Some(r2))
            .unwrap();

        assert_eq!(subtree_hash(ALG, &f1, r1), subtree_hash(ALG, &f2, r2));
    }

    #[test]
    fn relational_tree_hash_is_deterministic() {
        let build = || {
            let mut f = Forest::new();
            let root = relational::create_root(&mut f, "db");
            relational::build_table(&mut f, root, "t", 50, 4, |r, a| {
                Value::Int((r * 100 + a) as i64)
            })
            .unwrap();
            (f, root)
        };
        let (f1, r1) = build();
        let (f2, r2) = build();
        assert_eq!(subtree_hash(ALG, &f1, r1), subtree_hash(ALG, &f2, r2));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut f = Forest::new();
        let mut parent = f.insert(Value::Int(0), None).unwrap();
        let root = parent;
        for i in 1..50_000 {
            parent = f.insert(Value::Int(i), Some(parent)).unwrap();
        }
        // Iterative traversal must handle a 50k-deep chain.
        let h = subtree_hash(ALG, &f, root);
        assert_eq!(h.len(), 32);
    }

    #[test]
    fn retain_live_prunes_deleted() {
        let (mut f, a, _, c, _) = small_tree();
        let mut cache = HashCache::new(ALG);
        cache.get_or_compute(&f, a);
        f.delete(c).unwrap();
        cache.retain_live(&f);
        assert!(cache.get(c).is_none());
        assert_eq!(cache.len(), 3);
    }
}
