//! Per-tenant labeled counters under contention: the bulkhead ledger is
//! only trustworthy if concurrent attribution is *exact* — no increment
//! lost in a racing re-registration, none bleeding into a sibling
//! tenant's label.

use std::sync::Arc;
use tep_obs::{names, MetricValue, Registry};

/// Many threads per tenant, each re-resolving the labeled counter by name
/// on every increment (the worst-case access pattern: nothing cached, the
/// registry's name-keyed map hit under full contention). Totals must come
/// out exact per tenant, and the unlabeled aggregate must equal their sum.
#[test]
fn concurrent_tenant_attribution_is_exact() {
    const TENANTS: u64 = 4;
    const THREADS_PER_TENANT: usize = 4;
    const INCS_PER_THREAD: u64 = 2_000;

    let reg = Registry::new();
    let barrier = Arc::new(std::sync::Barrier::new(
        TENANTS as usize * THREADS_PER_TENANT,
    ));
    let mut handles = Vec::new();
    for tenant in 1..=TENANTS {
        for _ in 0..THREADS_PER_TENANT {
            let reg = reg.clone();
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..INCS_PER_THREAD {
                    // Alternate cached and by-name access so both the fast
                    // path and the registration path race.
                    if i % 2 == 0 {
                        reg.counter(&names::with_tenant(names::NET_SHED, tenant))
                            .inc();
                    } else {
                        let c = reg.counter(&names::with_tenant(names::NET_SHED, tenant));
                        c.inc();
                    }
                    reg.counter(names::NET_SHED).inc();
                }
            }));
        }
    }
    for h in handles {
        h.join().unwrap();
    }

    let per_tenant = THREADS_PER_TENANT as u64 * INCS_PER_THREAD;
    for tenant in 1..=TENANTS {
        assert_eq!(
            reg.counter_value(&names::with_tenant(names::NET_SHED, tenant)),
            per_tenant,
            "tenant t{tenant}'s ledger must be exact under contention"
        );
    }
    // The unlabeled aggregate saw every increment, and no other tenant
    // label appeared out of thin air.
    assert_eq!(reg.counter_value(names::NET_SHED), TENANTS * per_tenant);
    assert_eq!(
        reg.counter_value(&names::with_tenant(names::NET_SHED, TENANTS + 1)),
        0,
        "an unprovisioned tenant's label must stay untouched"
    );
}

/// The label formatter itself: distinct tenants yield distinct metric
/// names (the registry keys by full name), and the rendered form follows
/// the one Prometheus-style schema every scraper expects.
#[test]
fn tenant_labels_are_distinct_registry_keys() {
    assert_eq!(
        names::with_tenant(names::NET_SHED, 3),
        "tep_net_shed_total{tenant=\"t3\"}"
    );
    assert_ne!(
        names::with_tenant(names::NET_SHED, 1),
        names::with_tenant(names::NET_SHED, 11)
    );

    let reg = Registry::new();
    reg.counter(&names::with_tenant(names::NET_SHED, 1)).add(7);
    reg.counter(&names::with_tenant(names::NET_SHED, 11)).add(9);
    assert_eq!(
        reg.counter_value(&names::with_tenant(names::NET_SHED, 1)),
        7
    );
    assert_eq!(
        reg.counter_value(&names::with_tenant(names::NET_SHED, 11)),
        9
    );
    // Both appear in the snapshot as independent metrics.
    let snap = reg.snapshot();
    let value_of = |name: &str| {
        snap.iter()
            .find(|s| s.name == name)
            .map(|s| s.value.clone())
    };
    assert_eq!(
        value_of(&names::with_tenant(names::NET_SHED, 1)),
        Some(MetricValue::Counter(7))
    );
    assert_eq!(
        value_of(&names::with_tenant(names::NET_SHED, 11)),
        Some(MetricValue::Counter(9))
    );
}
