//! Integration tests for the observability spine: concurrency correctness
//! of sharded counters, histogram bucket-boundary properties, span
//! nesting/timing invariants, and text-exposition format stability.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tep_obs::{latency_bounds_ns, Histogram, MetricValue, Registry};

/// Counters are monotonic and lose no increments under concurrent
/// hammering from more threads than there are shards.
#[test]
fn counter_sharded_sum_is_exact_under_contention() {
    let reg = Registry::new();
    let counter = reg.counter("tep_test_hammer_total");
    const THREADS: usize = 16;
    const PER_THREAD: u64 = 50_000;

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = counter.clone();
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.value(), THREADS as u64 * PER_THREAD);
    assert_eq!(reg.counter_value("tep_test_hammer_total"), counter.value());
}

/// A reader racing with writers only ever sees the counter move forward.
#[test]
fn counter_reads_are_monotonic_during_writes() {
    let reg = Registry::new();
    let counter = reg.counter("tep_test_mono_total");
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..4)
        .map(|_| {
            let c = counter.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    c.inc();
                }
            })
        })
        .collect();

    let mut last = 0u64;
    for _ in 0..10_000 {
        let now = counter.value();
        assert!(now >= last, "counter went backwards: {last} -> {now}");
        last = now;
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
}

/// Histogram totals are exact under concurrent observation.
#[test]
fn histogram_counts_are_exact_under_contention() {
    let h = Histogram::with_bounds(&latency_bounds_ns());
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = h.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.observe(t * 1000 + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(h.count(), THREADS * PER_THREAD);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), THREADS * PER_THREAD);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every observation lands in exactly the first bucket whose inclusive
    /// upper bound is >= the value (`le` semantics), sums/counts track, and
    /// bucket totals equal the observation count.
    #[test]
    fn histogram_bucket_boundaries(values in prop::collection::vec(any::<u64>(), 1..64)) {
        let bounds = [10u64, 100, 1_000, 10_000];
        let h = Histogram::with_bounds(&bounds);
        for &v in &values {
            h.observe(v);
        }
        let buckets = h.bucket_counts();
        prop_assert_eq!(buckets.len(), bounds.len() + 1);
        let mut expect = vec![0u64; bounds.len() + 1];
        let mut expect_sum = 0u64;
        for &v in &values {
            let idx = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
            expect[idx] += 1;
            expect_sum = expect_sum.wrapping_add(v);
        }
        prop_assert_eq!(&buckets, &expect);
        prop_assert_eq!(h.count(), values.len() as u64);
        // The histogram's sum wraps the same way u64 addition does.
        prop_assert_eq!(h.sum(), expect_sum);
        prop_assert_eq!(buckets.iter().sum::<u64>(), values.len() as u64);
    }

    /// Exact-boundary values always land in their own bucket, never the
    /// next one up.
    #[test]
    fn histogram_boundary_is_inclusive(which in 0usize..4) {
        let bounds = [10u64, 100, 1_000, 10_000];
        let h = Histogram::with_bounds(&bounds);
        h.observe(bounds[which]);
        let buckets = h.bucket_counts();
        prop_assert_eq!(buckets[which], 1);
        prop_assert_eq!(buckets.iter().sum::<u64>(), 1);
    }
}

/// Spans nest per-thread: inner spans report greater depth, close before
/// their parents, and report durations no longer than the enclosing span.
#[test]
fn span_nesting_and_timing_invariants() {
    let reg = Registry::new();
    {
        let _a = reg.span("a");
        std::thread::sleep(Duration::from_millis(2));
        {
            let _b = reg.span("b");
            std::thread::sleep(Duration::from_millis(2));
            let _c = reg.span("c");
        }
        let _d = reg.span("d");
    }
    let events = reg.trace_events();
    let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap().clone();
    let (a, b, c, d) = (by_name("a"), by_name("b"), by_name("c"), by_name("d"));

    // Completion order: children before parents.
    let order: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(order, vec!["c", "b", "d", "a"]);

    // Depths reflect nesting; a sibling after a closed child reuses depth.
    assert_eq!(a.depth, 0);
    assert_eq!(b.depth, 1);
    assert_eq!(c.depth, 2);
    assert_eq!(d.depth, 1);

    // Monotonic timing: children start no earlier than parents and fit
    // inside them.
    assert!(b.start_ns >= a.start_ns);
    assert!(c.start_ns >= b.start_ns);
    assert!(b.duration_ns <= a.duration_ns);
    assert!(c.duration_ns <= b.duration_ns);
    assert!(a.duration_ns >= Duration::from_millis(4).as_nanos() as u64);
}

/// Spans on different threads do not affect each other's depth.
#[test]
fn span_depth_is_per_thread() {
    let reg = Registry::new();
    let _outer = reg.span("outer");
    let reg2 = reg.clone();
    std::thread::spawn(move || {
        let s = reg2.span("other-thread");
        assert_eq!(s.depth(), 0);
    })
    .join()
    .unwrap();
}

/// The text exposition format is pinned: sorted by name, `# TYPE` headers,
/// cumulative `le` buckets, `_sum`/`_count` suffixes. Renderer changes
/// must update this snapshot consciously — dashboards parse this text.
#[test]
fn text_exposition_format_snapshot() {
    let reg = Registry::new();
    reg.counter("tep_b_total").add(3);
    reg.gauge("tep_c_level").set(-2);
    let h = reg.histogram("tep_a_ns", &[10, 100]);
    h.observe(5);
    h.observe(7);
    h.observe(50);
    h.observe(5_000);

    let expected = "\
# TYPE tep_a_ns histogram
tep_a_ns_bucket{le=\"10\"} 2
tep_a_ns_bucket{le=\"100\"} 3
tep_a_ns_bucket{le=\"+Inf\"} 4
tep_a_ns_sum 5062
tep_a_ns_count 4
# TYPE tep_b_total counter
tep_b_total 3
# TYPE tep_c_level gauge
tep_c_level -2
";
    assert_eq!(reg.render_text(), expected);
}

/// Snapshots expose the deterministic count component used by the
/// seed-determinism regression: counters and histogram counts, never
/// histogram sums (which carry timing).
#[test]
fn snapshot_deterministic_counts() {
    let reg = Registry::new();
    reg.counter("c").add(7);
    let h = reg.latency_histogram("h");
    h.observe(123);
    h.observe(456);
    let counts: Vec<(String, u64)> = reg
        .snapshot()
        .iter()
        .map(|s| (s.name.clone(), s.value.deterministic_count()))
        .collect();
    assert_eq!(counts, vec![("c".to_string(), 7), ("h".to_string(), 2)]);
    // Histogram sums are explicitly not part of the deterministic view.
    match &reg.snapshot()[1].value {
        MetricValue::Histogram { sum, .. } => assert_eq!(*sum, 579),
        other => panic!("expected histogram, got {other:?}"),
    }
}
