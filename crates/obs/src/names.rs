//! Canonical metric names for the tep-net transfer path.
//!
//! The rest of the workspace registers counters ad hoc with string
//! literals; the net server's degradation counters are shared between the
//! server (which increments them), the chaos harness (which asserts on
//! them), and the docs — so their names live here, in one place, instead
//! of being retyped in every crate. Names follow the
//! `tep_<crate>_<name>_total` schema from DESIGN.md §"Observability".

/// Connections accepted (or refused) by the server's accept loop.
pub const NET_CONNECTIONS: &str = "tep_net_connections_total";

/// Connections refused with `ERR busy` because the hand-off queue was at
/// its hard cap.
pub const NET_BUSY_REJECTIONS: &str = "tep_net_busy_rejections_total";

/// FETCH requests served (successfully or not).
pub const NET_FETCHES: &str = "tep_net_fetches_total";

/// RESUME requests served — accepted resumptions *and* refused mismatches
/// both count; `tep_core_evidence_resume_mismatch_total` separates them.
pub const NET_RESUMES: &str = "tep_net_resumes_total";

/// STATS requests served.
pub const NET_STATS_REQUESTS: &str = "tep_net_stats_requests_total";

/// Connections shed at the load-shedding watermark with `ERR busy` +
/// a `Retry-After` hint (a subset of, or equal to, busy rejections).
pub const NET_SHED: &str = "tep_net_shed_total";

/// Connections closed because they exceeded the per-connection deadline
/// (the client is told via `ERR deadline` and may reconnect + RESUME).
pub const NET_DEADLINE_CLOSES: &str = "tep_net_deadline_closes_total";

/// Transfer writes aborted because the peer vanished mid-stream (socket
/// write failure during PROV/DATA/DONE) — distinguishable from shed and
/// panic counts in `render_text`.
pub const NET_WRITE_ABORTS: &str = "tep_net_write_aborts_total";
