//! Canonical metric names for the tep-net transfer path.
//!
//! The rest of the workspace registers counters ad hoc with string
//! literals; the net server's degradation counters are shared between the
//! server (which increments them), the chaos harness (which asserts on
//! them), and the docs — so their names live here, in one place, instead
//! of being retyped in every crate. Names follow the
//! `tep_<crate>_<name>_total` schema from DESIGN.md §"Observability".

/// Renders `base` with a Prometheus-style `tenant` label. The registry
/// keys metrics by their full name string, so
/// `with_tenant(NET_SHED, 3)` = `tep_net_shed_total{tenant="t3"}` is an
/// independent counter from the unlabeled aggregate — per-tenant
/// attribution without the registry growing a label system. Every
/// tenant-scoped metric in the workspace (evidence, shed, quota,
/// quarantine) goes through this one formatter so scrapers see a single
/// consistent label schema.
pub fn with_tenant(base: &str, tenant: u64) -> String {
    format!("{base}{{tenant=\"t{tenant}\"}}")
}

/// Connections accepted (or refused) by the server's accept loop.
pub const NET_CONNECTIONS: &str = "tep_net_connections_total";

/// Connections refused with `ERR busy` because the hand-off queue was at
/// its hard cap.
pub const NET_BUSY_REJECTIONS: &str = "tep_net_busy_rejections_total";

/// FETCH requests served (successfully or not).
pub const NET_FETCHES: &str = "tep_net_fetches_total";

/// RESUME requests served — accepted resumptions *and* refused mismatches
/// both count; `tep_core_evidence_resume_mismatch_total` separates them.
pub const NET_RESUMES: &str = "tep_net_resumes_total";

/// STATS requests served.
pub const NET_STATS_REQUESTS: &str = "tep_net_stats_requests_total";

/// QUERY requests served (successfully or not); the per-operator split
/// lives in `tep_query_requests_<op>_total`.
pub const NET_QUERIES: &str = "tep_net_queries_total";

/// Connections shed at the load-shedding watermark with `ERR busy` +
/// a `Retry-After` hint (a subset of, or equal to, busy rejections).
pub const NET_SHED: &str = "tep_net_shed_total";

/// Connections closed because they exceeded the per-connection deadline
/// (the client is told via `ERR deadline` and may reconnect + RESUME).
pub const NET_DEADLINE_CLOSES: &str = "tep_net_deadline_closes_total";

/// HELLOs refused with the typed, non-retryable `ERR unknown-tenant`
/// because the stated tenant is not in the server's [`TenantDirectory`]
/// or has been disabled. Distinct from `busy`/shed: retrying cannot
/// help, so clients must not burn retry budget on it. Also emitted
/// per-tenant via [`with_tenant`] when the tenant id is at least known.
pub const NET_TENANT_REJECTIONS: &str = "tep_net_tenant_rejections_total";

/// Connections shed at HELLO because the stated tenant was over its
/// per-tenant connection quota — replied `ERR busy` with a
/// tenant-scaled `retry_after_ms`, so a greedy tenant backs off while
/// other tenants keep streaming. Always emitted both unlabeled
/// (aggregate) and via [`with_tenant`] (attribution).
pub const NET_TENANT_QUOTA_SHEDS: &str = "tep_net_tenant_quota_sheds_total";

/// Transfer writes aborted because the peer vanished mid-stream (socket
/// write failure during PROV/DATA/DONE) — distinguishable from shed and
/// panic counts in `render_text`.
pub const NET_WRITE_ABORTS: &str = "tep_net_write_aborts_total";

/// Readiness wakeups: one per return from the event loop's `poll(2)` call.
/// Wall-clock dependent (a stalled peer wakes nobody; a chatty one wakes
/// the loop often), so this counter is **excluded** from the seeded
/// deterministic metrics block — it exists for live dashboards only.
pub const NET_EPOLL_WAKEUPS: &str = "tep_net_epoll_wakeups_total";

/// Cross-connection verify batcher: histogram of jobs per micro-batch
/// handed to `verify_all_parallel` (size watermark = bucket ceiling).
pub const NET_BATCH_VERIFY_SIZE: &str = "tep_net_batch_verify_size";

/// Gauge of connections the event loop currently owns, across every
/// state (handshake, ready, streaming, draining).
pub const NET_OPEN_CONNECTIONS: &str = "tep_net_open_connections";

/// Histogram of request-frame turnaround: nanoseconds from decoding a
/// complete FETCH/RESUME/STATS frame to its reply bytes being queued
/// (event-loop service time, not client-observed latency).
pub const NET_FRAME_TURNAROUND: &str = "tep_net_frame_turnaround_ns";

/// Gauge of connections currently in the `Handshake` state (accepted,
/// HELLO not yet answered).
pub const NET_CONNS_HANDSHAKE: &str = "tep_net_conns_handshake";

/// Gauge of connections currently in the `Ready` state (handshake done,
/// waiting for the next FETCH/RESUME/STATS request).
pub const NET_CONNS_READY: &str = "tep_net_conns_ready";

/// Gauge of connections currently in the `Streaming` state (a transfer
/// job is emitting PROV/DATA/DONE frames).
pub const NET_CONNS_STREAMING: &str = "tep_net_conns_streaming";

/// Gauge of connections currently in the `Draining` state (a terminal
/// reply is queued; the connection closes once it flushes).
pub const NET_CONNS_DRAINING: &str = "tep_net_conns_draining";

/// Anti-entropy node requests served by the server (AE_REQ frames
/// answered, summaries and node lookups alike).
pub const NET_AE_REQUESTS: &str = "tep_net_ae_requests_total";

/// Signed non-membership (DENIAL) proofs the server emitted in place of
/// plain `ERR unknown-object` — counts only proofs actually built and
/// framed, not misses a signerless server answered with an error.
pub const NET_DENIALS: &str = "tep_net_denials_total";

/// RANGE_REQ frames served with a signed completeness proof.
pub const NET_RANGE_REQUESTS: &str = "tep_net_range_requests_total";

/// Records a replica fetched, verified, and durably applied during
/// catch-up (counted after the batch fsync, so the counter never runs
/// ahead of what a power cycle preserves).
pub const NET_REPL_CATCHUP_RECORDS: &str = "tep_net_repl_catchup_records_total";

/// Catch-up sessions a replica resumed from a sealed verifier checkpoint
/// (as opposed to replaying its local log from offset 0).
pub const NET_REPL_CHECKPOINT_RESUMES: &str = "tep_net_repl_checkpoint_resumes_total";

/// Anti-entropy round trips spent across all passes (1 per converged
/// pass; `depth + 2` at most to locate a single divergent leaf).
pub const NET_REPL_ANTI_ENTROPY_ROUNDS: &str = "tep_net_repl_anti_entropy_rounds_total";

/// Anti-entropy passes that ended converged (roots agreed).
pub const NET_REPL_CONVERGED: &str = "tep_net_repl_converged_total";

/// Histogram of tree depths at which anti-entropy located a divergent
/// leaf — the observable form of the O(log n) round-trip claim.
pub const NET_REPL_DIVERGENCE_DEPTH: &str = "tep_net_repl_divergence_depth";

/// Gauge of this process's replication role: 0 = primary (serves
/// AE_REQ), 1 = replica (tails a primary).
pub const NET_REPL_ROLE: &str = "tep_net_repl_role";

/// QUERY requests served by the query engine, across all operators
/// (per-operator counters are `tep_query_requests_<op>_total`, named by
/// `QueryOp::counter_name`).
pub const QUERY_REQUESTS: &str = "tep_query_requests_total";

/// Completeness-proven range listings served by the query engine
/// (`QueryEngine::execute_range`).
pub const QUERY_RANGE_REQUESTS: &str = "tep_query_range_requests_total";

/// Histogram of records shipped per slice proof — the size of the
/// verifiable evidence a query answer drags along.
pub const QUERY_SLICE_RECORDS: &str = "tep_query_slice_records";

/// Histogram of nanoseconds spent building the secondary indexes from an
/// empty watermark (first sync over an existing log).
pub const QUERY_INDEX_BUILD_NS: &str = "tep_query_index_build_ns";

/// Histogram of nanoseconds spent in incremental index syncs (tailing
/// records appended since the last sync). Wall-clock valued, so only its
/// `_count` participates in the deterministic metrics block.
pub const QUERY_INDEX_SYNC_NS: &str = "tep_query_index_sync_ns";
