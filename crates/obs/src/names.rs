//! Canonical metric names for the tep-net transfer path.
//!
//! The rest of the workspace registers counters ad hoc with string
//! literals; the net server's degradation counters are shared between the
//! server (which increments them), the chaos harness (which asserts on
//! them), and the docs — so their names live here, in one place, instead
//! of being retyped in every crate. Names follow the
//! `tep_<crate>_<name>_total` schema from DESIGN.md §"Observability".

/// Connections accepted (or refused) by the server's accept loop.
pub const NET_CONNECTIONS: &str = "tep_net_connections_total";

/// Connections refused with `ERR busy` because the hand-off queue was at
/// its hard cap.
pub const NET_BUSY_REJECTIONS: &str = "tep_net_busy_rejections_total";

/// FETCH requests served (successfully or not).
pub const NET_FETCHES: &str = "tep_net_fetches_total";

/// RESUME requests served — accepted resumptions *and* refused mismatches
/// both count; `tep_core_evidence_resume_mismatch_total` separates them.
pub const NET_RESUMES: &str = "tep_net_resumes_total";

/// STATS requests served.
pub const NET_STATS_REQUESTS: &str = "tep_net_stats_requests_total";

/// QUERY requests served (successfully or not); the per-operator split
/// lives in `tep_query_requests_<op>_total`.
pub const NET_QUERIES: &str = "tep_net_queries_total";

/// Connections shed at the load-shedding watermark with `ERR busy` +
/// a `Retry-After` hint (a subset of, or equal to, busy rejections).
pub const NET_SHED: &str = "tep_net_shed_total";

/// Connections closed because they exceeded the per-connection deadline
/// (the client is told via `ERR deadline` and may reconnect + RESUME).
pub const NET_DEADLINE_CLOSES: &str = "tep_net_deadline_closes_total";

/// Transfer writes aborted because the peer vanished mid-stream (socket
/// write failure during PROV/DATA/DONE) — distinguishable from shed and
/// panic counts in `render_text`.
pub const NET_WRITE_ABORTS: &str = "tep_net_write_aborts_total";

/// Readiness wakeups: one per return from the event loop's `poll(2)` call.
/// Wall-clock dependent (a stalled peer wakes nobody; a chatty one wakes
/// the loop often), so this counter is **excluded** from the seeded
/// deterministic metrics block — it exists for live dashboards only.
pub const NET_EPOLL_WAKEUPS: &str = "tep_net_epoll_wakeups_total";

/// Cross-connection verify batcher: histogram of jobs per micro-batch
/// handed to `verify_all_parallel` (size watermark = bucket ceiling).
pub const NET_BATCH_VERIFY_SIZE: &str = "tep_net_batch_verify_size";

/// Gauge of connections the event loop currently owns, across every
/// state (handshake, ready, streaming, draining).
pub const NET_OPEN_CONNECTIONS: &str = "tep_net_open_connections";

/// Histogram of request-frame turnaround: nanoseconds from decoding a
/// complete FETCH/RESUME/STATS frame to its reply bytes being queued
/// (event-loop service time, not client-observed latency).
pub const NET_FRAME_TURNAROUND: &str = "tep_net_frame_turnaround_ns";

/// Gauge of connections currently in the `Handshake` state (accepted,
/// HELLO not yet answered).
pub const NET_CONNS_HANDSHAKE: &str = "tep_net_conns_handshake";

/// Gauge of connections currently in the `Ready` state (handshake done,
/// waiting for the next FETCH/RESUME/STATS request).
pub const NET_CONNS_READY: &str = "tep_net_conns_ready";

/// Gauge of connections currently in the `Streaming` state (a transfer
/// job is emitting PROV/DATA/DONE frames).
pub const NET_CONNS_STREAMING: &str = "tep_net_conns_streaming";

/// Gauge of connections currently in the `Draining` state (a terminal
/// reply is queued; the connection closes once it flushes).
pub const NET_CONNS_DRAINING: &str = "tep_net_conns_draining";

/// QUERY requests served by the query engine, across all operators
/// (per-operator counters are `tep_query_requests_<op>_total`, named by
/// `QueryOp::counter_name`).
pub const QUERY_REQUESTS: &str = "tep_query_requests_total";

/// Histogram of records shipped per slice proof — the size of the
/// verifiable evidence a query answer drags along.
pub const QUERY_SLICE_RECORDS: &str = "tep_query_slice_records";

/// Histogram of nanoseconds spent building the secondary indexes from an
/// empty watermark (first sync over an existing log).
pub const QUERY_INDEX_BUILD_NS: &str = "tep_query_index_build_ns";

/// Histogram of nanoseconds spent in incremental index syncs (tailing
/// records appended since the last sync). Wall-clock valued, so only its
/// `_count` participates in the deterministic metrics block.
pub const QUERY_INDEX_SYNC_NS: &str = "tep_query_index_sync_ns";
