//! # tep-obs
//!
//! A std-only, zero-dependency observability spine for the tepdb crates.
//!
//! Everything hangs off a [`Registry`] — there are **no globals**: each
//! process (or test) creates its own registry, hands cheap clones to the
//! subsystems it wants instrumented, and reads the results back through
//! [`Registry::snapshot`] or the Prometheus-style [`Registry::render_text`].
//!
//! Three metric kinds cover the crates' needs:
//!
//! * [`Counter`] — monotonic, lock-sharded over cache-line-padded atomics
//!   so concurrent hot paths (the parallel sign/verify pipeline, the
//!   tep-net worker pool) never contend on one cache line.
//! * [`Gauge`] — a point-in-time signed value (queue depths, open
//!   connections).
//! * [`Histogram`] — fixed upper-bound buckets with a running sum/count;
//!   [`Registry::latency_histogram`] provides canonical exponential
//!   nanosecond bounds for timing crypto and fsync latencies.
//!
//! For *where time goes* rather than *how much*, [`Registry::span`] opens a
//! lightweight hierarchical span: monotonic timing, per-thread nesting
//! depth, and completion events pushed into a bounded ring buffer that
//! [`Registry::trace_dump`] renders on failure.
//!
//! Metric names follow the `tep_<crate>_<name>` schema documented in
//! DESIGN.md §"Observability"; registration is idempotent (same name ⇒ same
//! handle) so layers can attach independently without coordination.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod names;

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of independent shards a [`Counter`] spreads its increments over.
const COUNTER_SHARDS: usize = 8;

/// Maximum completed-span events the trace ring retains (oldest dropped).
const TRACE_CAPACITY: usize = 1024;

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// One cache line's worth of counter state, so neighbouring shards never
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

#[derive(Default)]
struct CounterInner {
    shards: [PaddedU64; COUNTER_SHARDS],
}

/// A monotonically increasing counter.
///
/// Increments go to a per-thread shard with a relaxed `fetch_add`; reads
/// sum the shards. Clones share state.
#[derive(Clone, Default)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

/// Stable per-thread shard index: threads round-robin over the shards in
/// creation order, so any fixed set of worker threads spreads evenly.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            s.set(idx);
        }
        idx
    })
}

impl Counter {
    /// Creates a free-standing counter (not attached to a registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A point-in-time signed value (queue depth, open connections).
#[derive(Clone, Default)]
pub struct Gauge {
    inner: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a free-standing gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.inner.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.inner.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.inner.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

struct HistogramInner {
    /// Inclusive upper bounds, strictly increasing. An implicit `+Inf`
    /// bucket follows the last bound.
    bounds: Vec<u64>,
    /// One bucket per bound plus the overflow bucket (non-cumulative).
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram: each observation lands in the first bucket
/// whose upper bound is ≥ the value (`le` semantics), plus a running
/// sum and count. Clones share state.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

/// Canonical exponential nanosecond bounds for latency histograms:
/// 250ns … ~4s in powers of four, a range wide enough for both a sharded
/// counter increment and an RSA-2048 signing operation.
pub fn latency_bounds_ns() -> Vec<u64> {
    (0..13).map(|i| 250u64 << (2 * i)).collect()
}

impl Histogram {
    /// Creates a free-standing histogram with the given inclusive upper
    /// bounds. Bounds must be strictly increasing and non-empty.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets,
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let i = self.inner.bounds.partition_point(|&b| b < v);
        self.inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a timer that records into this histogram when dropped.
    pub fn start_timer(&self) -> HistogramTimer {
        HistogramTimer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// The configured inclusive upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Per-bucket (non-cumulative) observation counts; the final entry is
    /// the `+Inf` overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ≤ q ≤ 1.0`): the
    /// inclusive upper bound of the first bucket whose cumulative count
    /// reaches `ceil(q · count)`. Returns `None` when the histogram is
    /// empty, or when the quantile lands in the `+Inf` overflow bucket
    /// (no finite upper bound exists). Bucketed, so it over-estimates by
    /// at most one bucket width — fine for a p99 report, not for math.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, bucket) in self.inner.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return self.inner.bounds.get(i).copied();
            }
        }
        None
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// Guard returned by [`Histogram::start_timer`]; records the elapsed time
/// into the histogram on drop.
pub struct HistogramTimer {
    hist: Histogram,
    start: Instant,
}

impl HistogramTimer {
    /// Stops the timer now, recording the elapsed duration.
    pub fn stop(self) {}
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.hist.observe_duration(self.start.elapsed());
    }
}

// ---------------------------------------------------------------------------
// Spans + trace ring
// ---------------------------------------------------------------------------

/// One completed span, as retained by the trace ring buffer.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name.
    pub name: String,
    /// Nesting depth at creation (0 = top level on that thread).
    pub depth: usize,
    /// Start time, nanoseconds since the registry's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (monotonic clock).
    pub duration_ns: u64,
}

thread_local! {
    /// Per-thread span nesting depth.
    static SPAN_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// A live hierarchical span: created by [`Registry::span`], records its
/// monotonic duration and nesting depth into the registry's trace ring
/// when dropped (or explicitly via [`Span::finish`]).
pub struct Span {
    registry: Arc<RegistryInner>,
    name: String,
    depth: usize,
    start: Instant,
}

impl Span {
    /// Nesting depth of this span on its creating thread.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        SPAN_DEPTH.with(|d| d.set(self.depth));
        let event = TraceEvent {
            name: std::mem::take(&mut self.name),
            depth: self.depth,
            start_ns: u64::try_from(
                self.start
                    .saturating_duration_since(self.registry.epoch)
                    .as_nanos(),
            )
            .unwrap_or(u64::MAX),
            duration_ns: u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        };
        let mut ring = self
            .registry
            .trace
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if ring.len() == TRACE_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(event);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Metric>>,
    trace: Mutex<VecDeque<TraceEvent>>,
    epoch: Instant,
}

/// A global-free collection of named metrics plus a span trace ring.
///
/// Cloning is cheap (an `Arc` bump) and clones share all state — hand one
/// clone to each subsystem you want instrumented. Metric registration is
/// idempotent: asking twice for the same name returns handles to the same
/// underlying metric. Asking for an existing name **as a different kind**
/// panics (a programming error, caught loudly).
///
/// ```
/// use tep_obs::Registry;
///
/// let reg = Registry::new();
/// let hits = reg.counter("tep_core_cache_hits_total");
/// hits.inc();
/// hits.add(2);
/// assert_eq!(reg.counter_value("tep_core_cache_hits_total"), 3);
/// assert!(reg.render_text().contains("tep_core_cache_hits_total 3"));
/// ```
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry; its epoch (for span timestamps) is now.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                metrics: Mutex::new(BTreeMap::new()),
                trace: Mutex::new(VecDeque::new()),
                epoch: Instant::now(),
            }),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let entry = metrics.entry(name.to_string()).or_insert_with(make);
        entry.clone()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Panics if `name` is already registered as another kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    /// Panics if `name` is already registered as another kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given bounds on first use (later calls keep the original bounds).
    /// Panics if `name` is already registered as another kind.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::with_bounds(bounds))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// A histogram with the canonical exponential latency bounds
    /// ([`latency_bounds_ns`]).
    pub fn latency_histogram(&self, name: &str) -> Histogram {
        self.histogram(name, &latency_bounds_ns())
    }

    /// Current value of the counter `name`, or 0 if absent. (Convenient in
    /// tests; absent and never-incremented are indistinguishable.)
    pub fn counter_value(&self, name: &str) -> u64 {
        let metrics = self.inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics.get(name) {
            Some(Metric::Counter(c)) => c.value(),
            _ => 0,
        }
    }

    /// Opens a hierarchical [`Span`]; its completion is recorded in the
    /// trace ring when the returned guard drops.
    pub fn span(&self, name: impl Into<String>) -> Span {
        let depth = SPAN_DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Span {
            registry: Arc::clone(&self.inner),
            name: name.into(),
            depth,
            start: Instant::now(),
        }
    }

    /// Point-in-time snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let metrics = self.inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        metrics
            .iter()
            .map(|(name, metric)| MetricSnapshot {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.value()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                },
            })
            .collect()
    }

    /// Renders every metric in the Prometheus text exposition format,
    /// sorted by name (deterministic for a given set of values).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for snap in self.snapshot() {
            let name = &snap.name;
            match &snap.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
                }
                MetricValue::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                } => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (bound, bucket) in bounds.iter().zip(buckets) {
                        cumulative += bucket;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                    let _ = writeln!(out, "{name}_sum {sum}\n{name}_count {count}");
                }
            }
        }
        out
    }

    /// Renders the retained trace ring, oldest first, indented by nesting
    /// depth — intended for dumping on test/verification failure.
    pub fn trace_dump(&self) -> String {
        let ring = self.inner.trace.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for ev in ring.iter() {
            let _ = writeln!(
                out,
                "{:>10.3}ms {}{} {:.3}ms",
                ev.start_ns as f64 / 1e6,
                "  ".repeat(ev.depth),
                ev.name,
                ev.duration_ns as f64 / 1e6,
            );
        }
        out
    }

    /// Completed-span events currently retained (oldest first).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner
            .trace
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

/// One metric's name and value as captured by [`Registry::snapshot`].
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// Registered metric name (`tep_<crate>_<name>` by convention).
    pub name: String,
    /// The captured value.
    pub value: MetricValue,
}

/// A captured metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram state.
    Histogram {
        /// Inclusive upper bounds (without `+Inf`).
        bounds: Vec<u64>,
        /// Non-cumulative per-bucket counts; last entry is the `+Inf`
        /// overflow bucket.
        buckets: Vec<u64>,
        /// Sum of observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

impl MetricValue {
    /// The deterministic "count" component of this metric: counter total,
    /// gauge level (clamped at 0), or histogram observation count. Timing
    /// content (histogram sums/buckets) is deliberately excluded so the
    /// result is reproducible run-to-run — this is what the
    /// seed-determinism regression compares.
    pub fn deterministic_count(&self) -> u64 {
        match self {
            MetricValue::Counter(v) => *v,
            MetricValue::Gauge(v) => u64::try_from(*v).unwrap_or(0),
            MetricValue::Histogram { count, .. } => *count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn registry_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(reg.counter_value("x"), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_le_semantics() {
        let h = Histogram::with_bounds(&[10, 100]);
        h.observe(10); // le=10
        h.observe(11); // le=100
        h.observe(1000); // +Inf
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1021);
    }

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        assert_eq!(h.quantile(0.99), None); // empty
        for _ in 0..98 {
            h.observe(5); // le=10
        }
        h.observe(50); // le=100
        h.observe(500); // le=1000
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), Some(10));
        assert_eq!(h.quantile(0.98), Some(10));
        assert_eq!(h.quantile(0.99), Some(100));
        assert_eq!(h.quantile(1.0), Some(1000));
        // Overflow bucket has no finite bound.
        h.observe(u64::MAX);
        assert_eq!(h.quantile(1.0), None);
        // Out-of-range q is rejected, not clamped.
        assert_eq!(h.quantile(1.5), None);
    }

    /// Pins the exposition format of the event-loop metrics added for the
    /// readiness-driven server: a rename or kind change here breaks every
    /// dashboard scraping them, so the full text is asserted verbatim.
    #[test]
    fn event_loop_metrics_exposition_snapshot() {
        let reg = Registry::new();
        let wakeups = reg.counter(names::NET_EPOLL_WAKEUPS);
        let open = reg.gauge(names::NET_OPEN_CONNECTIONS);
        let batch = reg.histogram(names::NET_BATCH_VERIFY_SIZE, &[1, 8, 64]);
        let turnaround = reg.latency_histogram(names::NET_FRAME_TURNAROUND);

        wakeups.add(7);
        open.add(3);
        open.sub(1);
        batch.observe(1);
        batch.observe(5);
        batch.observe(64);
        batch.observe(200);
        turnaround.observe(250);

        let text = reg.render_text();
        let expected = "\
# TYPE tep_net_batch_verify_size histogram
tep_net_batch_verify_size_bucket{le=\"1\"} 1
tep_net_batch_verify_size_bucket{le=\"8\"} 2
tep_net_batch_verify_size_bucket{le=\"64\"} 3
tep_net_batch_verify_size_bucket{le=\"+Inf\"} 4
tep_net_batch_verify_size_sum 270
tep_net_batch_verify_size_count 4
# TYPE tep_net_epoll_wakeups_total counter
tep_net_epoll_wakeups_total 7
# TYPE tep_net_frame_turnaround_ns histogram
tep_net_frame_turnaround_ns_bucket{le=\"250\"} 1
";
        assert!(
            text.starts_with(expected),
            "exposition drifted:\n{text}\nexpected prefix:\n{expected}"
        );
        assert!(text.contains("# TYPE tep_net_open_connections gauge\ntep_net_open_connections 2"));
        assert!(text.contains("tep_net_frame_turnaround_ns_count 1"));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.value(), 3);
        g.set(-7);
        assert_eq!(g.value(), -7);
    }

    #[test]
    fn span_records_trace_event() {
        let reg = Registry::new();
        {
            let _outer = reg.span("outer");
            let inner = reg.span("inner");
            inner.finish();
        }
        let events = reg.trace_events();
        assert_eq!(events.len(), 2);
        // Inner finishes first, at depth 1.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].depth, 0);
    }
}
