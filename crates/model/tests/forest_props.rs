//! Property-based tests of the forest's structural invariants under
//! arbitrary operation sequences.

use proptest::prelude::*;
use tep_model::{AggregateMode, Forest, ObjectId, Value};

/// Abstract op with index-based references resolved against live nodes.
#[derive(Clone, Debug)]
enum Op {
    InsertRoot(i64),
    InsertChild { parent: usize, value: i64 },
    Update { target: usize, value: i64 },
    DeleteLeaf { target: usize },
    DeleteSubtree { target: usize },
    Aggregate { a: usize, b: usize, copy: bool },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => any::<i64>().prop_map(Op::InsertRoot),
        4 => (any::<usize>(), any::<i64>()).prop_map(|(parent, value)| Op::InsertChild {
            parent,
            value
        }),
        3 => (any::<usize>(), any::<i64>()).prop_map(|(target, value)| Op::Update {
            target,
            value
        }),
        2 => any::<usize>().prop_map(|target| Op::DeleteLeaf { target }),
        1 => any::<usize>().prop_map(|target| Op::DeleteSubtree { target }),
        1 => (any::<usize>(), any::<usize>(), any::<bool>())
            .prop_map(|(a, b, copy)| Op::Aggregate { a, b, copy }),
    ]
}

/// Applies ops best-effort (skipping structurally impossible ones) and
/// returns the forest.
fn build(ops: &[Op]) -> Forest {
    let mut f = Forest::new();
    f.insert(Value::Int(0), None).unwrap(); // seed root
    for op in ops {
        let mut ids: Vec<ObjectId> = f.ids().collect();
        ids.sort_unstable();
        if ids.is_empty() {
            f.insert(Value::Int(0), None).unwrap();
            continue;
        }
        match op {
            Op::InsertRoot(v) => {
                f.insert(Value::Int(*v), None).unwrap();
            }
            Op::InsertChild { parent, value } => {
                let p = ids[parent % ids.len()];
                f.insert(Value::Int(*value), Some(p)).unwrap();
            }
            Op::Update { target, value } => {
                let t = ids[target % ids.len()];
                f.update(t, Value::Int(*value)).unwrap();
            }
            Op::DeleteLeaf { target } => {
                let t = ids[target % ids.len()];
                if f.node(t).is_some_and(|n| n.is_leaf()) {
                    f.delete(t).unwrap();
                }
            }
            Op::DeleteSubtree { target } => {
                let t = ids[target % ids.len()];
                f.delete_subtree(t).unwrap();
            }
            Op::Aggregate { a, b, copy } => {
                let a = ids[a % ids.len()];
                let b = ids[b % ids.len()];
                if a == b || !f.contains(a) || !f.contains(b) {
                    continue;
                }
                let nested = f.ancestors(a).contains(&b) || f.ancestors(b).contains(&a);
                if nested {
                    continue;
                }
                let mode = if *copy {
                    AggregateMode::CopySubtrees
                } else {
                    AggregateMode::Atomic
                };
                f.aggregate(&[a, b], Value::Int(-1), mode).unwrap();
            }
        }
    }
    f
}

/// Structural invariants that must hold for any forest.
fn check_invariants(f: &Forest) {
    let all: Vec<ObjectId> = f.ids().collect();
    // Parent/child pointers agree both ways.
    for &id in &all {
        let node = f.node(id).unwrap();
        match node.parent() {
            Some(p) => {
                let parent = f
                    .node(p)
                    .unwrap_or_else(|| panic!("dangling parent {p} of {id}"));
                assert!(
                    parent.children().any(|c| c == id),
                    "{p} does not list child {id}"
                );
            }
            None => assert!(f.roots().any(|r| r == id), "parentless {id} not a root"),
        }
        for c in node.children() {
            assert_eq!(
                f.node(c).and_then(|n| n.parent()),
                Some(id),
                "child {c} does not point back to {id}"
            );
        }
    }
    // Roots are exactly the parentless nodes.
    let parentless: Vec<ObjectId> = all
        .iter()
        .copied()
        .filter(|&id| f.node(id).unwrap().parent().is_none())
        .collect();
    let mut roots: Vec<ObjectId> = f.roots().collect();
    let mut parentless_sorted = parentless;
    parentless_sorted.sort_unstable();
    roots.sort_unstable();
    assert_eq!(roots, parentless_sorted);
    // Subtree walks partition the forest.
    let total: usize = f.roots().map(|r| f.subtree_size(r)).sum();
    assert_eq!(total, f.len());
    // Pre-order and post-order visit the same sets.
    for r in f.roots() {
        let mut pre = f.subtree_ids(r);
        let mut post = f.subtree_ids_postorder(r);
        pre.sort_unstable();
        post.sort_unstable();
        assert_eq!(pre, post);
    }
    // Ancestor chains terminate at roots and never cycle.
    for &id in &all {
        let anc = f.ancestors(id);
        assert!(anc.len() <= f.len());
        if let Some(&last) = anc.last() {
            assert!(f.node(last).unwrap().parent().is_none());
        }
        assert_eq!(f.depth(id), anc.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forest_invariants_hold(ops in prop::collection::vec(op(), 0..60)) {
        let f = build(&ops);
        check_invariants(&f);
    }

    #[test]
    fn fresh_ids_never_collide(ops in prop::collection::vec(op(), 0..40)) {
        let f = build(&ops);
        let ids: Vec<ObjectId> = f.ids().collect();
        let unique: std::collections::HashSet<ObjectId> = ids.iter().copied().collect();
        prop_assert_eq!(ids.len(), unique.len());
        // next_id_hint is above every live id.
        let hint = f.next_id_hint();
        prop_assert!(ids.iter().all(|&id| id < hint));
    }

    #[test]
    fn clone_is_deep(ops in prop::collection::vec(op(), 0..30)) {
        let f = build(&ops);
        let mut g = f.clone();
        // Mutating the clone never changes the original.
        let before: Vec<ObjectId> = f.ids().collect();
        g.insert(Value::Int(1), None).unwrap();
        if let Some(&id) = before.first() {
            let _ = g.update(id, Value::Int(12345));
        }
        let after: Vec<ObjectId> = f.ids().collect();
        prop_assert_eq!(before.len(), after.len());
    }
}
