//! The database abstraction: a forest of object trees (§4.1).
//!
//! A [`Forest`] owns every atomic object and maintains the parent/child
//! relationships that make compound objects. It supports exactly the
//! paper's primitive operations — leaf insert, leaf delete, value update,
//! and aggregation — plus the traversals (subtree walks, ancestor chains)
//! the provenance layer needs.

use crate::error::ModelError;
use crate::id::ObjectId;
use crate::idhash::IdMap;
use crate::node::Node;
use crate::value::Value;
use std::collections::BTreeSet;

/// A stale-hash notice produced by a forest mutation.
///
/// The forest appends one mark per primitive mutation to an internal dirty
/// log; the provenance layer's hash cache drains the log and invalidates
/// exactly the root-to-leaf paths the mutations dirtied (the paper's
/// "economical" evaluation, §4.3/§5). Paths are resolved lazily at drain
/// time — parent links of live nodes never change, so the ancestor chain
/// observed then matches the one at mutation time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirtyMark {
    /// `id` is live and its subtree hash — and every ancestor's — is stale.
    Path(ObjectId),
    /// `id` was deleted: its cached hash must be evicted, and the former
    /// parent's path (recorded here because `id` no longer resolves) is
    /// stale.
    Removed {
        /// The deleted object.
        id: ObjectId,
        /// Its parent at deletion time, if it was not a root.
        parent: Option<ObjectId>,
    },
}

/// How an aggregation produces its output object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateMode {
    /// The output is a single atomic object whose value is supplied by the
    /// caller (a black-box combination, e.g. a sum or a user-defined
    /// function) — the Figure 2 case.
    Atomic,
    /// The output is a new compound object: a fresh root whose children are
    /// deep copies (with fresh ids) of the input subtrees — e.g. assembling
    /// an aggregate table from rows of other tables.
    CopySubtrees,
}

/// A forest of data objects with unique identifiers.
///
/// ```
/// use tep_model::{Forest, Value};
///
/// let mut f = Forest::new();
/// let table = f.insert(Value::text("patients"), None).unwrap();
/// let row = f.insert(Value::Null, Some(table)).unwrap();
/// let cell = f.insert(Value::Int(42), Some(row)).unwrap();
/// assert_eq!(f.ancestors(cell), vec![row, table]);
/// assert_eq!(f.subtree_size(table), 3);
/// let old = f.update(cell, Value::Int(43)).unwrap();
/// assert_eq!(old, Value::Int(42));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Forest {
    nodes: IdMap<Node>,
    roots: BTreeSet<ObjectId>,
    next_id: u64,
    /// Mutations since the last [`Self::drain_dirty`], oldest first.
    dirty: Vec<DirtyMark>,
}

impl Forest {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of atomic objects.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the forest holds no objects.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `true` iff `id` names a live object.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Looks up a node.
    pub fn node(&self, id: ObjectId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Looks up a node, failing with [`ModelError::UnknownObject`].
    pub fn get(&self, id: ObjectId) -> Result<&Node, ModelError> {
        self.nodes.get(&id).ok_or(ModelError::UnknownObject(id))
    }

    /// Root objects in `ObjectId` order.
    pub fn roots(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.roots.iter().copied()
    }

    /// All object ids (unordered).
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.nodes.keys().copied()
    }

    /// The id the next auto-allocated insert would receive. Workload
    /// generators use this to pre-assign ids for batched inserts.
    pub fn next_id_hint(&self) -> ObjectId {
        ObjectId(self.next_id)
    }

    fn alloc_id(&mut self) -> ObjectId {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Inserts a new leaf object with `value` under `parent` (or as a new
    /// root when `parent` is `None`). Returns the fresh id.
    pub fn insert(
        &mut self,
        value: Value,
        parent: Option<ObjectId>,
    ) -> Result<ObjectId, ModelError> {
        if let Some(p) = parent {
            if !self.nodes.contains_key(&p) {
                return Err(ModelError::UnknownParent(p));
            }
        }
        let id = self.alloc_id();
        self.attach_new(id, value, parent);
        Ok(id)
    }

    /// Inserts with a caller-chosen id (tests and replay). Fails on collision.
    pub fn insert_with_id(
        &mut self,
        id: ObjectId,
        value: Value,
        parent: Option<ObjectId>,
    ) -> Result<(), ModelError> {
        if self.nodes.contains_key(&id) {
            return Err(ModelError::DuplicateObject(id));
        }
        if let Some(p) = parent {
            if !self.nodes.contains_key(&p) {
                return Err(ModelError::UnknownParent(p));
            }
        }
        self.attach_new(id, value, parent);
        self.next_id = self.next_id.max(id.0 + 1);
        Ok(())
    }

    fn attach_new(&mut self, id: ObjectId, value: Value, parent: Option<ObjectId>) {
        self.nodes.insert(id, Node::new(id, value, parent));
        match parent {
            Some(p) => self
                .nodes
                .get_mut(&p)
                .expect("parent checked by caller")
                .add_child(id),
            None => {
                self.roots.insert(id);
            }
        }
        self.dirty.push(DirtyMark::Path(id));
    }

    /// Pending dirty marks, oldest first (inspection only — use
    /// [`Self::drain_dirty`] to consume them).
    pub fn dirty_marks(&self) -> &[DirtyMark] {
        &self.dirty
    }

    /// Takes (and clears) the dirty log accumulated since the last drain.
    pub fn drain_dirty(&mut self) -> Vec<DirtyMark> {
        std::mem::take(&mut self.dirty)
    }

    /// Discards the dirty log without processing it. Call after adopting a
    /// freshly built forest whose hashes were never cached — replaying its
    /// construction marks would be pure overhead.
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Updates an object's value, returning the previous value.
    pub fn update(&mut self, id: ObjectId, value: Value) -> Result<Value, ModelError> {
        let node = self
            .nodes
            .get_mut(&id)
            .ok_or(ModelError::UnknownObject(id))?;
        let old = node.set_value(value);
        self.dirty.push(DirtyMark::Path(id));
        Ok(old)
    }

    /// Deletes a **leaf** object, returning its last value.
    pub fn delete(&mut self, id: ObjectId) -> Result<Value, ModelError> {
        let node = self.nodes.get(&id).ok_or(ModelError::UnknownObject(id))?;
        if !node.is_leaf() {
            return Err(ModelError::NotALeaf(id));
        }
        let parent = node.parent();
        let node = self.nodes.remove(&id).expect("checked above");
        match parent {
            Some(p) => {
                if let Some(pn) = self.nodes.get_mut(&p) {
                    pn.remove_child(id);
                }
            }
            None => {
                self.roots.remove(&id);
            }
        }
        self.dirty.push(DirtyMark::Removed { id, parent });
        Ok(node.value().clone())
    }

    /// Removes an entire subtree (post-order), returning the removed ids.
    ///
    /// Not one of the paper's primitives — complex operations express it as
    /// a sequence of leaf deletes — but useful for workload generation.
    pub fn delete_subtree(&mut self, id: ObjectId) -> Result<Vec<ObjectId>, ModelError> {
        if !self.contains(id) {
            return Err(ModelError::UnknownObject(id));
        }
        let order = self.subtree_ids_postorder(id);
        for &n in &order {
            self.delete(n).expect("post-order makes each node a leaf");
        }
        Ok(order)
    }

    /// Aggregates `subtree(A1)…subtree(An)` into a new root object.
    ///
    /// Inputs must exist, be distinct, and not be nested inside one another.
    /// Returns the id of the new root `B`. Inputs are left untouched (as in
    /// Figure 2, where `A` continues to evolve after being aggregated).
    pub fn aggregate(
        &mut self,
        inputs: &[ObjectId],
        root_value: Value,
        mode: AggregateMode,
    ) -> Result<ObjectId, ModelError> {
        self.validate_aggregation_inputs(inputs)?;
        let out = self.alloc_id();
        self.attach_new(out, root_value, None);
        if mode == AggregateMode::CopySubtrees {
            // Copy inputs in global order so the result is deterministic.
            let mut sorted: Vec<ObjectId> = inputs.to_vec();
            sorted.sort_unstable();
            for src in sorted {
                self.deep_copy(src, Some(out));
            }
        }
        Ok(out)
    }

    fn validate_aggregation_inputs(&self, inputs: &[ObjectId]) -> Result<(), ModelError> {
        if inputs.is_empty() {
            return Err(ModelError::EmptyAggregation);
        }
        let mut seen = BTreeSet::new();
        for &id in inputs {
            self.get(id)?;
            if !seen.insert(id) {
                return Err(ModelError::DuplicateAggregationInput(id));
            }
        }
        for &id in inputs {
            for anc in self.ancestors(id) {
                if seen.contains(&anc) {
                    return Err(ModelError::NestedAggregationInput {
                        inner: id,
                        outer: anc,
                    });
                }
            }
        }
        Ok(())
    }

    /// Deep-copies `subtree(src)` under `parent` with fresh ids; returns the
    /// id of the copy's root.
    pub fn deep_copy(&mut self, src: ObjectId, parent: Option<ObjectId>) -> ObjectId {
        let value = self
            .nodes
            .get(&src)
            .expect("source validated by caller")
            .value()
            .clone();
        let children: Vec<ObjectId> = self.nodes[&src].children().collect();
        let copy = self.alloc_id();
        self.attach_new(copy, value, parent);
        for child in children {
            self.deep_copy(child, Some(copy));
        }
        copy
    }

    /// Ancestors of `id`, nearest first (excluding `id` itself).
    pub fn ancestors(&self, id: ObjectId) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let mut cur = self.nodes.get(&id).and_then(Node::parent);
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes.get(&p).and_then(Node::parent);
        }
        out
    }

    /// The root of the tree containing `id`.
    pub fn root_of(&self, id: ObjectId) -> Result<ObjectId, ModelError> {
        self.get(id)?;
        Ok(self.ancestors(id).last().copied().unwrap_or(id))
    }

    /// Subtree ids in DFS pre-order (children in `ObjectId` order).
    pub fn subtree_ids(&self, id: ObjectId) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if let Some(node) = self.nodes.get(&n) {
                out.push(n);
                // Push in reverse so the smallest child pops first.
                let children: Vec<ObjectId> = node.children().collect();
                for c in children.into_iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Subtree ids in post-order (every node appears after its children).
    pub fn subtree_ids_postorder(&self, id: ObjectId) -> Vec<ObjectId> {
        let mut out = self.subtree_ids(id);
        out.reverse();
        out
    }

    /// Number of nodes in `subtree(id)` (0 if `id` is unknown).
    pub fn subtree_size(&self, id: ObjectId) -> usize {
        self.subtree_ids(id).len()
    }

    /// Depth of `id` below its root (root depth = 0).
    pub fn depth(&self, id: ObjectId) -> usize {
        self.ancestors(id).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Forest, ObjectId, ObjectId, ObjectId, ObjectId) {
        // A(root) -> B -> D ; A -> C   (Figure 4 shape)
        let mut f = Forest::new();
        let a = f.insert(Value::text("a"), None).unwrap();
        let b = f.insert(Value::text("b"), Some(a)).unwrap();
        let c = f.insert(Value::text("c"), Some(a)).unwrap();
        let d = f.insert(Value::text("d"), Some(b)).unwrap();
        (f, a, b, c, d)
    }

    #[test]
    fn insert_builds_structure() {
        let (f, a, b, c, d) = sample();
        assert_eq!(f.len(), 4);
        assert_eq!(f.roots().collect::<Vec<_>>(), vec![a]);
        assert_eq!(
            f.node(a).unwrap().children().collect::<Vec<_>>(),
            vec![b, c]
        );
        assert_eq!(f.node(d).unwrap().parent(), Some(b));
        assert_eq!(f.depth(d), 2);
    }

    #[test]
    fn insert_unknown_parent_fails() {
        let mut f = Forest::new();
        assert_eq!(
            f.insert(Value::Null, Some(ObjectId(99))),
            Err(ModelError::UnknownParent(ObjectId(99)))
        );
        assert!(f.is_empty());
    }

    #[test]
    fn insert_with_id_rejects_duplicates() {
        let mut f = Forest::new();
        f.insert_with_id(ObjectId(7), Value::Int(1), None).unwrap();
        assert_eq!(
            f.insert_with_id(ObjectId(7), Value::Int(2), None),
            Err(ModelError::DuplicateObject(ObjectId(7)))
        );
        // Fresh ids must not collide with explicitly chosen ones.
        let next = f.insert(Value::Int(3), None).unwrap();
        assert!(next > ObjectId(7));
    }

    #[test]
    fn update_returns_old_value() {
        let (mut f, _, b, _, _) = sample();
        let old = f.update(b, Value::text("b2")).unwrap();
        assert_eq!(old, Value::text("b"));
        assert_eq!(f.node(b).unwrap().value(), &Value::text("b2"));
        assert!(f.update(ObjectId(99), Value::Null).is_err());
    }

    #[test]
    fn delete_leaf_only() {
        let (mut f, a, b, c, d) = sample();
        assert_eq!(f.delete(b), Err(ModelError::NotALeaf(b)));
        assert_eq!(f.delete(d).unwrap(), Value::text("d"));
        // b became a leaf; now deletable.
        f.delete(b).unwrap();
        f.delete(c).unwrap();
        f.delete(a).unwrap();
        assert!(f.is_empty());
        assert_eq!(f.roots().count(), 0);
    }

    #[test]
    fn delete_subtree_removes_everything() {
        let (mut f, a, b, _, _) = sample();
        let removed = f.delete_subtree(b).unwrap();
        assert_eq!(removed.len(), 2); // d then b
        assert_eq!(f.len(), 2);
        assert!(f.contains(a));
    }

    #[test]
    fn ancestors_nearest_first() {
        let (f, a, b, _, d) = sample();
        assert_eq!(f.ancestors(d), vec![b, a]);
        assert_eq!(f.ancestors(a), Vec::<ObjectId>::new());
        assert_eq!(f.root_of(d).unwrap(), a);
        assert_eq!(f.root_of(a).unwrap(), a);
    }

    #[test]
    fn subtree_traversals() {
        let (f, a, b, c, d) = sample();
        assert_eq!(f.subtree_ids(a), vec![a, b, d, c]);
        assert_eq!(f.subtree_ids_postorder(a), vec![c, d, b, a]);
        assert_eq!(f.subtree_size(a), 4);
        assert_eq!(f.subtree_size(b), 2);
        assert_eq!(f.subtree_size(ObjectId(99)), 0);
    }

    #[test]
    fn aggregate_atomic_creates_root() {
        let (mut f, a, _, c, _) = sample();
        let out = f.aggregate(&[a, c], Value::Int(42), AggregateMode::Atomic);
        // c is inside a's subtree → nested input error.
        assert!(matches!(
            out,
            Err(ModelError::NestedAggregationInput { .. })
        ));

        let e = f.insert(Value::Int(5), None).unwrap();
        let out = f
            .aggregate(&[a, e], Value::Int(42), AggregateMode::Atomic)
            .unwrap();
        assert!(f.roots().any(|r| r == out));
        assert!(f.node(out).unwrap().is_leaf());
        // Inputs are untouched.
        assert!(f.contains(a) && f.contains(e));
    }

    #[test]
    fn aggregate_copy_subtrees() {
        let (mut f, a, _, _, _) = sample();
        let e = f.insert(Value::Int(5), None).unwrap();
        let before = f.len();
        let out = f
            .aggregate(&[e, a], Value::text("agg"), AggregateMode::CopySubtrees)
            .unwrap();
        // Copies of subtree(a) (4 nodes) + subtree(e) (1 node) + new root.
        assert_eq!(f.len(), before + 4 + 1 + 1);
        assert_eq!(f.node(out).unwrap().child_count(), 2);
        assert_eq!(f.subtree_size(out), 6);
        // Original subtree unchanged.
        assert_eq!(f.subtree_size(a), 4);
    }

    #[test]
    fn aggregate_validates_inputs() {
        let (mut f, a, _, _, _) = sample();
        assert_eq!(
            f.aggregate(&[], Value::Null, AggregateMode::Atomic),
            Err(ModelError::EmptyAggregation)
        );
        assert_eq!(
            f.aggregate(&[a, a], Value::Null, AggregateMode::Atomic),
            Err(ModelError::DuplicateAggregationInput(a))
        );
        assert_eq!(
            f.aggregate(&[ObjectId(99)], Value::Null, AggregateMode::Atomic),
            Err(ModelError::UnknownObject(ObjectId(99)))
        );
    }

    #[test]
    fn dirty_log_tracks_mutations() {
        let (mut f, a, b, _c, d) = sample();
        // Construction pushed one Path mark per insert.
        assert_eq!(f.dirty_marks().len(), 4);
        f.clear_dirty();
        assert!(f.dirty_marks().is_empty());

        f.update(d, Value::text("d2")).unwrap();
        assert_eq!(f.dirty_marks(), &[DirtyMark::Path(d)]);

        f.delete(d).unwrap();
        assert_eq!(
            f.drain_dirty(),
            vec![
                DirtyMark::Path(d),
                DirtyMark::Removed {
                    id: d,
                    parent: Some(b)
                }
            ]
        );
        assert!(f.dirty_marks().is_empty());

        // Root deletes record parent: None; failed ops record nothing.
        assert!(f.update(ObjectId(99), Value::Null).is_err());
        assert!(f.delete(a).is_err()); // not a leaf
        assert!(f.dirty_marks().is_empty());
        f.delete(b).unwrap();
        f.drain_dirty();
        let e = f.insert(Value::Int(1), None).unwrap();
        f.drain_dirty();
        f.delete(e).unwrap();
        assert_eq!(
            f.drain_dirty(),
            vec![DirtyMark::Removed {
                id: e,
                parent: None
            }]
        );
    }

    #[test]
    fn deep_copy_preserves_values_with_fresh_ids() {
        let (mut f, a, _, _, _) = sample();
        let copy = f.deep_copy(a, None);
        assert_ne!(copy, a);
        assert_eq!(f.subtree_size(copy), 4);
        let orig_vals: Vec<Value> = f
            .subtree_ids(a)
            .iter()
            .map(|&i| f.node(i).unwrap().value().clone())
            .collect();
        let copy_vals: Vec<Value> = f
            .subtree_ids(copy)
            .iter()
            .map(|&i| f.node(i).unwrap().value().clone())
            .collect();
        assert_eq!(orig_vals, copy_vals);
    }
}
