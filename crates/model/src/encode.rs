//! Canonical byte encoding for hashing and storage.
//!
//! Every hash in the checksum scheme — `h(A, val)` for atomic objects and
//! the recursive `h(subtree(A))` for compound objects — must be computed
//! over a *canonical, unambiguous* byte string, or two different
//! (id, value) pairs could collide by construction rather than by breaking
//! the hash. This module defines that encoding:
//!
//! * every variable-length field is length-prefixed (u64 big-endian), and
//! * every encoded form starts with a domain-separation tag so an atom
//!   encoding can never be confused with a node encoding or a value.
//!
//! The same encoding doubles as the storage wire format for values.

use crate::id::ObjectId;
use crate::node::Node;
use crate::value::{CanonicalF64, Value};
use std::fmt;

/// Domain tag for `h(A, val)` atom hashes.
pub const TAG_ATOM: u8 = 0xA1;
/// Domain tag for compound-object node headers (Fig. 5 triples).
pub const TAG_NODE: u8 = 0xA2;

const VAL_NULL: u8 = 0x00;
const VAL_BOOL: u8 = 0x01;
const VAL_INT: u8 = 0x02;
const VAL_REAL: u8 = 0x03;
const VAL_TEXT: u8 = 0x04;
const VAL_BYTES: u8 = 0x05;

/// Errors from decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    UnexpectedEof,
    /// Unknown tag byte.
    BadTag(u8),
    /// Text payload was not valid UTF-8.
    BadUtf8,
    /// Trailing bytes after a complete structure.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte 0x{t:02x}"),
            DecodeError::BadUtf8 => write!(f, "text payload is not valid UTF-8"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends the canonical encoding of `value` to `out`.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(VAL_NULL),
        Value::Bool(b) => {
            out.push(VAL_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(VAL_INT);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Real(r) => {
            out.push(VAL_REAL);
            out.extend_from_slice(&r.bits().to_be_bytes());
        }
        Value::Text(s) => {
            out.push(VAL_TEXT);
            out.extend_from_slice(&(s.len() as u64).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(VAL_BYTES);
            out.extend_from_slice(&(b.len() as u64).to_be_bytes());
            out.extend_from_slice(b);
        }
    }
}

/// Canonical encoding of a value as an owned buffer.
pub fn value_bytes(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(value, &mut out);
    out
}

/// A simple forward-only reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.array::<4>()?))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.array::<8>()?))
    }

    /// Reads a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let slice = self.bytes(N)?;
        Ok(slice.try_into().expect("length checked"))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a u64-length-prefixed byte string.
    pub fn len_prefixed(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u64()? as usize;
        self.bytes(len)
    }

    /// Fails unless the reader is exhausted.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }
}

/// Decodes one canonical value from the reader.
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value, DecodeError> {
    match r.u8()? {
        VAL_NULL => Ok(Value::Null),
        VAL_BOOL => Ok(Value::Bool(r.u8()? != 0)),
        VAL_INT => Ok(Value::Int(i64::from_be_bytes(r.array::<8>()?))),
        VAL_REAL => Ok(Value::Real(CanonicalF64::new(f64::from_bits(r.u64()?)))),
        VAL_TEXT => {
            let bytes = r.len_prefixed()?;
            let s = std::str::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)?;
            Ok(Value::Text(s.to_owned()))
        }
        VAL_BYTES => Ok(Value::Bytes(r.len_prefixed()?.to_vec())),
        t => Err(DecodeError::BadTag(t)),
    }
}

/// Decodes a value from a complete buffer (no trailing bytes allowed).
pub fn value_from_bytes(buf: &[u8]) -> Result<Value, DecodeError> {
    let mut r = Reader::new(buf);
    let v = decode_value(&mut r)?;
    r.expect_end()?;
    Ok(v)
}

/// Canonical preimage for the atomic-object hash `h(A, val)` (§3):
/// `TAG_ATOM || id || value`.
pub fn atom_preimage(id: ObjectId, value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.push(TAG_ATOM);
    out.extend_from_slice(&id.raw().to_be_bytes());
    encode_value(value, &mut out);
    out
}

/// Canonical prefix for the compound (subtree) hash of Fig. 5:
/// `TAG_NODE || id || value`.
///
/// The full subtree hash is
/// `h(node_prefix(A) || h_c1 || … || h_ck || child_count)` with children in
/// `ObjectId` order. Each child hash already binds its own id, and the
/// trailing count delimits the fixed-width hash sequence, so the encoding
/// stays unambiguous *and* can be computed one child at a time — which is
/// what makes the §5.2 streaming (larger-than-memory) hash a single pass.
pub fn node_prefix(id: ObjectId, value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    node_prefix_into(id, value, &mut out);
    out
}

/// Appends the canonical node prefix to `out` — the allocation-free variant
/// hot hashing loops use with a reused buffer.
pub fn node_prefix_into(id: ObjectId, value: &Value, out: &mut Vec<u8>) {
    out.push(TAG_NODE);
    out.extend_from_slice(&id.raw().to_be_bytes());
    encode_value(value, out);
}

/// Canonical prefix taken straight from a [`Node`].
pub fn node_prefix_of(node: &Node) -> Vec<u8> {
    node_prefix(node.id(), node.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let bytes = value_bytes(&v);
        assert_eq!(value_from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn value_roundtrips() {
        roundtrip(Value::Null);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
        roundtrip(Value::Int(0));
        roundtrip(Value::Int(i64::MIN));
        roundtrip(Value::Int(i64::MAX));
        roundtrip(Value::real(3.25));
        roundtrip(Value::real(-0.0)); // canonicalized to +0.0
        roundtrip(Value::text(""));
        roundtrip(Value::text("héllo wörld"));
        roundtrip(Value::Bytes(vec![]));
        roundtrip(Value::Bytes((0..=255).collect()));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(value_from_bytes(&[]), Err(DecodeError::UnexpectedEof));
        assert_eq!(value_from_bytes(&[0xee]), Err(DecodeError::BadTag(0xee)));
        assert_eq!(
            value_from_bytes(&[VAL_INT, 1, 2]),
            Err(DecodeError::UnexpectedEof)
        );
        // Trailing bytes rejected.
        let mut buf = value_bytes(&Value::Int(1));
        buf.push(0);
        assert_eq!(value_from_bytes(&buf), Err(DecodeError::TrailingBytes(1)));
        // Invalid UTF-8 text rejected.
        let mut bad = vec![VAL_TEXT];
        bad.extend_from_slice(&2u64.to_be_bytes());
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(value_from_bytes(&bad), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn encoding_is_unambiguous_across_values() {
        // Distinct values produce distinct encodings.
        let values = [
            Value::Null,
            Value::Bool(false),
            Value::Int(0),
            Value::real(0.0),
            Value::text(""),
            Value::Bytes(vec![]),
            Value::text("\0"),
            Value::Bytes(vec![0]),
        ];
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                if i != j {
                    assert_ne!(value_bytes(a), value_bytes(b), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn atom_preimage_separates_id_and_value() {
        // (id=1, "ab") must differ from (id=2, "ab") and from (id=1, "ac").
        let a = atom_preimage(ObjectId(1), &Value::text("ab"));
        let b = atom_preimage(ObjectId(2), &Value::text("ab"));
        let c = atom_preimage(ObjectId(1), &Value::text("ac"));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a[0], TAG_ATOM);
    }

    #[test]
    fn node_prefix_binds_id_and_value() {
        let a = node_prefix(ObjectId(1), &Value::text("v"));
        let b = node_prefix(ObjectId(2), &Value::text("v"));
        let c = node_prefix(ObjectId(1), &Value::text("w"));
        assert_eq!(a[0], TAG_NODE);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Atom and node prefixes never collide (distinct domain tags).
        assert_ne!(a, atom_preimage(ObjectId(1), &Value::text("v")));
    }

    #[test]
    fn node_prefix_of_matches_parts() {
        use crate::forest::Forest;
        let mut f = Forest::new();
        let root = f.insert(Value::text("r"), None).unwrap();
        let node = f.node(root).unwrap();
        assert_eq!(node_prefix_of(node), node_prefix(root, &Value::text("r")));
    }

    #[test]
    fn reader_primitives() {
        let mut buf = Vec::new();
        buf.push(7);
        buf.extend_from_slice(&0xdead_beefu32.to_be_bytes());
        buf.extend_from_slice(&42u64.to_be_bytes());
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 42);
        r.expect_end().unwrap();
        assert_eq!(r.u8(), Err(DecodeError::UnexpectedEof));
    }
}
