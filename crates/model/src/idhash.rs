//! Fast multiplicative hashing for [`ObjectId`] keys.
//!
//! Forest traversal and the subtree-hash cache perform one map operation
//! per visited node — hundreds of thousands per benchmark sweep — and the
//! standard library's DoS-resistant SipHash dominates those loops. Object
//! ids are sequential `u64`s allocated by us, not attacker-chosen keys, so
//! a Fibonacci multiply (odd constant ≈ 2⁶⁴/φ) with a high-to-low mix
//! spreads them perfectly at a fraction of the cost.

use crate::ObjectId;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

/// Multiplicative hasher specialized for single-`u64` keys.
#[derive(Clone, Copy, Default)]
pub struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

/// A `HashMap` keyed by [`ObjectId`] using [`IdHasher`].
pub type IdMap<V> = HashMap<ObjectId, V, BuildHasherDefault<IdHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips_sequential_ids() {
        let mut m: IdMap<u32> = IdMap::default();
        for i in 0..10_000u64 {
            m.insert(ObjectId(i), i as u32);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&ObjectId(i)), Some(&(i as u32)));
        }
        assert!(!m.contains_key(&ObjectId(10_000)));
    }
}
