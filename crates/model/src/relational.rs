//! Relational view: database → table → row → cell trees.
//!
//! The paper's experiments view "the back-end database as a tree of depth 4,
//! with a single root node, and subsequent levels representing tables, rows,
//! and cells" (§5.1). These helpers build and navigate that shape on top of
//! [`Forest`].

use crate::error::ModelError;
use crate::forest::Forest;
use crate::id::ObjectId;
use crate::value::Value;

/// Handle to a generated table and its structure.
#[derive(Clone, Debug)]
pub struct TableHandle {
    /// The table node.
    pub id: ObjectId,
    /// One handle per row, in creation order.
    pub rows: Vec<RowHandle>,
}

/// Handle to a generated row and its cells.
#[derive(Clone, Debug)]
pub struct RowHandle {
    /// The row node.
    pub id: ObjectId,
    /// Cell nodes in attribute order.
    pub cells: Vec<ObjectId>,
}

impl TableHandle {
    /// Total node count of the table subtree (table + rows + cells).
    pub fn node_count(&self) -> usize {
        1 + self.rows.len() + self.rows.iter().map(|r| r.cells.len()).sum::<usize>()
    }
}

/// Creates the single database root node.
pub fn create_root(forest: &mut Forest, name: &str) -> ObjectId {
    forest
        .insert(Value::text(name), None)
        .expect("root insert cannot fail")
}

/// Creates an empty table under `root`.
pub fn create_table(
    forest: &mut Forest,
    root: ObjectId,
    name: &str,
) -> Result<ObjectId, ModelError> {
    forest.insert(Value::text(name), Some(root))
}

/// Appends a row (a `Null`-valued structural node) to `table`.
pub fn create_row(forest: &mut Forest, table: ObjectId) -> Result<ObjectId, ModelError> {
    forest.insert(Value::Null, Some(table))
}

/// Appends a cell with `value` to `row`.
pub fn create_cell(
    forest: &mut Forest,
    row: ObjectId,
    value: Value,
) -> Result<ObjectId, ModelError> {
    forest.insert(value, Some(row))
}

/// Builds a full table of `num_rows × num_attrs` cells under `root`.
///
/// `cell_value` is called with `(row_index, attr_index)` for each cell.
pub fn build_table(
    forest: &mut Forest,
    root: ObjectId,
    name: &str,
    num_rows: usize,
    num_attrs: usize,
    mut cell_value: impl FnMut(usize, usize) -> Value,
) -> Result<TableHandle, ModelError> {
    let table = create_table(forest, root, name)?;
    let mut rows = Vec::with_capacity(num_rows);
    for r in 0..num_rows {
        let row = create_row(forest, table)?;
        let mut cells = Vec::with_capacity(num_attrs);
        for a in 0..num_attrs {
            cells.push(create_cell(forest, row, cell_value(r, a))?);
        }
        rows.push(RowHandle { id: row, cells });
    }
    Ok(TableHandle { id: table, rows })
}

/// Appends a fully-populated row to an existing table, returning its handle.
pub fn append_row(
    forest: &mut Forest,
    table: ObjectId,
    values: &[Value],
) -> Result<RowHandle, ModelError> {
    let row = create_row(forest, table)?;
    let mut cells = Vec::with_capacity(values.len());
    for v in values {
        cells.push(create_cell(forest, row, v.clone())?);
    }
    Ok(RowHandle { id: row, cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_four_structure() {
        let mut f = Forest::new();
        let root = create_root(&mut f, "db");
        let t = build_table(&mut f, root, "t1", 3, 2, |r, a| {
            Value::Int((r * 10 + a) as i64)
        })
        .unwrap();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0].cells.len(), 2);
        // 1 root + 1 table + 3 rows + 6 cells
        assert_eq!(f.len(), 11);
        assert_eq!(t.node_count(), 10);
        // Depth: root=0, table=1, row=2, cell=3.
        assert_eq!(f.depth(root), 0);
        assert_eq!(f.depth(t.id), 1);
        assert_eq!(f.depth(t.rows[0].id), 2);
        assert_eq!(f.depth(t.rows[0].cells[0]), 3);
        // Cell values match the generator.
        assert_eq!(f.node(t.rows[2].cells[1]).unwrap().value(), &Value::Int(21));
    }

    #[test]
    fn paper_table_one_node_count() {
        // Table 1(a) row 1: 8 attributes × 4000 rows → 36 002 nodes
        // including the root (1 + 1 + 4000 + 32000).
        let mut f = Forest::new();
        let root = create_root(&mut f, "db");
        build_table(&mut f, root, "t1", 4000, 8, |_, _| Value::Int(0)).unwrap();
        assert_eq!(f.len(), 36_002);
    }

    #[test]
    fn append_row_extends_table() {
        let mut f = Forest::new();
        let root = create_root(&mut f, "db");
        let t = build_table(&mut f, root, "t", 1, 2, |_, _| Value::Int(0)).unwrap();
        let row = append_row(&mut f, t.id, &[Value::Int(7), Value::Int(8)]).unwrap();
        assert_eq!(f.node(t.id).unwrap().child_count(), 2);
        assert_eq!(row.cells.len(), 2);
        assert_eq!(f.node(row.cells[0]).unwrap().value(), &Value::Int(7));
    }
}
