//! Object identifiers.

use std::fmt;

/// Unique identifier of a data object in the database.
///
/// The paper assumes "a pre-defined total order over atomic objects" used to
/// sort aggregation inputs and subtree children before hashing; `ObjectId`'s
/// numeric ordering is that global order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// The raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        assert!(ObjectId(1) < ObjectId(2));
        assert!(ObjectId(100) > ObjectId(99));
    }

    #[test]
    fn display() {
        assert_eq!(ObjectId(42).to_string(), "#42");
    }
}
