//! Object identifiers.

use std::fmt;

/// Unique identifier of a data object in the database.
///
/// The paper assumes "a pre-defined total order over atomic objects" used to
/// sort aggregation inputs and subtree children before hashing; `ObjectId`'s
/// numeric ordering is that global order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// The raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

/// Unique identifier of a tenant — an isolation domain owning its own
/// signing key, append-log shard, and evidence counters.
///
/// Tenancy is a *bulkhead*: every artifact the system produces (records,
/// denials, quarantine sidecars, metrics) is attributed to exactly one
/// tenant, and faults in one tenant's shard must not leak into another's.
/// The numeric ordering gives tenants a stable enumeration order for
/// federated verify reports and shard directory layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

impl TenantId {
    /// The default tenant used by single-tenant deployments and by peers
    /// that predate tenancy (wire v3 interop is gone; v4 clients always
    /// state a tenant, and `DEFAULT` is the conventional "the only one").
    pub const DEFAULT: TenantId = TenantId(0);

    /// The raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Stable label for metrics and shard directory names: `t<id>`.
    pub fn label(self) -> String {
        format!("t{}", self.0)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant:{}", self.0)
    }
}

impl From<u64> for TenantId {
    fn from(v: u64) -> Self {
        TenantId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        assert!(ObjectId(1) < ObjectId(2));
        assert!(ObjectId(100) > ObjectId(99));
    }

    #[test]
    fn display() {
        assert_eq!(ObjectId(42).to_string(), "#42");
    }

    #[test]
    fn tenant_ordering_and_labels() {
        assert!(TenantId(1) < TenantId(2));
        assert_eq!(TenantId::DEFAULT, TenantId(0));
        assert_eq!(TenantId(7).label(), "t7");
        assert_eq!(TenantId(7).to_string(), "tenant:7");
        assert_eq!(TenantId::from(9u64).raw(), 9);
    }
}
