//! Atomic objects (forest nodes).

use crate::id::ObjectId;
use crate::value::Value;
use std::collections::BTreeSet;

/// An atomic data object: `(id, value, {child_ids})` per §4.1 of the paper.
///
/// Children are kept in a [`BTreeSet`] so iteration always follows the
/// global `ObjectId` order — the "pre-defined total order over atomic
/// objects" that makes compound hashes deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    id: ObjectId,
    value: Value,
    parent: Option<ObjectId>,
    children: BTreeSet<ObjectId>,
}

impl Node {
    /// Creates a node with no children.
    pub fn new(id: ObjectId, value: Value, parent: Option<ObjectId>) -> Self {
        Node {
            id,
            value,
            parent,
            children: BTreeSet::new(),
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The node's current value.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// The node's parent, if any.
    pub fn parent(&self) -> Option<ObjectId> {
        self.parent
    }

    /// The node's children in global `ObjectId` order.
    pub fn children(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.children.iter().copied()
    }

    /// Number of children.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    /// `true` iff the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    pub(crate) fn set_value(&mut self, value: Value) -> Value {
        std::mem::replace(&mut self.value, value)
    }

    pub(crate) fn add_child(&mut self, child: ObjectId) {
        self.children.insert(child);
    }

    pub(crate) fn remove_child(&mut self, child: ObjectId) {
        self.children.remove(&child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_iterate_in_id_order() {
        let mut n = Node::new(ObjectId(0), Value::Null, None);
        n.add_child(ObjectId(5));
        n.add_child(ObjectId(1));
        n.add_child(ObjectId(3));
        let order: Vec<_> = n.children().collect();
        assert_eq!(order, vec![ObjectId(1), ObjectId(3), ObjectId(5)]);
    }

    #[test]
    fn leaf_tracking() {
        let mut n = Node::new(ObjectId(0), Value::Int(1), None);
        assert!(n.is_leaf());
        n.add_child(ObjectId(1));
        assert!(!n.is_leaf());
        assert_eq!(n.child_count(), 1);
        n.remove_child(ObjectId(1));
        assert!(n.is_leaf());
    }

    #[test]
    fn set_value_returns_previous() {
        let mut n = Node::new(ObjectId(0), Value::Int(1), None);
        let old = n.set_value(Value::Int(2));
        assert_eq!(old, Value::Int(1));
        assert_eq!(n.value(), &Value::Int(2));
    }
}
