//! Primitive database operations as first-class values.
//!
//! Workload generators produce sequences of [`PrimitiveOp`]s; the provenance
//! tracker applies them to a [`Forest`] and documents each application with
//! a checksummed provenance record. Keeping operations as data also lets
//! complex operations (§4.4) batch them transactionally.

use crate::error::ModelError;
use crate::forest::{AggregateMode, Forest};
use crate::id::ObjectId;
use crate::value::Value;

/// A primitive database operation (§2 / §4.1 of the paper).
#[derive(Clone, Debug, PartialEq)]
pub enum PrimitiveOp {
    /// Add a new leaf object (a new root when `parent` is `None`).
    Insert {
        /// Explicit id for the new object, or `None` to auto-allocate.
        /// Workload generators pre-assign ids (from
        /// [`Forest::next_id_hint`]) so that later operations in the same
        /// batch can reference objects the batch itself creates (e.g. the
        /// cells of a freshly inserted row).
        id: Option<ObjectId>,
        /// Initial value.
        value: Value,
        /// Optional parent object.
        parent: Option<ObjectId>,
    },
    /// Remove an existing leaf object.
    Delete {
        /// Object to delete.
        id: ObjectId,
    },
    /// Replace an object's value.
    Update {
        /// Object to update.
        id: ObjectId,
        /// New value.
        value: Value,
    },
    /// Combine `subtree(A_1) … subtree(A_n)` into a new object.
    Aggregate {
        /// Input objects (must be distinct, non-nested).
        inputs: Vec<ObjectId>,
        /// Value for the output root.
        root_value: Value,
        /// Atomic output vs. deep-copied compound output.
        mode: AggregateMode,
    },
}

/// The observable outcome of applying a [`PrimitiveOp`].
#[derive(Clone, Debug, PartialEq)]
pub enum OpOutcome {
    /// A new object was created.
    Inserted(ObjectId),
    /// An object was removed; carries its final value.
    Deleted {
        /// The removed object.
        id: ObjectId,
        /// Its value at deletion time.
        old_value: Value,
    },
    /// An object's value changed.
    Updated {
        /// The updated object.
        id: ObjectId,
        /// The value before the update.
        old_value: Value,
    },
    /// An aggregation produced a new output object.
    Aggregated {
        /// The new output root.
        output: ObjectId,
        /// The aggregation inputs, in global order.
        inputs: Vec<ObjectId>,
    },
}

impl OpOutcome {
    /// The object the outcome is "about" (the output object for aggregates).
    pub fn primary_object(&self) -> ObjectId {
        match self {
            OpOutcome::Inserted(id) => *id,
            OpOutcome::Deleted { id, .. } => *id,
            OpOutcome::Updated { id, .. } => *id,
            OpOutcome::Aggregated { output, .. } => *output,
        }
    }
}

impl PrimitiveOp {
    /// Applies the operation to `forest`.
    pub fn apply(&self, forest: &mut Forest) -> Result<OpOutcome, ModelError> {
        match self {
            PrimitiveOp::Insert { id, value, parent } => match id {
                Some(id) => {
                    forest.insert_with_id(*id, value.clone(), *parent)?;
                    Ok(OpOutcome::Inserted(*id))
                }
                None => {
                    let id = forest.insert(value.clone(), *parent)?;
                    Ok(OpOutcome::Inserted(id))
                }
            },
            PrimitiveOp::Delete { id } => {
                let old_value = forest.delete(*id)?;
                Ok(OpOutcome::Deleted { id: *id, old_value })
            }
            PrimitiveOp::Update { id, value } => {
                let old_value = forest.update(*id, value.clone())?;
                Ok(OpOutcome::Updated { id: *id, old_value })
            }
            PrimitiveOp::Aggregate {
                inputs,
                root_value,
                mode,
            } => {
                let output = forest.aggregate(inputs, root_value.clone(), *mode)?;
                let mut sorted = inputs.clone();
                sorted.sort_unstable();
                Ok(OpOutcome::Aggregated {
                    output,
                    inputs: sorted,
                })
            }
        }
    }

    /// Short human-readable kind name.
    pub fn kind(&self) -> &'static str {
        match self {
            PrimitiveOp::Insert { .. } => "insert",
            PrimitiveOp::Delete { .. } => "delete",
            PrimitiveOp::Update { .. } => "update",
            PrimitiveOp::Aggregate { .. } => "aggregate",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_insert_update_delete() {
        let mut f = Forest::new();
        let out = PrimitiveOp::Insert {
            id: None,
            value: Value::Int(1),
            parent: None,
        }
        .apply(&mut f)
        .unwrap();
        let OpOutcome::Inserted(id) = out else {
            panic!("expected insert outcome")
        };

        let out = PrimitiveOp::Update {
            id,
            value: Value::Int(2),
        }
        .apply(&mut f)
        .unwrap();
        assert_eq!(
            out,
            OpOutcome::Updated {
                id,
                old_value: Value::Int(1)
            }
        );

        let out = PrimitiveOp::Delete { id }.apply(&mut f).unwrap();
        assert_eq!(
            out,
            OpOutcome::Deleted {
                id,
                old_value: Value::Int(2)
            }
        );
        assert!(f.is_empty());
    }

    #[test]
    fn apply_aggregate_sorts_inputs() {
        let mut f = Forest::new();
        let a = f.insert(Value::Int(1), None).unwrap();
        let b = f.insert(Value::Int(2), None).unwrap();
        let out = PrimitiveOp::Aggregate {
            inputs: vec![b, a],
            root_value: Value::Int(3),
            mode: AggregateMode::Atomic,
        }
        .apply(&mut f)
        .unwrap();
        let OpOutcome::Aggregated { inputs, .. } = out else {
            panic!("expected aggregate outcome")
        };
        assert_eq!(inputs, vec![a, b]);
    }

    #[test]
    fn errors_propagate() {
        let mut f = Forest::new();
        assert!(PrimitiveOp::Delete { id: ObjectId(5) }
            .apply(&mut f)
            .is_err());
        assert!(PrimitiveOp::Update {
            id: ObjectId(5),
            value: Value::Null
        }
        .apply(&mut f)
        .is_err());
    }

    #[test]
    fn kind_names() {
        assert_eq!(
            PrimitiveOp::Insert {
                id: None,
                value: Value::Null,
                parent: None
            }
            .kind(),
            "insert"
        );
        assert_eq!(PrimitiveOp::Delete { id: ObjectId(0) }.kind(), "delete");
    }
}
