//! Typed atomic values.

use std::fmt;

/// The value stored in an atomic data object.
///
/// `Real` values are compared and hashed by canonical bit pattern (NaN is
/// normalized to a single representation at construction), so `Value` is a
/// well-behaved `Eq`/`Hash` key and hashes deterministically.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// Absent / placeholder value (e.g. structural row nodes).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer (the paper's synthetic tables are all-integer).
    Int(i64),
    /// 64-bit float stored as canonical bits.
    Real(CanonicalF64),
    /// UTF-8 text (the paper's large "Title" table is a varchar column).
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// Constructs a `Real`, normalizing NaN to one canonical bit pattern.
    pub fn real(v: f64) -> Self {
        Value::Real(CanonicalF64::new(v))
    }

    /// Constructs a `Text` value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Human-readable type name (diagnostics).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Text(_) => "text",
            Value::Bytes(_) => "bytes",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{}", r.get()),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "x'{}'", tep_crypto::hex::to_hex(b)),
        }
    }
}

/// An `f64` with bitwise equality and hashing (NaN canonicalized).
#[derive(Clone, Copy, Debug)]
pub struct CanonicalF64(u64);

impl CanonicalF64 {
    /// Wraps `v`, replacing any NaN with the canonical quiet NaN.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            CanonicalF64(f64::NAN.to_bits())
        } else if v == 0.0 {
            // Collapse -0.0 and +0.0 so equal values hash equally.
            CanonicalF64(0.0f64.to_bits())
        } else {
            CanonicalF64(v.to_bits())
        }
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// Canonical bit pattern (used by the byte encoding).
    pub fn bits(self) -> u64 {
        self.0
    }
}

impl PartialEq for CanonicalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for CanonicalF64 {}

impl std::hash::Hash for CanonicalF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn nan_is_canonical() {
        let a = Value::real(f64::NAN);
        let b = Value::real(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn signed_zero_collapses() {
        assert_eq!(Value::real(0.0), Value::real(-0.0));
    }

    #[test]
    fn distinct_reals_distinct() {
        assert_ne!(Value::real(1.0), Value::real(2.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::text("x").type_name(), "text");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::text("a").to_string(), "\"a\"");
        assert_eq!(Value::Bytes(vec![0xab]).to_string(), "x'ab'");
    }
}
