//! # tep-model
//!
//! The abstract data model of tamper-evident database provenance: a database
//! is a **forest of trees** of atomic objects `(id, value, {child_ids})`
//! (§4.1 of the paper), manipulated through four primitive operations —
//! insert, delete, update, aggregate.
//!
//! * [`Forest`] — the object store with parent/child structure and the
//!   traversals the provenance layer needs.
//! * [`Value`] — typed atomic values with deterministic equality/hashing.
//! * [`PrimitiveOp`] / [`OpOutcome`] — operations as data, so workloads can
//!   generate them and complex operations can batch them.
//! * [`encode`] — the canonical, domain-separated byte encoding every hash
//!   is computed over.
//! * [`relational`] — helpers for the paper's depth-4 relational view
//!   (database → tables → rows → cells).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod encode;
pub mod error;
pub mod forest;
pub mod id;
pub mod idhash;
pub mod node;
pub mod ops;
pub mod relational;
pub mod value;

pub use error::ModelError;
pub use forest::{AggregateMode, DirtyMark, Forest};
pub use id::{ObjectId, TenantId};
pub use node::Node;
pub use ops::{OpOutcome, PrimitiveOp};
pub use value::Value;

// Participants are defined by the PKI substrate; re-export for convenience.
pub use tep_crypto::pki::ParticipantId;
