//! Errors raised by forest operations.

use crate::id::ObjectId;
use std::fmt;

/// Errors from the data-model layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The referenced object does not exist in the forest.
    UnknownObject(ObjectId),
    /// An object with this id already exists.
    DuplicateObject(ObjectId),
    /// Deletion requires a leaf; this object still has children.
    NotALeaf(ObjectId),
    /// The requested parent does not exist.
    UnknownParent(ObjectId),
    /// Aggregation requires at least one input object.
    EmptyAggregation,
    /// Aggregation inputs must be distinct; this id appeared twice.
    DuplicateAggregationInput(ObjectId),
    /// An aggregation input is contained in another input's subtree.
    NestedAggregationInput {
        /// The inner object.
        inner: ObjectId,
        /// The ancestor that already covers it.
        outer: ObjectId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownObject(id) => write!(f, "object {id} does not exist"),
            ModelError::DuplicateObject(id) => write!(f, "object {id} already exists"),
            ModelError::NotALeaf(id) => write!(f, "object {id} has children and cannot be deleted"),
            ModelError::UnknownParent(id) => write!(f, "parent object {id} does not exist"),
            ModelError::EmptyAggregation => write!(f, "aggregation requires at least one input"),
            ModelError::DuplicateAggregationInput(id) => {
                write!(f, "aggregation input {id} appears more than once")
            }
            ModelError::NestedAggregationInput { inner, outer } => {
                write!(
                    f,
                    "aggregation input {inner} is inside input {outer}'s subtree"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}
