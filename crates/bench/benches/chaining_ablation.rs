//! §3.2 ablation: per-object (local) checksum chains vs one global chain.
//!
//! The paper argues for local chaining because a global chain forces a
//! total order (a lock) across all participants. One iteration = 4
//! participants each appending updates — either to their own objects
//! (local, parallel) or through a mutex-serialized shared chain (global).

use criterion::{criterion_group, criterion_main, Criterion};
use tep_bench::experiments::{run_chaining, ExperimentConfig};
use tep_core::prelude::HashAlgorithm;

fn bench_chaining(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        alg: HashAlgorithm::Sha1,
        key_bits: 512,
        runs: 1,
        seed: 2009,
    };
    let mut group = c.benchmark_group("chaining_3_2");
    group.sample_size(10);
    group.bench_function("local_vs_global_4threads_16ops", |b| {
        b.iter(|| run_chaining(&cfg, 4, 16))
    });
    group.finish();
}

criterion_group!(benches, bench_chaining);
criterion_main!(benches);
