//! §3.2 ablation: per-object (local) checksum chains vs one global chain.
//!
//! The paper argues for local chaining because a global chain forces a
//! total order (a lock) across all participants. Each mode is measured
//! separately so criterion reports **per-thread updates/s** via
//! `Throughput::Elements(OPS_PER_THREAD)`: under local chains every
//! participant sustains its own chain's rate; under the global chain the
//! shared lock divides that rate by the participant count.
//!
//! Determinism: the thread count is pinned (not derived from the host's
//! core count), participants come from a fixed seed, and the simulated
//! commit latency is a calibrated spin-wait rather than `thread::sleep`
//! (whose OS-timer jitter previously produced ±15% run-to-run noise).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tep_bench::experiments::{
    chaining_global_ms, chaining_local_ms, chaining_participants, ExperimentConfig,
};
use tep_core::prelude::HashAlgorithm;

/// Pinned worker count — fixed regardless of host parallelism so results
/// are comparable across machines.
const THREADS: usize = 4;
/// Updates each participant appends per iteration.
const OPS_PER_THREAD: usize = 16;
/// Fixed seed for participant enrollment.
const SEED: u64 = 2009;

fn bench_chaining(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        alg: HashAlgorithm::Sha1,
        key_bits: 512,
        runs: 1,
        seed: SEED,
    };
    let participants = chaining_participants(&cfg, THREADS);

    let mut group = c.benchmark_group("chaining_3_2");
    group.sample_size(10);
    // Elements = per-thread ops, so elem/s below is per-thread updates/s.
    group.throughput(Throughput::Elements(OPS_PER_THREAD as u64));
    group.bench_function("local_4threads_16ops", |b| {
        b.iter(|| chaining_local_ms(&cfg, &participants, OPS_PER_THREAD))
    });
    group.bench_function("global_4threads_16ops", |b| {
        b.iter(|| chaining_global_ms(&cfg, &participants, OPS_PER_THREAD))
    });
    group.finish();
}

criterion_group!(benches, bench_chaining);
criterion_main!(benches);
