//! Figure 7: hashing the output tree with the Basic vs Economical
//! strategies, as the number of updated cells grows (Setup A).
//!
//! The paper's shape: Basic is roughly constant (always a full-tree walk);
//! Economical grows with the update footprint and sits far below Basic for
//! small updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tep_core::hashing::HashCache;
use tep_core::prelude::HashAlgorithm;
use tep_model::ObjectId;
use tep_workloads::{paper_database, setup_a_updates};

const ALG: HashAlgorithm = HashAlgorithm::Sha1;

/// Representative points from the paper's sweep.
const POINTS: [(usize, usize); 4] = [(1, 1), (400, 400), (4000, 4000), (16_000, 4000)];

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_output_tree_hashing");
    group.sample_size(10);
    for (cells, rows) in POINTS {
        // Pre-state database + updates applied; dirty set recorded.
        let db = paper_database(1, 2009);
        let mut forest = db.forest;
        let ops = setup_a_updates(&db.tables[0], cells, rows, 7);
        let mut warm = HashCache::new(ALG);
        warm.get_or_compute(&forest, db.root);
        let mut dirty: Vec<ObjectId> = Vec::new();
        for op in &ops {
            dirty.push(op.apply(&mut forest).unwrap().primary_object());
        }

        group.bench_with_input(
            BenchmarkId::new("economical", format!("{cells}cells")),
            &(&forest, &warm, &dirty, db.root),
            |b, (forest, warm, dirty, root)| {
                b.iter(|| {
                    let mut cache = (*warm).clone();
                    for &id in dirty.iter() {
                        cache.invalidate_path(forest, id);
                    }
                    cache.get_or_compute(forest, *root)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("basic", format!("{cells}cells")),
            &(&forest, db.root),
            |b, (forest, root)| {
                b.iter(|| {
                    let mut cache = HashCache::new(ALG);
                    cache.get_or_compute(forest, *root)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
