//! Extension: recipient-side verification cost as history length grows.
//!
//! Verification is linear in record count (one signature verification per
//! record); this bench pins that down for chains of 10–1000 records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use tep_core::prelude::*;
use tep_model::Value;

fn bench_verify(c: &mut Criterion) {
    let cfg = tep_bench::ExperimentConfig {
        alg: HashAlgorithm::Sha1,
        key_bits: 512,
        runs: 1,
        seed: 2009,
    };
    let (signer, keys) = cfg.make_signer();
    let mut group = c.benchmark_group("verify_cost");
    group.sample_size(10);
    for len in [10usize, 100, 1000] {
        let mut ledger = AtomicLedger::new(cfg.alg, Arc::new(ProvenanceDb::in_memory()));
        let obj = ledger.insert(&signer, Value::Int(0)).unwrap();
        for i in 1..len as i64 {
            ledger.update(&signer, obj, Value::Int(i)).unwrap();
        }
        let hash = ledger.object_hash(obj).unwrap();
        let prov = ledger.provenance_of(obj).unwrap();
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &prov, |b, prov| {
            let verifier = Verifier::new(&keys, cfg.alg);
            b.iter(|| {
                let v = verifier.verify(&hash, prov);
                assert!(v.verified());
                v.records_checked
            })
        });
    }
    group.finish();
}

fn bench_proofs(c: &mut Criterion) {
    use tep_core::hashing::HashCache;
    use tep_core::{prove, SubtreeProof};
    use tep_model::ObjectId;
    use tep_workloads::paper_database;

    let alg = HashAlgorithm::Sha1;
    let db = paper_database(1, 2009); // 36k-node table
    let mut cache = HashCache::new(alg);
    let root_hash = cache.get_or_compute(&db.forest, db.root);
    let cell: ObjectId = db.tables[0].rows[1234].cells[3];
    let cell_value = db.forest.node(cell).unwrap().value().clone();

    let mut group = c.benchmark_group("merkle_proofs");
    group.bench_function("prove_cell_in_36k_tree_warm_cache", |b| {
        b.iter(|| prove(&db.forest, &mut cache, db.root, cell).unwrap())
    });
    let proof = prove(&db.forest, &mut cache, db.root, cell).unwrap();
    group.bench_function("verify_cell_proof", |b| {
        b.iter(|| proof.verify_leaf_value(&cell_value, &root_hash).unwrap())
    });
    group.bench_function("proof_bytes_roundtrip", |b| {
        let bytes = proof.to_bytes();
        b.iter(|| SubtreeProof::from_bytes(&bytes).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_verify, bench_proofs);
criterion_main!(benches);
