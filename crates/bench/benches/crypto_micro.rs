//! Micro-benchmarks of the crypto substrate: hash throughput and RSA
//! sign/verify latency — the constants behind every macro number.
//!
//! The paper's per-record cost is one hash walk plus one RSA-1024 signature
//! (its 128-byte `Checksum` column); these benches isolate each primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::rsa::KeyPair;
use tep_crypto::sha1::Sha1;
use tep_crypto::sha256::Sha256;

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_throughput");
    for size in [64usize, 1024, 65_536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha1", size), &data, |b, d| {
            b.iter(|| Sha1::digest(d))
        });
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| Sha256::digest(d))
        });
    }
    group.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa");
    group.sample_size(20);
    for bits in [512usize, 1024, 2048] {
        let mut rng = StdRng::seed_from_u64(2009);
        let kp = KeyPair::generate(bits, &mut rng);
        let msg = b"provenance checksum message";
        let sig = kp.sign(HashAlgorithm::Sha1, msg).unwrap();
        group.bench_function(BenchmarkId::new("sign_sha1", bits), |b| {
            b.iter(|| kp.sign(HashAlgorithm::Sha1, msg).unwrap())
        });
        group.bench_function(BenchmarkId::new("verify_sha1", bits), |b| {
            b.iter(|| kp.public().verify(HashAlgorithm::Sha1, msg, &sig).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hashing, bench_rsa);
criterion_main!(benches);
