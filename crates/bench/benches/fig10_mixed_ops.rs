//! Figures 10 & 11: checksum overhead for mixed operations (Setup C).
//!
//! One iteration = one 500-operation mix on a fresh copy of the paper's
//! table 1. The paper's shape: overhead decreases as the delete share
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tep_bench::experiments::{run_setup_c_once, ExperimentConfig};
use tep_core::prelude::HashAlgorithm;
use tep_workloads::PAPER_C_MIXES;

fn bench_fig10(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        alg: HashAlgorithm::Sha1,
        key_bits: 512,
        runs: 1,
        seed: 2009,
    };
    let (signer, _) = cfg.make_signer();
    let mut group = c.benchmark_group("fig10_setup_c");
    group.sample_size(10);
    for mix in PAPER_C_MIXES {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.1}pct_deletes", mix.delete_pct())),
            &mix,
            |b, &mix| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run_setup_c_once(&cfg, &signer, mix, seed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
