//! Figure 6: average hashing time for a database, vs database size.
//!
//! Hashes each of the paper's four synthetic databases (36k–118k nodes)
//! from scratch. The paper's shape: time grows roughly linearly with node
//! count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tep_core::hashing::{forest_hash, HashCache};
use tep_core::prelude::HashAlgorithm;
use tep_workloads::paper_database;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_database_hashing");
    group.sample_size(10);
    for k in 1..=4usize {
        let db = paper_database(k, 2009);
        group.throughput(Throughput::Elements(db.node_count() as u64));
        group.bench_with_input(
            BenchmarkId::new("sha1_full_hash", format!("{}nodes", db.node_count())),
            &db,
            |b, db| {
                b.iter(|| {
                    let mut cache = HashCache::new(HashAlgorithm::Sha1);
                    forest_hash(HashAlgorithm::Sha1, &db.forest, &mut cache)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
