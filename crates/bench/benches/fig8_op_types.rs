//! Figures 8 & 9: checksum overhead by operation type (Setup B).
//!
//! One iteration = a full Setup B workload (e.g. 500 row-delete complex
//! operations) on a fresh copy of the paper's table 1, including hashing,
//! signing, and record storage. The paper's shape: all-deletes cheapest;
//! all-inserts ≈ all-updates.
//!
//! Keys are 512-bit here to keep bench wall-time reasonable; the `repro`
//! binary defaults to the paper's 1024-bit keys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tep_bench::experiments::{run_setup_b_once, ExperimentConfig, SetupBWorkload};
use tep_core::prelude::HashAlgorithm;

fn bench_fig8(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        alg: HashAlgorithm::Sha1,
        key_bits: 512,
        runs: 1,
        seed: 2009,
    };
    let (signer, _) = cfg.make_signer();
    let mut group = c.benchmark_group("fig8_setup_b");
    group.sample_size(10);
    for workload in SetupBWorkload::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(workload.label().replace(' ', "_")),
            &workload,
            |b, &workload| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run_setup_b_once(&cfg, &signer, workload, seed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
