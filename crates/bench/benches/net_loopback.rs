//! Verified provenance transfer over loopback TCP: the full
//! fetch → stream-verify → recompute-hash path, serial vs 4 concurrent
//! clients. Complements `repro --net` with Criterion's statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tep_bench::experiments::{run_net_loopback, ExperimentConfig};
use tep_core::prelude::HashAlgorithm;

fn bench_net_loopback(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        alg: HashAlgorithm::Sha256,
        key_bits: 512,
        runs: 2,
        seed: 2009,
    };
    let mut group = c.benchmark_group("net_loopback");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(BenchmarkId::new("verified_fetch", threads), |b| {
            b.iter(|| run_net_loopback(&cfg, 8, threads))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_net_loopback);
criterion_main!(benches);
