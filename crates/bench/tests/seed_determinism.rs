//! Seed-determinism regression: the whole pipeline — RSA keygen, PKCS#1
//! v1.5 signatures, record encoding, the durable CRC-framed log, and the
//! instrumented metric counts the bench harness emits — must be
//! bit-reproducible from a seed. The paper's evaluation (and our
//! BENCH_baseline.json) depends on it: two runs with the same seed must
//! produce byte-identical logs/signatures and identical deterministic
//! metric counts.

use std::io::Read;
use std::path::Path;
use std::sync::Arc;
use tep_bench::experiments::{run_instrumented_metrics, ExperimentConfig};
use tep_core::{ProvenanceTracker, TrackerConfig};
use tep_model::Value;
use tep_storage::vfs::{FaultConfig, FaultVfs, Vfs};
use tep_storage::ProvenanceDb;

fn small_config() -> ExperimentConfig {
    ExperimentConfig {
        key_bits: 512,
        ..Default::default()
    }
}

/// Runs a seeded workload onto a durable log and returns the raw log
/// bytes plus every record's signature.
fn durable_log_bytes(cfg: &ExperimentConfig) -> (Vec<u8>, Vec<Vec<u8>>) {
    let (signer, _keys) = cfg.make_signer();
    let vfs = FaultVfs::new(FaultConfig::default());
    let path = Path::new("/determinism.teplog");
    let db = Arc::new(ProvenanceDb::durable_with(vfs.clone(), path).unwrap());
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: cfg.alg,
            ..Default::default()
        },
        Arc::clone(&db),
    );
    let (root, _) = tracker.insert(&signer, Value::text("dbase"), None).unwrap();
    let (row, _) = tracker.insert(&signer, Value::Null, Some(root)).unwrap();
    let mut cells = Vec::new();
    for i in 0..4i64 {
        let (cell, _) = tracker.insert(&signer, Value::Int(i), Some(row)).unwrap();
        cells.push(cell);
    }
    for (i, &cell) in cells.iter().enumerate() {
        tracker
            .update(&signer, cell, Value::Int(10 + i as i64))
            .unwrap();
    }
    db.sync().unwrap();

    let signatures = db
        .all_records()
        .iter()
        .map(|r| r.checksum.clone())
        .collect();
    let mut bytes = Vec::new();
    vfs.open_rw(path).unwrap().read_to_end(&mut bytes).unwrap();
    (bytes, signatures)
}

#[test]
fn same_seed_produces_byte_identical_logs_and_signatures() {
    let cfg = small_config();
    let (bytes_a, sigs_a) = durable_log_bytes(&cfg);
    let (bytes_b, sigs_b) = durable_log_bytes(&cfg);
    assert!(!bytes_a.is_empty());
    assert_eq!(sigs_a, sigs_b, "signatures drifted between same-seed runs");
    assert_eq!(bytes_a, bytes_b, "log bytes drifted between same-seed runs");
}

#[test]
fn different_seed_produces_different_signatures() {
    // Guards against the test above passing vacuously (e.g. the seed being
    // ignored): a different seed yields different keys, hence signatures.
    let (_, sigs_a) = durable_log_bytes(&small_config());
    let (_, sigs_b) = durable_log_bytes(&ExperimentConfig {
        seed: 2010,
        ..small_config()
    });
    assert_ne!(sigs_a, sigs_b);
}

#[test]
fn same_seed_produces_identical_metric_counts() {
    let cfg = small_config();
    let a = run_instrumented_metrics(&cfg);
    let b = run_instrumented_metrics(&cfg);
    assert_eq!(a, b, "deterministic metric counts drifted");

    // The instrumented workload must actually span every layer: at least
    // one nonzero counter per crate prefix.
    for prefix in [
        "tep_crypto_",
        "tep_core_",
        "tep_storage_",
        "tep_net_",
        "tep_query_",
    ] {
        assert!(
            a.iter().any(|(name, v)| name.starts_with(prefix) && *v > 0),
            "no nonzero {prefix}* metric in {a:?}",
        );
    }
}
