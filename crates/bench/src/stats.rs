//! Summary statistics: mean and 95% confidence intervals, as the paper
//! reports ("the average across 100 runs, including 95% confidence
//! intervals", §5.1).

/// Mean and 95% confidence half-width of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (normal approximation;
    /// zero for fewer than two samples).
    pub ci95: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Computes mean and CI from raw samples.
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary::default();
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Summary { mean, ci95: 0.0, n };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let se = (var / n as f64).sqrt();
        Summary {
            mean,
            ci95: 1.96 * se,
            n,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.ci95)
    }
}

/// Nanoseconds → milliseconds.
pub fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert_eq!(Summary::of(&[]), Summary::default());
        let s = Summary::of(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn constant_samples_have_zero_ci() {
        let s = Summary::of(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_values() {
        // samples 1..=5: mean 3, sample variance 2.5, se = sqrt(0.5).
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.ci95 - 1.96 * 0.5f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn unit_conversion() {
        assert_eq!(ns_to_ms(1_500_000), 1.5);
    }
}
