//! Experiment runners regenerating every table and figure of the paper's
//! evaluation (§5), plus the extension experiments DESIGN.md calls out.
//!
//! Each `run_*` function is pure measurement machinery shared by the
//! `repro` binary (which prints paper-style tables) and the Criterion
//! benches (which wrap the same code for statistically rigorous timing).

use crate::stats::{ns_to_ms, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tep_core::hashing::{forest_hash, HashCache, HashingStrategy};
use tep_core::prelude::*;
use tep_core::Metrics;
use tep_crypto::pki::Participant;
use tep_model::{Forest, ObjectId};
use tep_storage::{quarantine_path, ProvenanceDb, StoredRecord};
use tep_workloads::{
    paper_database, setup_a_updates, setup_b_delete_rows, setup_b_insert_rows,
    setup_b_update_cells, setup_c_mix, stream_title_database, ComplexOp, MixSpec, TablePlan,
    PAPER_C_MIXES, PAPER_TABLES,
};

/// Shared experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Hash algorithm (the paper used SHA-1).
    pub alg: HashAlgorithm,
    /// RSA modulus size (the paper used 1024-bit keys → 128-byte checksums).
    pub key_bits: usize,
    /// Repetitions per data point (the paper used 100).
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            alg: HashAlgorithm::Sha1,
            key_bits: 1024,
            runs: 5,
            seed: 2009,
        }
    }
}

impl ExperimentConfig {
    /// Enrolls a signer (and its key directory) for tracked experiments.
    pub fn make_signer(&self) -> (Participant, KeyDirectory) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5157_9CA5);
        let ca = CertificateAuthority::new(self.key_bits.max(512), self.alg, &mut rng);
        let signer = ca.enroll(ParticipantId(1), self.key_bits, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), self.alg);
        keys.register(signer.certificate().clone()).unwrap();
        (signer, keys)
    }
}

// ---------------------------------------------------------------------------
// Figure 6 — average hashing time for a database vs. size
// ---------------------------------------------------------------------------

/// One Figure 6 data point.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Number of tables in the combination (Table 1(b)).
    pub tables: usize,
    /// Total node count.
    pub nodes: usize,
    /// Full-database hashing time (ms).
    pub time_ms: Summary,
}

/// Hashes each of the four paper databases from scratch, `cfg.runs` times.
pub fn run_fig6(cfg: &ExperimentConfig) -> Vec<Fig6Row> {
    (1..=4)
        .map(|k| {
            let db = paper_database(k, cfg.seed + k as u64);
            let samples: Vec<f64> = (0..cfg.runs)
                .map(|_| {
                    let mut cache = HashCache::new(cfg.alg);
                    let t = Instant::now();
                    let h = forest_hash(cfg.alg, &db.forest, &mut cache);
                    let elapsed = ns_to_ms(t.elapsed().as_nanos() as u64);
                    std::hint::black_box(h);
                    elapsed
                })
                .collect();
            Fig6Row {
                tables: k,
                nodes: db.node_count(),
                time_ms: Summary::of(&samples),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 7 — hashing the output tree: Basic vs Economical
// ---------------------------------------------------------------------------

/// One Figure 7 data point.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Number of cells updated by the complex operation.
    pub cells: usize,
    /// Number of distinct rows the updates land in.
    pub rows: usize,
    /// Output-tree hashing time with the Basic strategy (ms).
    pub basic_ms: Summary,
    /// Output-tree hashing time with the Economical strategy (ms).
    pub economical_ms: Summary,
}

/// The paper's Setup A sweep: 1 update; 400n updates in 400n rows
/// (n = 1…10); 4000n updates in 4000 rows (n = 2…8).
pub fn fig7_cell_counts() -> Vec<(usize, usize)> {
    let mut out = vec![(1usize, 1usize)];
    for n in 1..=10 {
        out.push((400 * n, 400 * n));
    }
    for n in 2..=8 {
        out.push((4000 * n, 4000));
    }
    out
}

/// Measures output-tree hashing only (no signing — Figure 7 isolates the
/// hashing strategies) across the full paper sweep.
pub fn run_fig7(cfg: &ExperimentConfig) -> Vec<Fig7Row> {
    run_fig7_points(cfg, &fig7_cell_counts())
}

/// Figure 7 measurement for specific `(cells, rows)` points.
pub fn run_fig7_points(cfg: &ExperimentConfig, points: &[(usize, usize)]) -> Vec<Fig7Row> {
    points
        .iter()
        .copied()
        .map(|(cells, rows)| {
            let mut basic = Vec::with_capacity(cfg.runs);
            let mut economical = Vec::with_capacity(cfg.runs);
            for run in 0..cfg.runs {
                let db = paper_database(1, cfg.seed);
                let mut forest = db.forest;
                let handle = &db.tables[0];
                let ops = setup_a_updates(handle, cells, rows, cfg.seed + run as u64);

                // Warm a cache on the pre-state (the "input tree" is hashed
                // either way; Figure 7 plots the OUTPUT walk).
                let mut cache = HashCache::new(cfg.alg);
                cache.get_or_compute(&forest, db.root);
                forest.clear_dirty();

                // Apply the updates; the forest's dirty log records the
                // touched paths.
                for op in &ops {
                    op.apply(&mut forest).expect("setup A ops are valid");
                }

                // Economical: drain the dirty log, recompute bottom-up.
                let mut eco_cache = cache.clone();
                let t = Instant::now();
                eco_cache.sync(&mut forest);
                let h1 = eco_cache.get_or_compute(&forest, db.root);
                economical.push(ns_to_ms(t.elapsed().as_nanos() as u64));

                // Basic: full re-walk of the output tree.
                let mut basic_cache = cache;
                let t = Instant::now();
                basic_cache.clear();
                let h2 = basic_cache.get_or_compute(&forest, db.root);
                basic.push(ns_to_ms(t.elapsed().as_nanos() as u64));

                assert_eq!(h1, h2, "strategies must agree");
            }
            Fig7Row {
                cells,
                rows,
                basic_ms: Summary::of(&basic),
                economical_ms: Summary::of(&economical),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 8 & 9 — time/space overhead by operation type (Setup B)
// ---------------------------------------------------------------------------

/// The four Setup B workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetupBWorkload {
    /// 500 row-delete complex operations.
    Deletes500,
    /// 500 row-insert complex operations.
    Inserts500,
    /// 4000 cell updates grouped into 500 per-row complex operations.
    Updates4000In500Rows,
    /// 4000 cell updates as 4000 single-update complex operations.
    Updates4000In4000Rows,
}

impl SetupBWorkload {
    /// All four workloads in the paper's order.
    pub const ALL: [SetupBWorkload; 4] = [
        SetupBWorkload::Deletes500,
        SetupBWorkload::Inserts500,
        SetupBWorkload::Updates4000In500Rows,
        SetupBWorkload::Updates4000In4000Rows,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SetupBWorkload::Deletes500 => "500 row deletes",
            SetupBWorkload::Inserts500 => "500 row inserts",
            SetupBWorkload::Updates4000In500Rows => "4000 updates / 500 rows",
            SetupBWorkload::Updates4000In4000Rows => "4000 updates / 4000 rows",
        }
    }
}

/// One Figure 8/9 data point.
#[derive(Clone, Debug)]
pub struct SetupBRow {
    /// Which workload.
    pub workload: SetupBWorkload,
    /// Total checksum-overhead time across the workload (ms).
    pub total_ms: Summary,
    /// Phase breakdown (from the last run).
    pub metrics: Metrics,
}

/// Runs one Setup B workload once, returning accumulated metrics.
pub fn run_setup_b_once(
    cfg: &ExperimentConfig,
    signer: &Participant,
    workload: SetupBWorkload,
    run_seed: u64,
) -> Metrics {
    let db = paper_database(1, cfg.seed);
    let mut plan = TablePlan::new(
        &db.tables[0],
        PAPER_TABLES[0].num_attrs,
        db.forest.next_id_hint(),
    );
    let groups: Vec<ComplexOp> = match workload {
        SetupBWorkload::Deletes500 => setup_b_delete_rows(&mut plan, 500, run_seed),
        SetupBWorkload::Inserts500 => setup_b_insert_rows(&mut plan, 500, run_seed),
        SetupBWorkload::Updates4000In500Rows => setup_b_update_cells(&plan, 4000, 500, run_seed),
        SetupBWorkload::Updates4000In4000Rows => setup_b_update_cells(&plan, 4000, 4000, run_seed),
    };
    let mut tracker = ProvenanceTracker::adopt(
        db.forest,
        TrackerConfig {
            alg: cfg.alg,
            strategy: HashingStrategy::Economical,
        },
        Arc::new(ProvenanceDb::in_memory()),
    );
    let mut total = Metrics::default();
    for group in &groups {
        let report = tracker
            .complex(signer, group)
            .expect("setup B ops are valid");
        total.accumulate(&report.metrics);
    }
    total
}

/// Runs all Setup B workloads `cfg.runs` times (Figures 8 and 9).
pub fn run_setup_b(cfg: &ExperimentConfig, signer: &Participant) -> Vec<SetupBRow> {
    SetupBWorkload::ALL
        .iter()
        .map(|&workload| {
            let mut samples = Vec::with_capacity(cfg.runs);
            let mut last = Metrics::default();
            for run in 0..cfg.runs {
                let m = run_setup_b_once(cfg, signer, workload, cfg.seed + 31 * run as u64);
                samples.push(ns_to_ms(m.total_ns()));
                last = m;
            }
            SetupBRow {
                workload,
                total_ms: Summary::of(&samples),
                metrics: last,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 10 & 11 — time/space for mixed operations (Setup C)
// ---------------------------------------------------------------------------

/// One Figure 10/11 data point.
#[derive(Clone, Debug)]
pub struct SetupCRow {
    /// The operation mix.
    pub mix: MixSpec,
    /// Total checksum-overhead time (ms).
    pub total_ms: Summary,
    /// Phase breakdown (from the last run): hashing / signing / storing.
    pub metrics: Metrics,
}

/// Runs one Setup C mix once.
pub fn run_setup_c_once(
    cfg: &ExperimentConfig,
    signer: &Participant,
    mix: MixSpec,
    run_seed: u64,
) -> Metrics {
    let db = paper_database(1, cfg.seed);
    let mut plan = TablePlan::new(
        &db.tables[0],
        PAPER_TABLES[0].num_attrs,
        db.forest.next_id_hint(),
    );
    let groups = setup_c_mix(&mut plan, mix, run_seed);
    let mut tracker = ProvenanceTracker::adopt(
        db.forest,
        TrackerConfig {
            alg: cfg.alg,
            strategy: HashingStrategy::Economical,
        },
        Arc::new(ProvenanceDb::in_memory()),
    );
    let mut total = Metrics::default();
    for group in &groups {
        let report = tracker
            .complex(signer, group)
            .expect("setup C ops are valid");
        total.accumulate(&report.metrics);
    }
    total
}

/// Runs every Setup C mix `cfg.runs` times (Figures 10 and 11).
pub fn run_setup_c(cfg: &ExperimentConfig, signer: &Participant) -> Vec<SetupCRow> {
    PAPER_C_MIXES
        .iter()
        .map(|&mix| {
            let mut samples = Vec::with_capacity(cfg.runs);
            let mut last = Metrics::default();
            for run in 0..cfg.runs {
                let m = run_setup_c_once(cfg, signer, mix, cfg.seed + 97 * run as u64);
                samples.push(ns_to_ms(m.total_ns()));
                last = m;
            }
            SetupCRow {
                mix,
                total_ms: Summary::of(&samples),
                metrics: last,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §5.2 — large-scale streaming hash
// ---------------------------------------------------------------------------

/// Result of the streaming hash experiment.
#[derive(Clone, Debug)]
pub struct LargeResult {
    /// Rows generated and hashed.
    pub rows: u64,
    /// Total nodes hashed.
    pub nodes: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Average per-node hashing time in milliseconds (the paper reports
    /// 0.02156 ms/node on 2009 hardware).
    pub ms_per_node: f64,
}

/// Streams and times the Title database at the given row count.
pub fn run_large(alg: HashAlgorithm, rows: u64) -> LargeResult {
    let t = Instant::now();
    let result = stream_title_database(alg, rows);
    let seconds = t.elapsed().as_secs_f64();
    LargeResult {
        rows,
        nodes: result.nodes,
        seconds,
        ms_per_node: seconds * 1e3 / result.nodes as f64,
    }
}

// ---------------------------------------------------------------------------
// Extension X2 — local vs global checksum chaining (§3.2)
// ---------------------------------------------------------------------------

/// Result of the chaining-concurrency ablation.
#[derive(Clone, Debug)]
pub struct ChainingResult {
    /// Worker thread count.
    pub threads: usize,
    /// Updates per thread.
    pub ops_per_thread: usize,
    /// Wall time with per-object (local) chains, one ledger per thread (ms).
    pub local_ms: f64,
    /// Wall time with one global chain serializing all participants (ms).
    pub global_ms: f64,
}

impl ChainingResult {
    /// Updates per second achieved by each thread under local chaining.
    pub fn local_ops_per_thread_per_sec(&self) -> f64 {
        self.ops_per_thread as f64 / (self.local_ms / 1e3)
    }

    /// Updates per second achieved by each thread under global chaining.
    pub fn global_ops_per_thread_per_sec(&self) -> f64 {
        self.ops_per_thread as f64 / (self.global_ms / 1e3)
    }
}

/// Busy-waits for exactly `d`. `thread::sleep` rounds up to the OS timer
/// granularity and jitters with scheduler load (±15% swings observed at
/// 200µs), which drowned out the local-vs-global signal; a calibrated spin
/// is deterministic to well under a microsecond.
fn spin_wait(d: std::time::Duration) {
    let t = Instant::now();
    while t.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// Compares per-object chains (participants work in parallel) against a
/// single global chain (every record serialized through one mutex-guarded
/// chain head) — the §3.2 argument for local chaining.
///
/// `commit_latency` models the per-record commit cost that cannot be
/// overlapped under a global chain (a durable write or a round-trip to a
/// shared provenance repository): building record *i+1* of a chain needs
/// record *i*'s checksum, so a **global** chain pays the latency
/// sequentially across *all* participants, while **local** chains pay it
/// sequentially only within each participant's own object and overlap
/// across participants. This keeps the comparison meaningful even on a
/// single-core host, where raw CPU parallelism cannot show.
pub fn run_chaining(
    cfg: &ExperimentConfig,
    threads: usize,
    ops_per_thread: usize,
) -> ChainingResult {
    let participants = chaining_participants(cfg, threads);
    ChainingResult {
        threads,
        ops_per_thread,
        local_ms: chaining_local_ms(cfg, &participants, ops_per_thread),
        global_ms: chaining_global_ms(cfg, &participants, ops_per_thread),
    }
}

/// The simulated per-record commit latency (durable write / repository
/// round-trip) that chaining order forces to serialize.
pub const CHAINING_COMMIT_LATENCY: std::time::Duration = std::time::Duration::from_micros(200);

/// Enrolls one participant per worker thread, deterministically from
/// `cfg.seed`.
pub fn chaining_participants(cfg: &ExperimentConfig, threads: usize) -> Vec<Participant> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC4A1);
    let ca = CertificateAuthority::new(cfg.key_bits.max(512), cfg.alg, &mut rng);
    (0..threads)
        .map(|i| ca.enroll(ParticipantId(i as u64 + 1), cfg.key_bits, &mut rng))
        .collect()
}

/// Local chains: each participant owns an object; chains never contend
/// (one ledger per thread, as §3.2 describes). Commit latency overlaps
/// across participants. Returns wall time in ms.
pub fn chaining_local_ms(
    cfg: &ExperimentConfig,
    participants: &[Participant],
    ops_per_thread: usize,
) -> f64 {
    let t = Instant::now();
    std::thread::scope(|s| {
        for p in participants {
            s.spawn(move || {
                let mut ledger = AtomicLedger::new(cfg.alg, Arc::new(ProvenanceDb::in_memory()));
                let obj = ledger.insert(p, tep_model::Value::Int(0)).unwrap();
                for i in 0..ops_per_thread as i64 {
                    ledger.update(p, obj, tep_model::Value::Int(i)).unwrap();
                    spin_wait(CHAINING_COMMIT_LATENCY);
                }
            });
        }
    });
    ns_to_ms(t.elapsed().as_nanos() as u64)
}

/// Global chain: one shared ledger and one shared object — every record
/// must take the lock, extend the single chain, and commit before the
/// next participant can chain onto it. Returns wall time in ms.
pub fn chaining_global_ms(
    cfg: &ExperimentConfig,
    participants: &[Participant],
    ops_per_thread: usize,
) -> f64 {
    use parking_lot::Mutex;

    let ledger = Mutex::new(AtomicLedger::new(
        cfg.alg,
        Arc::new(ProvenanceDb::in_memory()),
    ));
    let obj = ledger
        .lock()
        .insert(&participants[0], tep_model::Value::Int(0))
        .unwrap();
    let t = Instant::now();
    std::thread::scope(|s| {
        for p in participants {
            let ledger = &ledger;
            s.spawn(move || {
                for i in 0..ops_per_thread as i64 {
                    let mut guard = ledger.lock();
                    guard.update(p, obj, tep_model::Value::Int(i)).unwrap();
                    // The commit is part of the critical section: the next
                    // record needs this record's (durable) checksum.
                    spin_wait(CHAINING_COMMIT_LATENCY);
                }
            });
        }
    });
    ns_to_ms(t.elapsed().as_nanos() as u64)
}

// ---------------------------------------------------------------------------
// Extension — parameter ablation: hash algorithm × RSA key size
// ---------------------------------------------------------------------------

/// One ablation data point.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Hash algorithm.
    pub alg: HashAlgorithm,
    /// RSA modulus bits.
    pub key_bits: usize,
    /// Total checksum overhead for the fixed workload (ms).
    pub total_ms: Summary,
    /// Phase breakdown from the last run.
    pub metrics: Metrics,
    /// Bytes per stored checksum row.
    pub row_bytes_per_record: u64,
}

/// Fixed workload for the ablation: 100 single-cell updates (each a
/// complex op producing 4 records on the depth-4 tree).
fn ablation_workload(cfg: &ExperimentConfig) -> (tep_model::Forest, Vec<ComplexOp>) {
    let db = paper_database(1, cfg.seed);
    let plan = TablePlan::new(
        &db.tables[0],
        PAPER_TABLES[0].num_attrs,
        db.forest.next_id_hint(),
    );
    let groups = setup_b_update_cells(&plan, 100, 100, cfg.seed ^ 0xAB);
    (db.forest, groups)
}

/// Sweeps the scheme's two cryptographic parameters — hash function
/// (SHA-1 as in the paper vs SHA-256) and RSA key size (512/1024/2048) —
/// over a fixed update workload. Quantifies the cost of upgrading the
/// paper's 2009 parameters to modern ones.
pub fn run_ablation(cfg: &ExperimentConfig) -> Vec<AblationRow> {
    let mut out = Vec::new();
    for alg in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
        for key_bits in [512usize, 1024, 2048] {
            let sub_cfg = ExperimentConfig {
                alg,
                key_bits,
                ..*cfg
            };
            let (signer, _) = sub_cfg.make_signer();
            let mut samples = Vec::with_capacity(cfg.runs);
            let mut last = Metrics::default();
            for _ in 0..cfg.runs {
                let (forest, groups) = ablation_workload(&sub_cfg);
                let mut tracker = ProvenanceTracker::adopt(
                    forest,
                    TrackerConfig {
                        alg,
                        strategy: HashingStrategy::Economical,
                    },
                    Arc::new(ProvenanceDb::in_memory()),
                );
                let mut total = Metrics::default();
                for group in &groups {
                    let report = tracker.complex(&signer, group).expect("valid ops");
                    total.accumulate(&report.metrics);
                }
                samples.push(ns_to_ms(total.total_ns()));
                last = total;
            }
            out.push(AblationRow {
                alg,
                key_bits,
                total_ms: Summary::of(&samples),
                row_bytes_per_record: last.row_bytes.checked_div(last.records).unwrap_or(0),
                metrics: last,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Extension — verification cost vs. history length
// ---------------------------------------------------------------------------

/// One verification-cost data point.
#[derive(Clone, Debug)]
pub struct VerifyRow {
    /// Chain length (records).
    pub chain_len: usize,
    /// Time to collect + verify the provenance object (ms).
    pub verify_ms: Summary,
}

/// Measures recipient-side verification time as history grows.
pub fn run_verify_cost(cfg: &ExperimentConfig, lens: &[usize]) -> Vec<VerifyRow> {
    let (signer, keys) = cfg.make_signer();
    lens.iter()
        .map(|&len| {
            assert!(len >= 1);
            let mut ledger = AtomicLedger::new(cfg.alg, Arc::new(ProvenanceDb::in_memory()));
            let obj = ledger.insert(&signer, tep_model::Value::Int(0)).unwrap();
            for i in 1..len as i64 {
                ledger
                    .update(&signer, obj, tep_model::Value::Int(i))
                    .unwrap();
            }
            let hash = ledger.object_hash(obj).unwrap();
            let samples: Vec<f64> = (0..cfg.runs)
                .map(|_| {
                    let t = Instant::now();
                    let prov = ledger.provenance_of(obj).unwrap();
                    let v = Verifier::new(&keys, cfg.alg).verify(&hash, &prov);
                    let elapsed = ns_to_ms(t.elapsed().as_nanos() as u64);
                    assert!(v.verified());
                    elapsed
                })
                .collect();
            VerifyRow {
                chain_len: len,
                verify_ms: Summary::of(&samples),
            }
        })
        .collect()
}

/// Builds a bare forest for hashing micro-experiments (used by benches).
pub fn table1_forest(seed: u64) -> (Forest, ObjectId) {
    let db = paper_database(1, seed);
    (db.forest, db.root)
}

// ---------------------------------------------------------------------------
// Network loopback transfer throughput (tep-net)
// ---------------------------------------------------------------------------

/// Throughput of fully-verified provenance transfers over loopback TCP.
#[derive(Clone, Copy, Debug)]
pub struct NetLoopbackResult {
    /// Verified fetches performed in the serial pass.
    pub fetches: u64,
    /// Provenance records per transferred object.
    pub records_per_object: u64,
    /// Data nodes per transferred object.
    pub nodes_per_object: u64,
    /// Single-client verified objects per second.
    pub serial_objects_per_sec: f64,
    /// Single-client wire throughput, MiB/s received.
    pub serial_mib_per_sec: f64,
    /// Concurrent client threads in the parallel pass.
    pub threads: usize,
    /// Aggregate verified objects per second with `threads` clients.
    pub parallel_objects_per_sec: f64,
    /// Aggregate wire throughput with `threads` clients, MiB/s.
    pub parallel_mib_per_sec: f64,
}

/// Serves a mid-size compound object from an in-process `tep-net` server
/// and fetches it with full streaming verification — once from a single
/// client, then the same total fetch count split over `threads` concurrent
/// clients. Every fetch re-verifies every record signature and recomputes
/// the object hash, so this measures the *verified* transfer path, not raw
/// socket throughput.
pub fn run_net_loopback(cfg: &ExperimentConfig, fetches: u64, threads: usize) -> NetLoopbackResult {
    use tep_net::{serve, Catalog, Client, ClientConfig, ServerConfig};

    let threads = threads.max(1);
    let (signer, keys) = cfg.make_signer();
    let db = Arc::new(ProvenanceDb::in_memory());
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: cfg.alg,
            strategy: HashingStrategy::Economical,
        },
        Arc::clone(&db),
    );
    let (root, _) = tracker
        .insert(&signer, tep_model::Value::text("bench-db"), None)
        .unwrap();
    let (table, _) = tracker
        .insert(&signer, tep_model::Value::text("t0"), Some(root))
        .unwrap();
    for r in 0..32i64 {
        let (row, _) = tracker
            .insert(&signer, tep_model::Value::Null, Some(table))
            .unwrap();
        for c in 0..4i64 {
            tracker
                .insert(&signer, tep_model::Value::Int(r * 4 + c), Some(row))
                .unwrap();
        }
    }
    let catalog = Arc::new(Catalog::new(
        tracker.forest().clone(),
        db,
        cfg.alg,
        vec![root],
    ));
    let server = serve(
        catalog,
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig {
            workers: threads,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // One client performing `n` verified fetches; returns (bytes received,
    // records/object, nodes/object).
    let fetch_loop = |n: u64| -> (u64, u64, u64) {
        let mut client = Client::new(addr, ClientConfig::new(cfg.alg));
        let (mut recs, mut nodes) = (0u64, 0u64);
        for _ in 0..n {
            let rep = client.fetch_verified(root, &keys).unwrap();
            recs = rep.records;
            nodes = rep.nodes;
        }
        (client.counters().bytes_received, recs, nodes)
    };

    let t = Instant::now();
    let (bytes, records_per_object, nodes_per_object) = fetch_loop(fetches);
    let serial = t.elapsed().as_secs_f64();

    let per_thread = (fetches / threads as u64).max(1);
    let fetch_loop = &fetch_loop;
    let t = Instant::now();
    let par_bytes: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| s.spawn(move || fetch_loop(per_thread).0))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let parallel = t.elapsed().as_secs_f64();
    let par_fetches = per_thread * threads as u64;
    server.shutdown();

    const MIB: f64 = (1u64 << 20) as f64;
    NetLoopbackResult {
        fetches,
        records_per_object,
        nodes_per_object,
        serial_objects_per_sec: fetches as f64 / serial,
        serial_mib_per_sec: bytes as f64 / MIB / serial,
        threads,
        parallel_objects_per_sec: par_fetches as f64 / parallel,
        parallel_mib_per_sec: par_bytes as f64 / MIB / parallel,
    }
}

// ---------------------------------------------------------------------------
// Net scale — event-loop fan-in with cross-connection batch verify
// ---------------------------------------------------------------------------

/// Throughput of the event-loop server under many concurrent client
/// connections, with signature verification batched *across* connections.
#[derive(Clone, Copy, Debug)]
pub struct NetScaleResult {
    /// Concurrent client threads (each reconnecting per fetch).
    pub connections: usize,
    /// Objects fetched and verified in total, across all connections.
    pub objects: u64,
    /// Provenance records per object.
    pub records_per_object: u64,
    /// Aggregate verified objects per second.
    pub objects_per_sec: f64,
    /// Aggregate wire throughput, MiB/s received.
    pub mib_per_sec: f64,
    /// p99 per-fetch latency — connect, handshake, stream, and the batched
    /// verification verdict — in milliseconds (bucketed upper bound).
    pub p99_latency_ms: f64,
}

/// Latency buckets for the per-fetch histogram, in milliseconds.
const NET_SCALE_LAT_MS: [u64; 14] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10_000, 30_000,
];

/// Fans `connections` client threads into one event-loop server, each
/// fetching a small update-chained object in a loop and submitting the
/// arrived provenance to a **shared** [`tep_core::VerifyBatcher`] (the
/// cross-connection batch-verify path). Small objects on purpose: this
/// experiment measures connection fan-in, event-loop turnaround, and
/// batching overhead — `net_loopback` covers bulk streaming of a large
/// object.
pub fn run_net_scale(cfg: &ExperimentConfig, connections: usize, objects: u64) -> NetScaleResult {
    use tep_core::{BatcherConfig, VerifyBatcher};
    use tep_net::{serve, Catalog, Client, ClientConfig, RetryPolicy, ServerConfig};
    use tep_obs::Registry;

    let connections = connections.max(1);
    let per_conn = (objects / connections as u64).max(1);
    let (signer, keys) = cfg.make_signer();
    let db = Arc::new(ProvenanceDb::in_memory());
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: cfg.alg,
            strategy: HashingStrategy::Economical,
        },
        Arc::clone(&db),
    );
    let (chain, _) = tracker
        .insert(&signer, tep_model::Value::Int(0), None)
        .unwrap();
    for i in 1..12i64 {
        tracker
            .update(&signer, chain, tep_model::Value::Int(i))
            .unwrap();
    }
    let catalog = Arc::new(Catalog::new(
        tracker.forest().clone(),
        db,
        cfg.alg,
        vec![chain],
    ));
    let server = serve(
        catalog,
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig {
            queue_depth: connections * 2,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            connection_deadline: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let keys = Arc::new(keys);
    let batcher = VerifyBatcher::new(Arc::clone(&keys), cfg.alg, BatcherConfig::default(), None);
    let registry = Registry::new();

    let t = Instant::now();
    let (bytes, records_per_object) = std::thread::scope(|s| {
        let batcher = &batcher;
        let registry = &registry;
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                s.spawn(move || {
                    let lat = registry.histogram("tep_bench_net_scale_fetch_ms", &NET_SCALE_LAT_MS);
                    let mut c = ClientConfig::new(cfg.alg);
                    c.read_timeout = Duration::from_secs(10);
                    c.retry = RetryPolicy {
                        max_attempts: 5,
                        base: Duration::from_millis(1),
                        cap: Duration::from_millis(20),
                        ..RetryPolicy::default()
                    };
                    let mut client = Client::new(addr, c);
                    let mut records = 0u64;
                    for _ in 0..per_conn {
                        let t = Instant::now();
                        let v = client
                            .fetch_batched(chain, batcher)
                            .expect("net-scale fetch failed");
                        lat.observe(t.elapsed().as_millis() as u64);
                        records = v.records_checked as u64;
                    }
                    (client.counters().bytes_received, records)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("net-scale client thread panicked"))
            .fold((0u64, 0u64), |(bytes, _), (b, r)| (bytes + b, r))
    });
    let secs = t.elapsed().as_secs_f64();
    server.shutdown();
    drop(batcher);

    let lat = registry.histogram("tep_bench_net_scale_fetch_ms", &NET_SCALE_LAT_MS);
    let total = per_conn * connections as u64;
    const MIB: f64 = (1u64 << 20) as f64;
    NetScaleResult {
        connections,
        objects: total,
        records_per_object,
        objects_per_sec: total as f64 / secs,
        mib_per_sec: bytes as f64 / MIB / secs,
        p99_latency_ms: lat
            .quantile(0.99)
            .unwrap_or(*NET_SCALE_LAT_MS.last().unwrap()) as f64,
    }
}

// ---------------------------------------------------------------------------
// Verifiable query throughput (`repro --query`)
// ---------------------------------------------------------------------------

/// Per-operator throughput of the query engine.
#[derive(Clone, Debug)]
pub struct QueryOpStats {
    /// Operator name (`ancestors`, `descendants`, `lineage`, `audit`,
    /// `polynomial`).
    pub op: &'static str,
    /// Queries executed.
    pub queries: u64,
    /// Proof-producing queries per second.
    pub ops_per_sec: f64,
    /// p99 per-query latency in milliseconds (bucketed upper bound).
    pub p99_ms: f64,
    /// Mean records per answered slice.
    pub mean_slice_records: f64,
}

/// `repro --query`: tep-query over a seeded lineage DAG.
#[derive(Clone, Debug)]
pub struct QueryBenchResult {
    /// Records in the generated DAG.
    pub records: u64,
    /// Distinct objects.
    pub objects: u64,
    /// Participants records are attributed to.
    pub participants: u64,
    /// Wall time to generate the DAG (not a tep-query cost — reported so
    /// headline runs can separate setup from measurement).
    pub generate_ms: f64,
    /// One-shot secondary-index build over the full log, in ms.
    pub index_build_ms: f64,
    /// Per-operator stats, in [`tep_core::slice::QueryOp::ALL`] order.
    pub ops: Vec<QueryOpStats>,
}

/// Latency buckets for per-query latency, in microseconds.
const QUERY_LAT_US: [u64; 16] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10_000, 25_000, 100_000, 1_000_000,
];

/// Builds a `records`-record lineage DAG (`tep_workloads::lineage`), builds
/// the secondary indexes once over the whole log, then drives every query
/// operator over rotating targets: ancestors/descendants/lineage/polynomial
/// against sampled cluster-closing objects (worst-case closures for the
/// DAG's shape), audits against rotating participants. Every query
/// materializes its full [`tep_core::slice::SliceProof`] — this measures
/// the cost of *provable* answers, not bare traversals.
pub fn run_query(cfg: &ExperimentConfig, records: u64) -> QueryBenchResult {
    use tep_core::slice::{QueryBounds, QueryOp, QuerySpec};
    use tep_obs::Registry;
    use tep_query::QueryEngine;
    use tep_workloads::build_lineage_db;

    let t = Instant::now();
    let dag = build_lineage_db(records, cfg.seed);
    let generate_ms = t.elapsed().as_secs_f64() * 1e3;

    let registry = Registry::new();
    let mut engine = QueryEngine::new(Arc::clone(&dag.db), cfg.alg);
    engine.attach_obs(&registry);
    let t = Instant::now();
    engine.sync();
    let index_build_ms = t.elapsed().as_secs_f64() * 1e3;

    let iters = ((cfg.runs as u64) * 64).clamp(64, 512);
    let ops = QueryOp::ALL
        .iter()
        .map(|&op| {
            let name = op.name();
            let lat = registry.histogram(&format!("tep_bench_query_{name}_us"), &QUERY_LAT_US);
            let mut slice_records = 0u64;
            let t = Instant::now();
            for i in 0..iters {
                let spec = match op {
                    QueryOp::AuditSlice => {
                        QuerySpec::audit(tep_crypto::pki::ParticipantId(1 + i % dag.participants))
                    }
                    // Forward queries start at cluster roots (everything
                    // downstream), backward ones at cluster closers
                    // (everything upstream).
                    QueryOp::Descendants => QuerySpec {
                        op,
                        target: dag.roots[(i as usize) % dag.roots.len()],
                        participant: None,
                        bounds: QueryBounds::default(),
                    },
                    _ => QuerySpec {
                        op,
                        target: dag.targets[(i as usize) % dag.targets.len()],
                        participant: None,
                        bounds: QueryBounds::default(),
                    },
                };
                let q = Instant::now();
                let proof = engine
                    .execute(&spec)
                    .expect("query bench: slice exceeded the engine cap");
                lat.observe(q.elapsed().as_micros() as u64);
                slice_records += proof.records.len() as u64;
            }
            let secs = t.elapsed().as_secs_f64();
            QueryOpStats {
                op: name,
                queries: iters,
                ops_per_sec: iters as f64 / secs,
                p99_ms: lat.quantile(0.99).unwrap_or(*QUERY_LAT_US.last().unwrap()) as f64 / 1e3,
                mean_slice_records: slice_records as f64 / iters as f64,
            }
        })
        .collect();

    QueryBenchResult {
        records: dag.records,
        objects: dag.objects,
        participants: dag.participants,
        generate_ms,
        index_build_ms,
        ops,
    }
}

// ---------------------------------------------------------------------------
// Crash-recovery cost (`repro --crash`)
// ---------------------------------------------------------------------------

/// Durable-store reopen cost on the real filesystem, for the three recovery
/// paths: clean, torn tail (truncate), interior corruption (quarantine +
/// atomic rewrite).
#[derive(Clone, Debug)]
pub struct RecoveryResult {
    /// Records in the store when each reopen ran.
    pub records: u64,
    /// Reopen latency of a cleanly closed store (ms).
    pub clean_reopen_ms: f64,
    /// Records recovered per second on the clean reopen.
    pub clean_records_per_sec: f64,
    /// Reopen latency with a torn tail frame to truncate (ms).
    pub torn_reopen_ms: f64,
    /// Reopen latency with one interior corrupt frame — sidecar write plus
    /// atomic rewrite of the whole log (ms).
    pub quarantine_reopen_ms: f64,
}

/// Builds a `records`-record durable store, then times the three reopen
/// paths. Recovery cost is CRC scanning and rewriting, so the records carry
/// realistic sizes (128-byte checksum, 64-byte payload) but no signatures.
pub fn run_recovery(cfg: &ExperimentConfig, records: u64) -> RecoveryResult {
    let path = std::env::temp_dir().join(format!(
        "tep-bench-recovery-{}-{}.teplog",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(quarantine_path(&path));

    {
        let db = ProvenanceDb::durable(&path).unwrap();
        for seq in 0..records {
            db.append(StoredRecord {
                seq_id: seq,
                participant: ParticipantId(1),
                oid: ObjectId(seq % 97),
                checksum: vec![0xC5; 128],
                payload: vec![0x7E; 64],
            })
            .unwrap();
        }
        db.sync().unwrap();
    }

    let time_reopen = |label: &str| {
        let t = Instant::now();
        let db =
            ProvenanceDb::durable(&path).unwrap_or_else(|e| panic!("{label} reopen failed: {e}"));
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(db.len() as u64, records, "{label} reopen lost records");
        ms
    };

    let clean_reopen_ms = time_reopen("clean");
    let clean_records_per_sec = records as f64 / (clean_reopen_ms / 1e3);

    // Torn tail: a partial frame header past the last synced frame, as a
    // crash mid-append would leave.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
    }
    let torn_reopen_ms = time_reopen("torn-tail");

    // Interior corruption: flip a byte in the middle record's frame, which
    // forces the quarantine + full atomic rewrite path.
    {
        let mut bytes = std::fs::read(&path).unwrap();
        let mut at = 12usize;
        let mut frame = 0u64;
        while at + 8 <= bytes.len() && frame < records / 2 {
            let len = u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            at += 8 + len;
            frame += 1;
        }
        bytes[at + 8] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
    }
    let t = Instant::now();
    let db = ProvenanceDb::durable(&path).unwrap();
    let quarantine_reopen_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        db.len() as u64,
        records - 1,
        "exactly one record quarantined"
    );
    drop(db);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(quarantine_path(&path));
    RecoveryResult {
        records,
        clean_reopen_ms,
        clean_records_per_sec,
        torn_reopen_ms,
        quarantine_reopen_ms,
    }
}

// ---------------------------------------------------------------------------
// Checkpointed compaction + authenticated denial (`repro --compaction`)
// ---------------------------------------------------------------------------

/// Cost and payoff of checkpoint-anchored log compaction, plus the
/// latency of building and verifying signed non-membership proofs over
/// the pre-compaction shard tree.
#[derive(Clone, Debug)]
pub struct CompactionBenchResult {
    /// Records in the log when the checkpoint was sealed.
    pub records: u64,
    /// Records appended after the seal (survive compaction).
    pub tail_records: u64,
    /// Live-log bytes before compaction.
    pub bytes_before: u64,
    /// Live-log bytes after (stamp + surviving tail).
    pub bytes_after: u64,
    /// `bytes_before / bytes_after` — the acceptance floor is 2×.
    pub ratio: f64,
    /// Frames excised into the cold archive.
    pub excised_frames: u64,
    /// Frames kept in the live log.
    pub kept_frames: u64,
    /// Capture + seal + persist latency (one RSA sign) in ms.
    pub seal_ms: f64,
    /// Archive + truncate + stamp latency in ms.
    pub compact_ms: f64,
    /// Reopen latency of the compacted log in ms.
    pub reopen_ms: f64,
    /// Denial proofs built and verified for the latency distribution.
    pub denial_proofs: u64,
    /// p99 of building one gap proof (µs; pure hashing, no signature).
    pub denial_prove_p99_us: f64,
    /// p99 of fully verifying one signed denial (µs; one RSA public-key
    /// operation + two authenticated sibling paths).
    pub denial_verify_p99_us: f64,
}

fn p99_us(mut ns: Vec<u64>) -> f64 {
    ns.sort_unstable();
    let idx = (ns.len().saturating_sub(1)) * 99 / 100;
    ns.get(idx).copied().unwrap_or(0) as f64 / 1e3
}

/// Builds a `records`-record durable log (objects hold ~8-record chains,
/// even-numbered IDs only, so odd IDs are provably absent), measures the
/// denial-proof pipeline over its shard tree, then seals a checkpoint,
/// appends a 1% tail, compacts, and reopens. Records carry realistic
/// sizes but no signatures — compaction cost is framing and I/O; the one
/// real signature is the checkpoint seal (and each denial verify pays a
/// real RSA public-key operation).
pub fn run_compaction(cfg: &ExperimentConfig, records: u64) -> CompactionBenchResult {
    use tep_core::denial::{DenialProof, SignedDenial, SignedRoot};
    use tep_core::merkle::shard_tree_of;
    use tep_core::{checkpoint_path, compact_log, seal_checkpoint};
    use tep_storage::{RealVfs, Vfs};

    let (signer, keys) = cfg.make_signer();
    let path = std::env::temp_dir().join(format!(
        "tep-bench-compaction-{}-{}.teplog",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(checkpoint_path(&path));
    let vfs: Arc<dyn Vfs> = Arc::new(RealVfs);

    let nobj = (records / 8).max(1);
    {
        let db = ProvenanceDb::durable_with(vfs.clone(), &path).unwrap();
        for seq in 0..records {
            db.append(StoredRecord {
                seq_id: seq / nobj,
                participant: ParticipantId(1),
                oid: ObjectId((seq % nobj) * 2),
                checksum: vec![0xC5; 128],
                payload: vec![0x7E; 64],
            })
            .unwrap();
        }
        db.sync().unwrap();

        // Denial latency over the full pre-compaction tree: prove and
        // verify non-membership of odd (absent) IDs.
        let tree = shard_tree_of(cfg.alg, &db);
        let root = SignedRoot::sign(&tree, records, &signer).unwrap();
        let iters = (cfg.runs as u64 * 100).clamp(200, 2_000);
        let mut prove_ns = Vec::with_capacity(iters as usize);
        let mut verify_ns = Vec::with_capacity(iters as usize);
        for i in 0..iters {
            let absent = ObjectId((i % nobj) * 2 + 1);
            let t = Instant::now();
            let proof = DenialProof::prove(&tree, absent).expect("odd IDs are absent");
            prove_ns.push(t.elapsed().as_nanos() as u64);
            let denial = SignedDenial {
                root: root.clone(),
                proof,
            };
            let t = Instant::now();
            denial.check(&keys).expect("honest denial verifies");
            verify_ns.push(t.elapsed().as_nanos() as u64);
        }
        drop(db);

        let bytes_before = std::fs::metadata(&path).unwrap().len();
        let t = Instant::now();
        seal_checkpoint(vfs.clone(), &path, cfg.alg, &signer).unwrap();
        let seal_ms = t.elapsed().as_secs_f64() * 1e3;

        // A 1% tail appended after the seal survives compaction.
        let tail_records = (records / 100).max(1);
        let db = ProvenanceDb::durable_with(vfs.clone(), &path).unwrap();
        for seq in 0..tail_records {
            db.append(StoredRecord {
                seq_id: records / nobj + seq / nobj,
                participant: ParticipantId(1),
                oid: ObjectId((seq % nobj) * 2),
                checksum: vec![0xC5; 128],
                payload: vec![0x7E; 64],
            })
            .unwrap();
        }
        db.sync().unwrap();
        drop(db);

        let t = Instant::now();
        let (_sealed, report) = compact_log(vfs.clone(), &path).unwrap();
        let compact_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let db = ProvenanceDb::durable_with(vfs.clone(), &path).unwrap();
        let reopen_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(db.len() as u64, tail_records, "compaction lost the tail");
        assert_eq!(db.recovery().corruption_gaps(), 0);
        drop(db);
        let bytes_after = std::fs::metadata(&path).unwrap().len();

        let archive = report.archive_path.clone();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(checkpoint_path(&path));
        if let Some(a) = archive {
            let _ = std::fs::remove_file(a);
        }

        CompactionBenchResult {
            records,
            tail_records,
            bytes_before,
            bytes_after,
            ratio: bytes_before as f64 / bytes_after.max(1) as f64,
            excised_frames: report.excised_frames,
            kept_frames: report.kept_frames,
            seal_ms,
            compact_ms,
            reopen_ms,
            denial_proofs: iters,
            denial_prove_p99_us: p99_us(prove_ns),
            denial_verify_p99_us: p99_us(verify_ns),
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-tenant fairness (`repro --tenants`)
// ---------------------------------------------------------------------------

/// Fairness of the tenant bulkheads (DESIGN.md §14): what sharing one
/// server with N−1 siblings — one of them hammering its own exhausted
/// connection quota — costs a well-behaved tenant.
#[derive(Clone, Copy, Debug)]
pub struct TenantBenchResult {
    /// Tenants served, each with its own PKI signer, shard, and catalog.
    pub tenants: usize,
    /// Records in each tenant's update chain.
    pub records_per_tenant: u64,
    /// Verified fetches each honest tenant performs per phase.
    pub fetches_per_tenant: u64,
    /// Tenant 1 alone against a single-tenant server, objects/s.
    pub solo_objects_per_sec: f64,
    /// All tenants fetching concurrently, aggregate objects/s.
    pub shared_objects_per_sec: f64,
    /// Tenant 1's p99 verified-fetch latency during the shared phase (µs).
    pub shared_p99_us: f64,
    /// Tenant 1's p99 while the attacker tenant sheds in a loop (µs).
    pub attacked_p99_us: f64,
    /// Quota sheds carrying the attacker's label after the attack phase.
    pub attacker_sheds: u64,
    /// Quota sheds carrying tenant 1's label — the bulkhead demands zero.
    pub victim_sheds: u64,
}

/// Three phases over one sharded deployment: tenant 1 alone (`solo`),
/// every tenant fetching concurrently (`shared`), and the same honest
/// load while the highest-numbered tenant hammers a deliberately
/// exhausted one-connection quota (`attacked`) — every attacker dial is
/// refused at HELLO with the tenant-scaled `ERR busy`, so the attack
/// costs the server one admission round-trip per attempt and the
/// attacker's labeled shed counter records each one. Tenant 1's
/// latency distribution is measured in both contended phases; its own
/// shed label must stay at zero.
pub fn run_tenants(cfg: &ExperimentConfig, tenants: usize) -> TenantBenchResult {
    use std::sync::atomic::{AtomicBool, Ordering};
    use tep_core::metrics::TransferCounters;
    use tep_core::tenant::TenantDirectory;
    use tep_model::TenantId;
    use tep_net::wire::{FrameReader, FrameWriter, Message, WIRE_VERSION};
    use tep_net::{
        serve_tenants, Catalog, Client, ClientConfig, RetryPolicy, ServerConfig, TenantSpec,
    };
    use tep_obs::{names, Registry};
    use tep_storage::vfs::{FaultConfig, FaultVfs};
    use tep_storage::{TenantShards, Vfs};

    const RECORDS: u64 = 12;
    let tenants = tenants.max(2);
    let fetches = (cfg.runs as u64 * 30).clamp(60, 300);
    let ids: Vec<TenantId> = (1..=tenants as u64).map(TenantId).collect();
    let victim = ids[0];
    let attacker = *ids.last().unwrap();

    // Identity + sharded store: one PKI-minted signer and one independent
    // shard per tenant, on deterministic in-memory disks.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7E4A_F41B);
    let key_bits = cfg.key_bits.max(512);
    let ca = CertificateAuthority::new(key_bits, cfg.alg, &mut rng);
    let mut dir = TenantDirectory::new(&ca);
    for &t in &ids {
        dir.mint(&ca, t, key_bits, &mut rng);
    }
    let shards = TenantShards::open_with(
        "/tenants-bench",
        ids.iter()
            .map(|&t| (t, FaultVfs::new(FaultConfig::default()) as Arc<dyn Vfs>)),
    );
    let mut chains = Vec::with_capacity(tenants);
    let mut catalogs = Vec::with_capacity(tenants);
    for &t in &ids {
        let signer = dir.signer(t).unwrap();
        let db = shards.shard(t).unwrap();
        let mut tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: cfg.alg,
                strategy: HashingStrategy::Economical,
            },
            Arc::clone(&db),
        );
        let (chain, _) = tracker
            .insert(&signer, tep_model::Value::Int(0), None)
            .unwrap();
        for i in 1..RECORDS as i64 {
            tracker
                .update(&signer, chain, tep_model::Value::Int(i))
                .unwrap();
        }
        db.sync().unwrap();
        chains.push(chain);
        catalogs.push(Arc::new(Catalog::new(
            tracker.forest().clone(),
            db,
            cfg.alg,
            vec![chain],
        )));
    }

    let server_cfg = || ServerConfig {
        read_timeout: Duration::from_secs(30),
        write_timeout: Duration::from_secs(30),
        connection_deadline: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let client_for = |addr: std::net::SocketAddr, t: TenantId, max_attempts: u32| {
        let mut c = ClientConfig::for_tenant(cfg.alg, t);
        c.read_timeout = Duration::from_secs(10);
        c.retry = RetryPolicy {
            max_attempts,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(10),
            ..RetryPolicy::default()
        };
        Client::new(addr, c)
    };

    // Phase 1 — solo: tenant 1 alone on a single-tenant server.
    let server = serve_tenants(
        vec![TenantSpec::new(victim, Arc::clone(&catalogs[0]))],
        "127.0.0.1:0".parse().unwrap(),
        server_cfg(),
        Registry::new(),
    )
    .unwrap();
    let mut cl = client_for(server.addr(), victim, 3);
    let t = Instant::now();
    for _ in 0..fetches {
        let rep = cl
            .fetch_verified(chains[0], dir.keys(victim).unwrap())
            .unwrap();
        assert!(rep.verification.verified());
    }
    let solo_objects_per_sec = fetches as f64 / t.elapsed().as_secs_f64();
    server.shutdown();

    // Phases 2 + 3 share one server hosting every tenant; the attacker's
    // spec carries a one-connection quota so its hammer can only shed
    // against its own bulkhead.
    let registry = Registry::new();
    let specs: Vec<TenantSpec> = ids
        .iter()
        .zip(&catalogs)
        .map(|(&t, c)| {
            let s = TenantSpec::new(t, Arc::clone(c));
            if t == attacker {
                s.with_max_connections(1)
            } else {
                s
            }
        })
        .collect();
    let server = serve_tenants(
        specs,
        "127.0.0.1:0".parse().unwrap(),
        server_cfg(),
        registry.clone(),
    )
    .unwrap();
    let addr = server.addr();

    // One tenant's closed-loop fetch run, per-fetch latency in ns.
    let fetch_loop = |t: TenantId, chain: ObjectId| -> Vec<u64> {
        let mut cl = client_for(addr, t, 3);
        let keys = dir.keys(t).unwrap();
        let mut ns = Vec::with_capacity(fetches as usize);
        for _ in 0..fetches {
            let t0 = Instant::now();
            let rep = cl.fetch_verified(chain, keys).unwrap();
            ns.push(t0.elapsed().as_nanos() as u64);
            assert!(rep.verification.verified());
        }
        ns
    };

    // Phase 2 — shared: every tenant fetching concurrently.
    let t = Instant::now();
    let shared_lat: Vec<Vec<u64>> = std::thread::scope(|s| {
        let fetch_loop = &fetch_loop;
        let handles: Vec<_> = ids
            .iter()
            .zip(&chains)
            .map(|(&t, &chain)| s.spawn(move || fetch_loop(t, chain)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let shared_objects_per_sec = (fetches * tenants as u64) as f64 / t.elapsed().as_secs_f64();
    let shared_p99_us = p99_us(shared_lat[0].clone());

    // Phase 3 — attacked: hold the attacker's only quota slot open, then
    // hammer single-attempt fetches against it while the honest tenants
    // re-run the shared loop.
    let _held = {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let counters = Arc::new(TransferCounters::new());
        let mut writer = FrameWriter::new(stream.try_clone().unwrap(), Arc::clone(&counters));
        let mut reader = FrameReader::new(stream, counters);
        writer
            .write_message(&Message::Hello {
                version: WIRE_VERSION,
                alg: cfg.alg,
                tenant: attacker.raw(),
            })
            .unwrap();
        match reader.read_message().unwrap() {
            Some(Message::Hello { .. }) => {}
            other => panic!("held attacker connection was not admitted: {other:?}"),
        }
        (reader, writer)
    };
    let stop = AtomicBool::new(false);
    let attacked_lat: Vec<u64> = std::thread::scope(|s| {
        let fetch_loop = &fetch_loop;
        let (stop, dir, chains, client_for) = (&stop, &dir, &chains, &client_for);
        let hammer = s.spawn(move || {
            let keys = dir.keys(attacker).unwrap();
            while !stop.load(Ordering::Relaxed) {
                let mut cl = client_for(addr, attacker, 1);
                let _ = cl.fetch_verified(*chains.last().unwrap(), keys);
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let honest: Vec<_> = ids[..tenants - 1]
            .iter()
            .zip(chains)
            .map(|(&t, &chain)| s.spawn(move || fetch_loop(t, chain)))
            .collect();
        let lats: Vec<Vec<u64>> = honest.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Relaxed);
        hammer.join().unwrap();
        lats.into_iter().next().unwrap()
    });
    let attacked_p99_us = p99_us(attacked_lat);

    let attacker_sheds = registry.counter_value(&names::with_tenant(
        names::NET_TENANT_QUOTA_SHEDS,
        attacker.raw(),
    ));
    let victim_sheds = registry.counter_value(&names::with_tenant(
        names::NET_TENANT_QUOTA_SHEDS,
        victim.raw(),
    ));
    server.shutdown();
    assert!(
        attacker_sheds > 0,
        "the attacker's hammer never hit its quota — the attack phase measured nothing"
    );
    assert_eq!(
        victim_sheds, 0,
        "quota sheds bled across the bulkhead onto the victim's label"
    );

    TenantBenchResult {
        tenants,
        records_per_tenant: RECORDS,
        fetches_per_tenant: fetches,
        solo_objects_per_sec,
        shared_objects_per_sec,
        shared_p99_us,
        attacked_p99_us,
        attacker_sheds,
        victim_sheds,
    }
}

// ---------------------------------------------------------------------------
// Resume savings: RESUME vs restart-from-zero after a mid-transfer cut
// ---------------------------------------------------------------------------

/// One cut point of the resume-savings experiment.
#[derive(Clone, Copy, Debug)]
pub struct ResumeCut {
    /// Where the transfer was cut, as a percentage of its records.
    pub cut_pct: u64,
    /// Total bytes received across all attempts with RESUME enabled.
    pub resumed_bytes: u64,
    /// Total bytes received across all attempts when every retry restarts
    /// from record zero.
    pub restart_bytes: u64,
    /// `restart_bytes - resumed_bytes`: the wire traffic RESUME avoided.
    pub saved_bytes: i64,
}

/// Wire-traffic cost of recovering an interrupted transfer, with and
/// without the RESUME protocol.
#[derive(Clone, Debug)]
pub struct ResumeSavings {
    /// Provenance records in the transferred object's history.
    pub records: u64,
    /// Bytes received by one uninterrupted verified fetch.
    pub full_transfer_bytes: u64,
    /// One row per cut point (25/50/75% of the record stream).
    pub cuts: Vec<ResumeCut>,
}

/// Builds a `records`-long single-object update chain, serves it over
/// loopback, and cuts the transfer at 25/50/75% of its PROV stream with a
/// one-shot fault proxy. Each cut runs twice — once with a resuming client
/// (reconnect + RESUME from the last verified record) and once with resume
/// disabled (retry refetches from record zero) — and reports total bytes
/// received for each, i.e. what the checkpoint protocol saves on the wire.
pub fn run_resume_savings(cfg: &ExperimentConfig, records: u64) -> ResumeSavings {
    use tep_net::{
        serve, Catalog, Client, ClientConfig, FaultKind, FaultListener, FaultPlan, RetryPolicy,
        ServerConfig,
    };

    let records = records.max(8);
    let (signer, keys) = cfg.make_signer();
    let db = Arc::new(ProvenanceDb::in_memory());
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: cfg.alg,
            strategy: HashingStrategy::Economical,
        },
        Arc::clone(&db),
    );
    let (chain, _) = tracker
        .insert(&signer, tep_model::Value::Int(0), None)
        .unwrap();
    for i in 1..records as i64 {
        tracker
            .update(&signer, chain, tep_model::Value::Int(i))
            .unwrap();
    }
    let catalog = Arc::new(Catalog::new(
        tracker.forest().clone(),
        db,
        cfg.alg,
        vec![chain],
    ));
    let server = serve(
        catalog,
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();

    let make_client = |addr, resume| {
        let mut c = ClientConfig::new(cfg.alg);
        c.resume = resume;
        c.read_timeout = Duration::from_secs(5);
        c.retry = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
            ..RetryPolicy::default()
        };
        Client::new(addr, c)
    };

    // The uncut reference transfer.
    let mut cl = make_client(addr, true);
    let full = cl.fetch_verified(chain, &keys).unwrap();
    assert_eq!(full.records, records);
    let full_transfer_bytes = cl.counters().bytes_received;

    // Cut after 25/50/75% of the PROV frames (downstream frame layout:
    // HELLO = 0, OFFER = 1, PROV = 2..2+records, DATA, DONE), then measure
    // total bytes to a verified finish with and without RESUME.
    let cuts = [25u64, 50, 75]
        .into_iter()
        .map(|cut_pct| {
            let cut_frame = 2 + records * cut_pct / 100;
            let mut bytes_with = [0u64; 2];
            for (i, resume) in [true, false].into_iter().enumerate() {
                let fl = FaultListener::spawn(
                    addr,
                    FaultPlan {
                        kind: FaultKind::CutBoundary,
                        frame: cut_frame,
                        seed: cut_pct,
                        once: true,
                    },
                )
                .unwrap();
                let mut cl = make_client(fl.addr(), resume);
                let rep = cl.fetch_verified(chain, &keys).unwrap();
                assert_eq!(rep.records, records, "cut at {cut_pct}% came up short");
                assert_eq!(rep.object_hash, full.object_hash);
                assert_eq!(rep.resumed > 0, resume, "cut at {cut_pct}%");
                bytes_with[i] = cl.counters().bytes_received;
                fl.shutdown();
            }
            let [resumed_bytes, restart_bytes] = bytes_with;
            ResumeCut {
                cut_pct,
                resumed_bytes,
                restart_bytes,
                saved_bytes: restart_bytes as i64 - resumed_bytes as i64,
            }
        })
        .collect();
    server.shutdown();

    ResumeSavings {
        records,
        full_transfer_bytes,
        cuts,
    }
}

// ---------------------------------------------------------------------------
// Replication — catch-up throughput, anti-entropy descent, read fan-out
// ---------------------------------------------------------------------------

/// One anti-entropy descent against a peer diverging at one leaf.
#[derive(Clone, Copy, Debug)]
pub struct AeRoundsPoint {
    /// Leaf index of the single divergent object.
    pub position: u64,
    /// Round trips `locate_divergence` spent pinpointing it.
    pub rounds: u64,
}

/// One read-scaling point: the same closed-loop client pool fanned out
/// over `replicas` capacity-limited servers.
#[derive(Clone, Copy, Debug)]
pub struct FanoutPoint {
    /// Replica servers in the rotation.
    pub replicas: usize,
    /// Verified fetches completed by the pool.
    pub objects: u64,
    /// Aggregate verified objects per second.
    pub objects_per_sec: f64,
    /// Connections refused with `ERR busy` at the capacity watermark —
    /// each refusal costs a client a `Retry-After` backoff sleep, which
    /// is where the single-replica configuration loses its throughput.
    pub sheds: u64,
}

/// Replication measurements: replica catch-up throughput, Merkle
/// anti-entropy descent cost vs divergence position, and verified-read
/// scaling across capacity-limited replicas.
#[derive(Clone, Debug)]
pub struct ReplicationBenchResult {
    /// Objects the replica synchronized during catch-up.
    pub catchup_objects: u64,
    /// Records verified, appended, and fsynced during catch-up.
    pub catchup_records: u64,
    /// Catch-up throughput — verify-on-receive + append + batched fsync +
    /// sealed-checkpoint write per batch — in records/s.
    pub catchup_records_per_sec: f64,
    /// Anti-entropy round trips for the caught-up (converged) pair — the
    /// steady-state cost of one audit, always 1.
    pub converged_rounds: u64,
    /// Leaves in the synthetic divergence-sweep shard.
    pub ae_leaves: u64,
    /// Shard tree depth (the `log2 n` term of the descent bound).
    pub ae_depth: u32,
    /// The bound every descent must respect: `depth + 2` (summary
    /// exchange + per-level probe + leaf probe).
    pub ae_rounds_bound: u64,
    /// Descent cost at each divergence position across the leaf space.
    pub ae_rounds: Vec<AeRoundsPoint>,
    /// Closed-loop client threads in the fan-out pool.
    pub fanout_clients: usize,
    /// Per-replica concurrent-connection capacity (shed watermark).
    pub fanout_capacity: usize,
    /// Read scaling at 1, 2, and 4 replicas.
    pub fanout: Vec<FanoutPoint>,
}

/// Client threads in the fan-out pool — oversubscribes the single-replica
/// configuration 8:1 and exactly matches the aggregate capacity of four.
const FANOUT_CLIENTS: usize = 8;

/// Concurrent connections each replica serves before shedding. One slot
/// per replica makes "replicas" the unit of read capacity.
const FANOUT_CAPACITY: usize = 1;

/// Think time between a client's fetches. Closed-loop clients with think
/// time keep the pool from re-grabbing a just-released slot instantly,
/// which would let two threads monopolize a single replica and hide the
/// capacity bottleneck the experiment measures.
const FANOUT_THINK: Duration = Duration::from_millis(6);

/// Measures the three replication paths DESIGN.md §12 commits to:
///
/// 1. **Catch-up**: a fresh replica (durable log + sealed-verifier
///    checkpoints on a deterministic in-memory disk) tails a primary
///    serving `catchup_records` across 16 chains, then runs one
///    anti-entropy audit (which must converge in a single round trip).
/// 2. **Anti-entropy descent**: `locate_divergence` against an
///    `ae_leaves`-object shard whose peer diverges at one leaf, swept
///    across divergence positions {0, n/4, n/2, 3n/4, n-1}. Synthetic
///    leaf digests (no signing) so the measurement is the descent, not
///    key generation; each descent is asserted ≤ `depth + 2` rounds.
/// 3. **Read fan-out**: 8 closed-loop clients fetch-verify through a
///    [`tep_net::FanoutFetcher`] over 1, 2, and 4 replicas, each replica
///    shedding beyond 1 concurrent connection. Replicas add connection
///    capacity: the 1-replica pool burns wall-clock in `Retry-After`
///    backoff, the 4-replica pool almost never sheds.
pub fn run_replication(
    cfg: &ExperimentConfig,
    catchup_records: u64,
    ae_leaves: u64,
    fanout_objects: u64,
) -> ReplicationBenchResult {
    use std::sync::atomic::{AtomicU64, Ordering};
    use tep_core::merkle::{locate_divergence, AeOutcome, ShardTree, TreeOracle};
    use tep_net::{
        serve, serve_with_registry, AeStatus, Catalog, ClientConfig, FanoutFetcher, Replica,
        ReplicaConfig, RetryPolicy, ServerConfig,
    };
    use tep_obs::Registry;
    use tep_storage::vfs::{FaultConfig, FaultVfs};

    // --- Catch-up throughput -----------------------------------------
    let (signer, keys) = cfg.make_signer();
    let db = Arc::new(ProvenanceDb::in_memory());
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: cfg.alg,
            strategy: HashingStrategy::Economical,
        },
        Arc::clone(&db),
    );
    let chains = 16u64;
    let per_chain = (catchup_records / chains).max(2);
    let mut offered = Vec::new();
    for c in 0..chains {
        let (oid, _) = tracker
            .insert(&signer, tep_model::Value::Int(c as i64), None)
            .unwrap();
        for i in 1..per_chain {
            tracker
                .update(&signer, oid, tep_model::Value::Int(i as i64))
                .unwrap();
        }
        offered.push(oid);
    }
    let catalog = || {
        Arc::new(Catalog::new(
            tracker.forest().clone(),
            Arc::clone(&db),
            cfg.alg,
            offered.clone(),
        ))
    };
    let primary = serve(
        catalog(),
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default(),
    )
    .unwrap();

    let vfs = FaultVfs::new(FaultConfig {
        seed: cfg.seed,
        ..FaultConfig::default()
    });
    let replica_db = Arc::new(
        ProvenanceDb::durable_with(vfs.clone(), std::path::Path::new("/replica.teplog")).unwrap(),
    );
    let replica = Replica::new(
        primary.addr(),
        ReplicaConfig::new(cfg.alg),
        replica_db,
        vfs,
        std::path::PathBuf::from("/ckpt"),
    );
    let t = Instant::now();
    let report = replica.catch_up(&keys).unwrap();
    let catchup_secs = t.elapsed().as_secs_f64();
    let ae = replica.anti_entropy(&keys).unwrap();
    assert!(
        matches!(ae.status, AeStatus::Converged),
        "caught-up replica must audit clean: {:?}",
        ae.status
    );
    primary.shutdown();

    // --- Anti-entropy descent vs divergence position -----------------
    let n = ae_leaves.max(2);
    let leaf = |i: u64, tag: u8| {
        let mut buf = [0u8; 9];
        buf[..8].copy_from_slice(&i.to_be_bytes());
        buf[8] = tag;
        (ObjectId(i), cfg.alg.digest(&buf))
    };
    let local = ShardTree::build(cfg.alg, (0..n).map(|i| leaf(i, 0)).collect());
    let ae_depth = local.depth();
    let ae_rounds_bound = ae_depth as u64 + 2;
    let mut positions = vec![0, n / 4, n / 2, 3 * n / 4, n - 1];
    positions.dedup();
    let ae_rounds = positions
        .iter()
        .map(|&p| {
            let peer =
                ShardTree::build(cfg.alg, (0..n).map(|i| leaf(i, u8::from(i == p))).collect());
            let mut oracle = TreeOracle::new(&peer);
            match locate_divergence(&local, &mut oracle).unwrap() {
                AeOutcome::Diverged { index, rounds, .. } => {
                    assert_eq!(index, p, "descent located the wrong leaf");
                    assert!(
                        rounds <= ae_rounds_bound,
                        "divergence at {p}: {rounds} rounds exceeds bound {ae_rounds_bound}"
                    );
                    AeRoundsPoint {
                        position: p,
                        rounds,
                    }
                }
                other => panic!("expected Diverged at leaf {p}, got {other:?}"),
            }
        })
        .collect();

    // --- Read fan-out across capacity-limited replicas ---------------
    let keys = Arc::new(keys);
    let fanout = [1usize, 2, 4]
        .iter()
        .map(|&replicas| {
            let registry = Registry::new();
            let servers: Vec<_> = (0..replicas)
                .map(|_| {
                    serve_with_registry(
                        catalog(),
                        "127.0.0.1:0".parse().unwrap(),
                        ServerConfig {
                            shed_watermark: FANOUT_CAPACITY,
                            ..ServerConfig::default()
                        },
                        registry.clone(),
                    )
                    .unwrap()
                })
                .collect();
            let addrs: Vec<std::net::SocketAddr> = servers.iter().map(|s| s.addr()).collect();
            let remaining = AtomicU64::new(fanout_objects);
            let t = Instant::now();
            std::thread::scope(|s| {
                for tid in 0..FANOUT_CLIENTS {
                    let mut order = addrs.clone();
                    let shift = tid % order.len();
                    order.rotate_left(shift);
                    let keys = Arc::clone(&keys);
                    let remaining = &remaining;
                    let oid = offered[tid % offered.len()];
                    let mut client_cfg = ClientConfig::new(cfg.alg);
                    client_cfg.jitter_seed = cfg.seed ^ tid as u64;
                    // No in-client retries: a shed endpoint fails over to
                    // the next replica in rotation immediately; only a
                    // full rotation of refusals costs a backoff sleep.
                    client_cfg.retry = RetryPolicy {
                        max_attempts: 1,
                        ..RetryPolicy::default()
                    };
                    s.spawn(move || {
                        let mut fetcher = FanoutFetcher::new(&order, client_cfg);
                        loop {
                            let cur = remaining.load(Ordering::Relaxed);
                            if cur == 0
                                || remaining
                                    .compare_exchange(
                                        cur,
                                        cur - 1,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    )
                                    .is_err()
                            {
                                if cur == 0 {
                                    return;
                                }
                                continue;
                            }
                            loop {
                                match fetcher.fetch_verified(oid, &keys) {
                                    Ok(_) => break,
                                    Err(e) if e.is_retryable() => std::thread::sleep(
                                        e.retry_after()
                                            .unwrap_or(Duration::from_millis(5))
                                            .min(Duration::from_millis(100)),
                                    ),
                                    Err(e) => panic!("replicated fetch failed terminally: {e:?}"),
                                }
                            }
                            std::thread::sleep(FANOUT_THINK);
                        }
                    });
                }
            });
            let secs = t.elapsed().as_secs_f64();
            let sheds = registry.counter_value(tep_obs::names::NET_SHED);
            for server in servers {
                server.shutdown();
            }
            FanoutPoint {
                replicas,
                objects: fanout_objects,
                objects_per_sec: fanout_objects as f64 / secs,
                sheds,
            }
        })
        .collect();

    ReplicationBenchResult {
        catchup_objects: report.objects,
        catchup_records: report.new_records,
        catchup_records_per_sec: report.new_records as f64 / catchup_secs,
        converged_rounds: ae.rounds,
        ae_leaves: n,
        ae_depth,
        ae_rounds_bound,
        ae_rounds,
        fanout_clients: FANOUT_CLIENTS,
        fanout_capacity: FANOUT_CAPACITY,
        fanout,
    }
}

// ---------------------------------------------------------------------------
// Machine-readable hot-path baseline (`repro --json`)
// ---------------------------------------------------------------------------

/// Throughput of the four hot paths, in machine-comparable units.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Hash algorithm the signature paths used.
    pub alg: HashAlgorithm,
    /// RSA modulus bits.
    pub key_bits: usize,
    /// RNG seed the measurement ran under.
    pub seed: u64,
    /// RSA-PKCS#1 signatures per second (private-key operation).
    pub sign_per_sec: f64,
    /// Signature verifications per second (public-key operation).
    pub verify_per_sec: f64,
    /// Bulk SHA-1 throughput, MiB/s.
    pub sha1_mib_per_sec: f64,
    /// Bulk SHA-256 throughput, MiB/s.
    pub sha256_mib_per_sec: f64,
    /// Full per-operation provenance-record cost (µs): incremental rehash +
    /// sign + store for one tracked cell update, Economical strategy.
    pub record_cost_us: f64,
    /// Verified loopback transfer throughput (`tep-net`).
    pub net: NetLoopbackResult,
    /// Event-loop fan-in throughput with cross-connection batch verify
    /// (`tep-net` + `tep_core::VerifyBatcher`).
    pub net_scale: NetScaleResult,
    /// Durable-store recovery cost (`tep-storage`).
    pub recovery: RecoveryResult,
    /// Wire bytes saved by RESUME vs restart-from-zero after mid-transfer
    /// cuts (`tep-net`).
    pub resume: ResumeSavings,
    /// Verifiable query throughput over a lineage DAG (`tep-query`).
    pub query: QueryBenchResult,
    /// Replica catch-up, anti-entropy descent, and read fan-out
    /// (`tep-net` replication).
    pub replication: ReplicationBenchResult,
    /// Checkpointed log compaction and signed denial-proof latency
    /// (`tep-core` gc + denial; `repro --compaction` runs the headline
    /// 100k-record version).
    pub compaction: CompactionBenchResult,
    /// Multi-tenant fairness: solo vs shared vs under-attack throughput
    /// and victim latency over one sharded deployment (`tep-net`
    /// bulkheads; `repro --tenants` runs a configurable tenant count).
    pub tenants: TenantBenchResult,
    /// Deterministic metric counts from a small fully instrumented workload
    /// spanning every layer (see [`run_instrumented_metrics`]). Counter
    /// values and histogram counts only — no timing sums — so two runs with
    /// the same seed produce identical values.
    pub metrics: Vec<(String, u64)>,
}

impl BaselineResult {
    /// Renders the result as a stable, hand-rolled JSON document.
    pub fn to_json(&self) -> String {
        let mut metrics = String::new();
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                metrics.push(',');
            }
            // Labeled names embed quotes (`…{tenant="t0"}`) that must be
            // escaped to keep the document valid JSON.
            let key = name.replace('\\', "\\\\").replace('"', "\\\"");
            metrics.push_str(&format!("\n    \"{key}\": {value}"));
        }
        let query_ops = self
            .query
            .ops
            .iter()
            .map(|o| {
                format!(
                    "\"{}\": {{ \"queries\": {}, \"ops_per_sec\": {:.1}, \"p99_ms\": {:.3}, \
                     \"mean_slice_records\": {:.1} }}",
                    o.op, o.queries, o.ops_per_sec, o.p99_ms, o.mean_slice_records
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let cuts = self
            .resume
            .cuts
            .iter()
            .map(|c| {
                format!(
                    "{{ \"cut_pct\": {}, \"resumed_bytes\": {}, \"restart_bytes\": {}, \
                     \"saved_bytes\": {} }}",
                    c.cut_pct, c.resumed_bytes, c.restart_bytes, c.saved_bytes
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let ae_rounds = self
            .replication
            .ae_rounds
            .iter()
            .map(|p| {
                format!(
                    "{{ \"position\": {}, \"rounds\": {} }}",
                    p.position, p.rounds
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let fanout = self
            .replication
            .fanout
            .iter()
            .map(|p| {
                format!(
                    "{{ \"replicas\": {}, \"objects\": {}, \"objects_per_sec\": {:.1}, \
                     \"sheds\": {} }}",
                    p.replicas, p.objects, p.objects_per_sec, p.sheds
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n  \"alg\": \"{:?}\",\n  \"key_bits\": {},\n  \"seed\": {},\n  \
             \"sign_per_sec\": {:.1},\n  \"verify_per_sec\": {:.1},\n  \
             \"hash_mib_per_sec\": {{ \"sha1\": {:.1}, \"sha256\": {:.1} }},\n  \
             \"record_cost_us\": {:.2},\n  \
             \"net_loopback\": {{ \"records_per_object\": {}, \"nodes_per_object\": {}, \
             \"serial_objects_per_sec\": {:.1}, \"serial_mib_per_sec\": {:.2}, \
             \"threads\": {}, \"parallel_objects_per_sec\": {:.1}, \
             \"parallel_mib_per_sec\": {:.2} }},\n  \
             \"net_scale\": {{ \"connections\": {}, \"objects\": {}, \
             \"records_per_object\": {}, \"objects_per_sec\": {:.1}, \
             \"mib_per_sec\": {:.2}, \"p99_latency_ms\": {:.1} }},\n  \
             \"recovery\": {{ \"records\": {}, \"clean_reopen_ms\": {:.2}, \
             \"clean_records_per_sec\": {:.1}, \"torn_reopen_ms\": {:.2}, \
             \"quarantine_reopen_ms\": {:.2} }},\n  \
             \"resume\": {{ \"records\": {}, \"full_transfer_bytes\": {}, \
             \"cuts\": [{cuts}] }},\n  \
             \"query\": {{ \"records\": {}, \"objects\": {}, \"participants\": {}, \
             \"index_build_ms\": {:.2}, \"ops\": {{ {query_ops} }} }},\n  \
             \"replication\": {{ \"catchup_objects\": {}, \"catchup_records\": {}, \
             \"catchup_records_per_sec\": {:.1}, \"converged_rounds\": {}, \
             \"ae_leaves\": {}, \"ae_depth\": {}, \"ae_rounds_bound\": {}, \
             \"ae_rounds\": [{ae_rounds}], \"fanout_clients\": {}, \
             \"fanout_capacity\": {}, \"fanout\": [{fanout}] }},\n  \
             \"compaction\": {{ \"records\": {}, \"tail_records\": {}, \
             \"bytes_before\": {}, \"bytes_after\": {}, \"ratio\": {:.2}, \
             \"excised_frames\": {}, \"kept_frames\": {}, \"seal_ms\": {:.2}, \
             \"compact_ms\": {:.2}, \"reopen_ms\": {:.2}, \"denial_proofs\": {}, \
             \"denial_prove_p99_us\": {:.1}, \"denial_verify_p99_us\": {:.1} }},\n  \
             \"tenants\": {{ \"tenants\": {}, \"records_per_tenant\": {}, \
             \"fetches_per_tenant\": {}, \"solo_objects_per_sec\": {:.1}, \
             \"shared_objects_per_sec\": {:.1}, \"shared_p99_us\": {:.1}, \
             \"attacked_p99_us\": {:.1}, \"attacker_sheds\": {}, \
             \"victim_sheds\": {} }},\n  \
             \"metrics\": {{{metrics}\n  }}\n}}\n",
            self.alg,
            self.key_bits,
            self.seed,
            self.sign_per_sec,
            self.verify_per_sec,
            self.sha1_mib_per_sec,
            self.sha256_mib_per_sec,
            self.record_cost_us,
            self.net.records_per_object,
            self.net.nodes_per_object,
            self.net.serial_objects_per_sec,
            self.net.serial_mib_per_sec,
            self.net.threads,
            self.net.parallel_objects_per_sec,
            self.net.parallel_mib_per_sec,
            self.net_scale.connections,
            self.net_scale.objects,
            self.net_scale.records_per_object,
            self.net_scale.objects_per_sec,
            self.net_scale.mib_per_sec,
            self.net_scale.p99_latency_ms,
            self.recovery.records,
            self.recovery.clean_reopen_ms,
            self.recovery.clean_records_per_sec,
            self.recovery.torn_reopen_ms,
            self.recovery.quarantine_reopen_ms,
            self.resume.records,
            self.resume.full_transfer_bytes,
            self.query.records,
            self.query.objects,
            self.query.participants,
            self.query.index_build_ms,
            self.replication.catchup_objects,
            self.replication.catchup_records,
            self.replication.catchup_records_per_sec,
            self.replication.converged_rounds,
            self.replication.ae_leaves,
            self.replication.ae_depth,
            self.replication.ae_rounds_bound,
            self.replication.fanout_clients,
            self.replication.fanout_capacity,
            self.compaction.records,
            self.compaction.tail_records,
            self.compaction.bytes_before,
            self.compaction.bytes_after,
            self.compaction.ratio,
            self.compaction.excised_frames,
            self.compaction.kept_frames,
            self.compaction.seal_ms,
            self.compaction.compact_ms,
            self.compaction.reopen_ms,
            self.compaction.denial_proofs,
            self.compaction.denial_prove_p99_us,
            self.compaction.denial_verify_p99_us,
            self.tenants.tenants,
            self.tenants.records_per_tenant,
            self.tenants.fetches_per_tenant,
            self.tenants.solo_objects_per_sec,
            self.tenants.shared_objects_per_sec,
            self.tenants.shared_p99_us,
            self.tenants.attacked_p99_us,
            self.tenants.attacker_sheds,
            self.tenants.victim_sheds,
        )
    }
}

/// Runs a small, fully instrumented workload spanning every layer —
/// sign/verify (crypto), tracked inserts/updates and batch verification
/// (core), a durable store behind an [`tep_storage::ObservedVfs`]
/// (storage), and one verified loopback fetch (net) — all recording into a
/// single registry. Returns the registry's deterministic counts (counter
/// values and histogram observation counts; histogram entries are suffixed
/// `_count`), sorted by name. Two runs with the same seed return identical
/// values, which is what the seed-determinism regression test pins.
pub fn run_instrumented_metrics(cfg: &ExperimentConfig) -> Vec<(String, u64)> {
    use tep_net::{serve_with_registry, Catalog, Client, ClientConfig, ServerConfig};
    use tep_obs::{MetricValue, Registry};
    use tep_storage::vfs::{FaultConfig, FaultVfs};
    use tep_storage::{record_recovery, ObservedVfs};

    let registry = Registry::new();
    let span = registry.span("instrumented_workload");

    // Crypto: signer + key directory with latency instrumentation.
    let (mut signer, mut keys) = cfg.make_signer();
    signer.attach_obs(&registry);
    keys.attach_obs(&registry);

    // Storage: a durable store on a deterministic in-memory disk, every I/O
    // operation counted by the ObservedVfs decorator.
    let vfs = ObservedVfs::wrap(FaultVfs::new(FaultConfig::default()), &registry);
    let db =
        Arc::new(ProvenanceDb::durable_with(vfs, std::path::Path::new("/metrics.teplog")).unwrap());
    record_recovery(&registry, &db.recovery());

    // Core: a tracked mini-database (root → table → 4 rows × 2 cells) with
    // cache/tracker instrumentation, then a round of cell updates.
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: cfg.alg,
            strategy: HashingStrategy::Economical,
        },
        Arc::clone(&db),
    );
    tracker.attach_obs(&registry);
    let (root, _) = tracker
        .insert(&signer, tep_model::Value::text("metrics-db"), None)
        .unwrap();
    let (table, _) = tracker
        .insert(&signer, tep_model::Value::text("t0"), Some(root))
        .unwrap();
    let mut cells = Vec::new();
    for r in 0..4i64 {
        let (row, _) = tracker
            .insert(&signer, tep_model::Value::Null, Some(table))
            .unwrap();
        for c in 0..2i64 {
            let (cell, _) = tracker
                .insert(&signer, tep_model::Value::Int(r * 2 + c), Some(row))
                .unwrap();
            cells.push(cell);
        }
    }
    for (i, &cell) in cells.iter().enumerate() {
        tracker
            .update(&signer, cell, tep_model::Value::Int(100 + i as i64))
            .unwrap();
    }
    db.sync().unwrap();

    // Batch verification of the root object's full history.
    let prov = tep_core::provenance::collect(&db, root).unwrap();
    let hash = tracker.object_hash(root).unwrap();
    let mut verifier = Verifier::new(&keys, cfg.alg);
    verifier.attach_obs(&registry);
    assert!(verifier.verify(&hash, &prov).verified());

    // Net: one verified loopback fetch, server and client recording into
    // the same registry (connections, frames, bytes, streaming verify).
    let catalog = Arc::new(Catalog::new(
        tracker.forest().clone(),
        Arc::clone(&db),
        cfg.alg,
        vec![root],
    ));
    let server = serve_with_registry(
        catalog,
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default(),
        registry.clone(),
    )
    .unwrap();
    let mut client = Client::new(server.addr(), ClientConfig::new(cfg.alg));
    client.attach_obs(&registry);
    let report = client.fetch_verified(root, &keys).unwrap();
    assert!(report.verification.verified());

    // Query: two verifiable QUERY/QRESULT round-trips through the same
    // server (whose engine records into the same registry) — ancestors of
    // the root and an audit of the signer — each slice proof re-verified
    // on receive. Deterministic: the workload above is seeded, so the
    // query counters and slice-size histogram counts are pinned too.
    use tep_core::slice::{QueryOp, QuerySpec};
    let rep = client
        .query(&QuerySpec::new(QueryOp::Ancestors, root), &keys)
        .unwrap();
    assert!(rep.verification.verified());
    let rep = client.query(&QuerySpec::audit(signer.id()), &keys).unwrap();
    assert!(rep.verification.verified());
    server.shutdown();
    span.finish();

    registry
        .snapshot()
        .into_iter()
        // The event loop's wakeup counter ticks with wall time (every
        // `poll(2)` return, including idle timeout ticks), not with the
        // seeded workload — it is the one metric in the registry two
        // same-seed runs legitimately disagree on (see
        // `tep_obs::names::NET_EPOLL_WAKEUPS`).
        .filter(|s| s.name != tep_obs::names::NET_EPOLL_WAKEUPS)
        .map(|s| {
            let count = s.value.deterministic_count();
            let name = match s.value {
                MetricValue::Histogram { .. } => format!("{}_count", s.name),
                _ => s.name,
            };
            (name, count)
        })
        .collect()
}

/// Measures the four hot paths the perf work targets: signing, verification,
/// bulk hashing, and the end-to-end per-record cost of one tracked update.
pub fn run_baseline(cfg: &ExperimentConfig) -> BaselineResult {
    let (signer, keys) = cfg.make_signer();
    let msg = [0xA5u8; 64];

    // Private-key path: PKCS#1 v1.5 sign.
    let sign_iters = (cfg.runs * 16).max(32);
    let t = Instant::now();
    let mut sig = Vec::new();
    for _ in 0..sign_iters {
        sig = signer.sign(cfg.alg, &msg).unwrap();
    }
    let sign_per_sec = sign_iters as f64 / t.elapsed().as_secs_f64();

    // Public-key path: verify the signature we just made.
    let pk = keys.public_key(signer.id()).unwrap();
    let verify_iters = sign_iters * 8;
    let t = Instant::now();
    for _ in 0..verify_iters {
        pk.verify(cfg.alg, &msg, &sig).unwrap();
    }
    let verify_per_sec = verify_iters as f64 / t.elapsed().as_secs_f64();

    // Bulk compression throughput, both algorithms.
    let buf = vec![0x5Au8; 4 << 20];
    let mib_per_sec = |alg: HashAlgorithm| {
        let reps = 4;
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(alg.digest(&buf));
        }
        (reps * buf.len()) as f64 / (1u64 << 20) as f64 / t.elapsed().as_secs_f64()
    };
    let sha1_mib_per_sec = mib_per_sec(HashAlgorithm::Sha1);
    let sha256_mib_per_sec = mib_per_sec(HashAlgorithm::Sha256);

    // End-to-end record cost: one tracked cell update under the Economical
    // strategy (dirty-path rehash + sign + store).
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: cfg.alg,
            strategy: HashingStrategy::Economical,
        },
        Arc::new(ProvenanceDb::in_memory()),
    );
    let (root, _) = tracker
        .insert(&signer, tep_model::Value::text("db"), None)
        .unwrap();
    let cells: Vec<ObjectId> = (0..100)
        .map(|i| {
            tracker
                .insert(&signer, tep_model::Value::Int(i), Some(root))
                .unwrap()
                .0
        })
        .collect();
    let t = Instant::now();
    for (i, &cell) in cells.iter().enumerate() {
        tracker
            .update(&signer, cell, tep_model::Value::Int(i as i64 + 1))
            .unwrap();
    }
    let record_cost_us = t.elapsed().as_secs_f64() * 1e6 / cells.len() as f64;

    // Verified network transfer over loopback, serial and 4-way.
    let net = run_net_loopback(cfg, (cfg.runs as u64 * 4).max(8), 4);

    // Event-loop fan-in: 64 concurrent connections batch-verifying small
    // objects through one shared VerifyBatcher.
    let net_scale = run_net_scale(cfg, 64, 512);

    // Durable-store recovery cost on the real filesystem.
    let recovery = run_recovery(cfg, (cfg.runs as u64 * 1000).max(2000));

    // RESUME vs restart-from-zero wire savings (10k-record chain at the
    // default run count).
    let resume = run_resume_savings(cfg, (cfg.runs as u64 * 2000).clamp(1000, 10_000));

    // Verifiable queries over a mid-size lineage DAG (`repro --query` runs
    // the headline 1M-record version).
    let query = run_query(cfg, (cfg.runs as u64 * 10_000).clamp(20_000, 100_000));

    // Replica catch-up, Merkle anti-entropy on a 100k-object shard, and
    // verified-read fan-out at 1/2/4 capacity-limited replicas.
    let replication = run_replication(
        cfg,
        (cfg.runs as u64 * 128).clamp(256, 1024),
        100_000,
        (cfg.runs as u64 * 40).clamp(120, 400),
    );

    // Checkpoint seal → compact → reopen, plus denial-proof p99s, at a
    // reduced size (`repro --compaction` runs the headline 100k version).
    let compaction = run_compaction(cfg, (cfg.runs as u64 * 5000).clamp(10_000, 100_000));

    // Multi-tenant fairness at the default four tenants (`repro --tenants`
    // runs a configurable count).
    let tenants = run_tenants(cfg, 4);

    BaselineResult {
        alg: cfg.alg,
        key_bits: cfg.key_bits,
        seed: cfg.seed,
        sign_per_sec,
        verify_per_sec,
        sha1_mib_per_sec,
        sha256_mib_per_sec,
        record_cost_us,
        net,
        net_scale,
        recovery,
        resume,
        query,
        replication,
        compaction,
        tenants,
        metrics: run_instrumented_metrics(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            alg: HashAlgorithm::Sha256,
            key_bits: 512,
            runs: 2,
            seed: 7,
        }
    }

    #[test]
    fn fig6_rows_scale_with_nodes() {
        let cfg = tiny_cfg();
        let rows = run_fig6(&cfg);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].nodes, 36_002);
        assert_eq!(rows[3].nodes, 118_005);
        // Time grows with database size.
        assert!(rows[3].time_ms.mean > rows[0].time_ms.mean);
    }

    #[test]
    fn fig7_cell_counts_match_paper_sweep() {
        let counts = fig7_cell_counts();
        assert_eq!(counts.len(), 1 + 10 + 7);
        assert_eq!(counts[0], (1, 1));
        assert_eq!(counts[10], (4000, 4000));
        assert_eq!(counts[17], (32_000, 4000));
    }

    #[test]
    fn fig7_economical_beats_basic_for_small_updates() {
        let cfg = tiny_cfg();
        // Only measure the smallest point to keep the test fast.
        let rows = run_fig7_points(&ExperimentConfig { runs: 1, ..cfg }, &[(1, 1)]);
        let one = &rows[0];
        assert!(
            one.economical_ms.mean < one.basic_ms.mean,
            "1-cell update: economical {} should beat basic {}",
            one.economical_ms.mean,
            one.basic_ms.mean
        );
    }

    #[test]
    fn setup_b_record_counts_match_analysis() {
        let cfg = ExperimentConfig {
            runs: 1,
            ..tiny_cfg()
        };
        let (signer, _) = cfg.make_signer();
        // Deletes: each row-delete op touches only table+root → 2 records.
        let m = run_setup_b_once(&cfg, &signer, SetupBWorkload::Deletes500, 3);
        assert_eq!(m.records, 500 * 2);
        // Inserts: 9 created + table + root = 11 records per op.
        let m = run_setup_b_once(&cfg, &signer, SetupBWorkload::Inserts500, 3);
        assert_eq!(m.records, 500 * 11);
        // Updates in 500 rows: 8 cells + row + table + root = 11 per op.
        let m = run_setup_b_once(&cfg, &signer, SetupBWorkload::Updates4000In500Rows, 3);
        assert_eq!(m.records, 500 * 11);
        // Updates in 4000 rows: cell + row + table + root = 4 per op.
        let m = run_setup_b_once(&cfg, &signer, SetupBWorkload::Updates4000In4000Rows, 3);
        assert_eq!(m.records, 4000 * 4);
    }

    #[test]
    fn setup_c_space_decreases_with_delete_share() {
        let cfg = ExperimentConfig {
            runs: 1,
            ..tiny_cfg()
        };
        let (signer, _) = cfg.make_signer();
        let low_del = run_setup_c_once(&cfg, &signer, PAPER_C_MIXES[0], 5);
        let high_del = run_setup_c_once(&cfg, &signer, PAPER_C_MIXES[3], 5);
        assert!(
            high_del.row_bytes < low_del.row_bytes,
            "more deletes → fewer records → less space ({} vs {})",
            high_del.row_bytes,
            low_del.row_bytes
        );
    }

    #[test]
    fn large_scales_node_count() {
        let r = run_large(HashAlgorithm::Sha1, 1000);
        assert_eq!(r.nodes, 3002);
        assert!(r.seconds > 0.0);
        assert!(r.ms_per_node > 0.0);
    }

    #[test]
    fn verify_cost_grows_with_chain() {
        let cfg = tiny_cfg();
        let rows = run_verify_cost(&cfg, &[2, 32]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].verify_ms.mean > rows[0].verify_ms.mean);
    }

    #[test]
    fn chaining_both_modes_complete() {
        let cfg = tiny_cfg();
        let r = run_chaining(&cfg, 2, 3);
        assert!(r.local_ms > 0.0);
        assert!(r.global_ms > 0.0);
    }

    #[test]
    fn net_scale_verifies_every_object_across_connections() {
        let cfg = tiny_cfg();
        let r = run_net_scale(&cfg, 4, 8);
        assert_eq!(r.connections, 4);
        assert_eq!(r.objects, 8);
        assert_eq!(r.records_per_object, 12);
        assert!(r.objects_per_sec > 0.0);
        assert!(r.mib_per_sec > 0.0);
        assert!(r.p99_latency_ms > 0.0);
    }

    #[test]
    fn query_bench_covers_every_operator() {
        let cfg = tiny_cfg();
        let r = run_query(&cfg, 4_000);
        assert_eq!(r.records, 4_000);
        assert!(r.objects > 0);
        assert_eq!(r.ops.len(), 5);
        for o in &r.ops {
            assert!(o.queries > 0, "{}: no queries ran", o.op);
            assert!(o.ops_per_sec > 0.0, "{}: zero throughput", o.op);
            assert!(o.mean_slice_records >= 1.0, "{}: empty slices", o.op);
        }
        // Backward queries over cluster closers must pull real closures,
        // not single records.
        let lineage = r.ops.iter().find(|o| o.op == "lineage").unwrap();
        assert!(lineage.mean_slice_records > 2.0);
    }

    #[test]
    fn replication_bench_converges_and_respects_descent_bound() {
        let cfg = tiny_cfg();
        let r = run_replication(&cfg, 64, 1 << 10, 24);
        // Catch-up: 16 chains of 4 records, all new on a fresh replica.
        assert_eq!(r.catchup_objects, 16);
        assert_eq!(r.catchup_records, 64);
        assert!(r.catchup_records_per_sec > 0.0);
        assert_eq!(r.converged_rounds, 1);
        // Descent: a 1024-leaf shard is 10 deep, bound 12, and every
        // swept position stays within it (asserted inside the runner too).
        assert_eq!(r.ae_leaves, 1 << 10);
        assert_eq!(r.ae_depth, 10);
        assert_eq!(r.ae_rounds_bound, 12);
        assert_eq!(r.ae_rounds.len(), 5);
        assert!(r.ae_rounds.iter().all(|p| p.rounds <= r.ae_rounds_bound));
        // Fan-out: all three points complete the full fetch count.
        assert_eq!(r.fanout.len(), 3);
        for p in &r.fanout {
            assert_eq!(p.objects, 24);
            assert!(
                p.objects_per_sec > 0.0,
                "{} replicas: no progress",
                p.replicas
            );
        }
    }

    #[test]
    fn resume_saves_bytes_at_every_cut_point() {
        let cfg = tiny_cfg();
        let r = run_resume_savings(&cfg, 64);
        assert_eq!(r.records, 64);
        assert!(r.full_transfer_bytes > 0);
        assert_eq!(r.cuts.len(), 3);
        for cut in &r.cuts {
            assert!(
                cut.resumed_bytes < cut.restart_bytes,
                "cut at {}%: resumed {} should be below restart {}",
                cut.cut_pct,
                cut.resumed_bytes,
                cut.restart_bytes
            );
            assert_eq!(
                cut.saved_bytes,
                cut.restart_bytes as i64 - cut.resumed_bytes as i64
            );
        }
        // Deeper cuts preserve more of the already-transferred prefix.
        assert!(r.cuts[2].saved_bytes >= r.cuts[0].saved_bytes);
    }
}
