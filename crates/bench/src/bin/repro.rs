//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--all] [--table1] [--fig6] [--fig7] [--fig8] [--fig9]
//!       [--fig10] [--fig11] [--large [ROWS|paper]] [--chaining] [--verify-cost]
//!       [--net] [--net-scale [CONNS]] [--crash] [--resume] [--replication]
//!       [--query [RECORDS]] [--compaction [RECORDS]] [--tenants [N]] [--json]
//!       [--runs N]
//!       [--key-bits N] [--alg sha1|sha256] [--seed N] [--csv]
//! ```
//!
//! With no experiment flags, runs everything at laptop-friendly defaults
//! (`--runs 5`, 1024-bit keys, SHA-1 — the paper's configuration except for
//! run count; pass `--runs 100` for the paper's full repetition count).

use std::process::ExitCode;
use tep_bench::experiments::*;
use tep_bench::stats::ns_to_ms;
use tep_bench::TextTable;
use tep_core::prelude::HashAlgorithm;
use tep_workloads::{paper_node_count, PAPER_TABLES, PAPER_TITLE_ROWS};

#[derive(Default)]
struct Args {
    table1: bool,
    fig6: bool,
    fig7: bool,
    fig8: bool,
    fig9: bool,
    fig10: bool,
    fig11: bool,
    large: Option<u64>,
    chaining: bool,
    verify_cost: bool,
    ablation: bool,
    net: bool,
    net_scale: Option<usize>,
    crash: bool,
    resume: bool,
    replication: bool,
    query: Option<u64>,
    compaction: Option<u64>,
    tenants: Option<usize>,
    json: bool,
    csv: bool,
    all: bool,
    cfg: ExperimentConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: ExperimentConfig::default(),
        ..Default::default()
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => args.all = true,
            "--table1" => args.table1 = true,
            "--fig6" => args.fig6 = true,
            "--fig7" => args.fig7 = true,
            "--fig8" => args.fig8 = true,
            "--fig9" => args.fig9 = true,
            "--fig10" => args.fig10 = true,
            "--fig11" => args.fig11 = true,
            "--chaining" => args.chaining = true,
            "--verify-cost" => args.verify_cost = true,
            "--ablation" => args.ablation = true,
            "--net" => args.net = true,
            "--net-scale" => {
                let conns = match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        v.parse()
                            .map_err(|_| format!("bad connection count: {v}"))?
                    }
                    _ => 64,
                };
                args.net_scale = Some(conns);
            }
            "--crash" => args.crash = true,
            "--resume" => args.resume = true,
            "--replication" => args.replication = true,
            "--query" => {
                let records = match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        v.parse().map_err(|_| format!("bad record count: {v}"))?
                    }
                    _ => 1_000_000,
                };
                args.query = Some(records);
            }
            "--compaction" => {
                let records = match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        v.parse().map_err(|_| format!("bad record count: {v}"))?
                    }
                    _ => 100_000,
                };
                args.compaction = Some(records);
            }
            "--tenants" => {
                let n = match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        v.parse().map_err(|_| format!("bad tenant count: {v}"))?
                    }
                    _ => 4,
                };
                args.tenants = Some(n);
            }
            "--json" => args.json = true,
            "--large" => {
                let rows = match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        if v == "paper" {
                            PAPER_TITLE_ROWS
                        } else {
                            v.parse().map_err(|_| format!("bad row count: {v}"))?
                        }
                    }
                    _ => 1_000_000,
                };
                args.large = Some(rows);
            }
            "--csv" => args.csv = true,
            "--runs" => args.cfg.runs = next_value(&mut it, "--runs")?,
            "--key-bits" => args.cfg.key_bits = next_value(&mut it, "--key-bits")?,
            "--seed" => args.cfg.seed = next_value(&mut it, "--seed")?,
            "--alg" => {
                let v: String = next_value(&mut it, "--alg")?;
                args.cfg.alg = match v.as_str() {
                    "sha1" => HashAlgorithm::Sha1,
                    "sha256" => HashAlgorithm::Sha256,
                    other => return Err(format!("unknown algorithm: {other}")),
                };
            }
            "--help" | "-h" => return Err("help requested".into()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    let experiments_requested = args.table1
        || args.fig6
        || args.fig7
        || args.fig8
        || args.fig9
        || args.fig10
        || args.fig11
        || args.large.is_some()
        || args.chaining
        || args.verify_cost
        || args.ablation
        || args.net
        || args.net_scale.is_some()
        || args.crash
        || args.resume
        || args.replication
        || args.query.is_some()
        || args.compaction.is_some()
        || args.tenants.is_some()
        || args.json;
    if args.all || !experiments_requested {
        args.table1 = true;
        args.fig6 = true;
        args.fig7 = true;
        args.fig8 = true;
        args.fig9 = true;
        args.fig10 = true;
        args.fig11 = true;
        args.large.get_or_insert(1_000_000);
        args.chaining = true;
        args.verify_cost = true;
        args.ablation = true;
        args.net = true;
        args.net_scale.get_or_insert(64);
        args.crash = true;
        args.resume = true;
        args.replication = true;
        args.query.get_or_insert(1_000_000);
        args.compaction.get_or_insert(100_000);
        args.tenants.get_or_insert(4);
    }
    Ok(args)
}

fn next_value<T: std::str::FromStr>(
    it: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: invalid value"))
}

fn emit(title: &str, table: &TextTable, csv: bool) {
    println!("== {title} ==");
    println!("{}", table.render());
    if csv {
        println!("-- CSV --\n{}", table.to_csv());
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: {e}");
            eprintln!(
                "usage: repro [--all] [--table1] [--fig6] [--fig7] [--fig8] [--fig9] [--fig10] [--fig11]"
            );
            eprintln!(
                "             [--large [ROWS|paper]] [--chaining] [--verify-cost] [--net] [--net-scale [CONNS]] [--crash] [--resume] [--replication] [--query [RECORDS]] [--compaction [RECORDS]] [--tenants [N]] [--json]"
            );
            eprintln!(
                "             [--runs N] [--key-bits N] [--alg sha1|sha256] [--seed N] [--csv]"
            );
            return ExitCode::FAILURE;
        }
    };
    let cfg = args.cfg;
    println!(
        "tamper-evident provenance repro — alg={:?} key_bits={} runs={} seed={}\n",
        cfg.alg, cfg.key_bits, cfg.runs, cfg.seed
    );

    if args.table1 {
        let mut t = TextTable::new(&["table", "attrs", "rows", "nodes"]);
        for spec in &PAPER_TABLES {
            t.row(&[
                spec.name.to_string(),
                spec.num_attrs.to_string(),
                spec.num_rows.to_string(),
                spec.node_count().to_string(),
            ]);
        }
        emit("Table 1(a): synthetic tables", &t, args.csv);
        let mut t = TextTable::new(&["combination", "nodes (ours)", "nodes (paper)"]);
        let paper = [36_002, 66_000, 88_004, 118_006];
        for k in 1..=4usize {
            t.row(&[
                format!("tables 1..{k}"),
                paper_node_count(k).to_string(),
                paper[k - 1].to_string(),
            ]);
        }
        emit("Table 1(b): synthetic databases", &t, args.csv);
    }

    if args.fig6 {
        let rows = run_fig6(&cfg);
        let mut t = TextTable::new(&["tables", "nodes", "hash time (ms)", "ci95"]);
        for r in &rows {
            t.row(&[
                r.tables.to_string(),
                r.nodes.to_string(),
                format!("{:.3}", r.time_ms.mean),
                format!("{:.3}", r.time_ms.ci95),
            ]);
        }
        emit(
            "Figure 6: average hashing time for a database",
            &t,
            args.csv,
        );
    }

    if args.fig7 {
        let rows = run_fig7(&cfg);
        let mut t = TextTable::new(&["cells updated", "rows", "basic (ms)", "economical (ms)"]);
        for r in &rows {
            t.row(&[
                r.cells.to_string(),
                r.rows.to_string(),
                format!("{:.3} ± {:.3}", r.basic_ms.mean, r.basic_ms.ci95),
                format!("{:.3} ± {:.3}", r.economical_ms.mean, r.economical_ms.ci95),
            ]);
        }
        emit(
            "Figure 7: hashing the output tree, Basic vs Economical",
            &t,
            args.csv,
        );
    }

    if args.fig8 || args.fig9 {
        let (signer, _) = cfg.make_signer();
        let rows = run_setup_b(&cfg, &signer);
        if args.fig8 {
            let mut t = TextTable::new(&[
                "workload",
                "total (ms)",
                "ci95",
                "hash (ms)",
                "sign (ms)",
                "store (ms)",
            ]);
            for r in &rows {
                t.row(&[
                    r.workload.label().to_string(),
                    format!("{:.1}", r.total_ms.mean),
                    format!("{:.1}", r.total_ms.ci95),
                    format!("{:.1}", ns_to_ms(r.metrics.hash_ns())),
                    format!("{:.1}", ns_to_ms(r.metrics.sign_ns)),
                    format!("{:.1}", ns_to_ms(r.metrics.store_ns)),
                ]);
            }
            emit(
                "Figure 8: time overhead by operation type (Setup B)",
                &t,
                args.csv,
            );
        }
        if args.fig9 {
            let mut t = TextTable::new(&["workload", "records", "checksum rows (bytes)"]);
            for r in &rows {
                t.row(&[
                    r.workload.label().to_string(),
                    r.metrics.records.to_string(),
                    r.metrics.row_bytes.to_string(),
                ]);
            }
            emit(
                "Figure 9: space overhead by operation type (Setup B)",
                &t,
                args.csv,
            );
        }
    }

    if args.fig10 || args.fig11 {
        let (signer, _) = cfg.make_signer();
        let rows = run_setup_c(&cfg, &signer);
        if args.fig10 {
            let mut t = TextTable::new(&[
                "delete %",
                "mix (del/ins/upd)",
                "total (ms)",
                "ci95",
                "hash (ms)",
                "sign (ms)",
                "store (ms)",
            ]);
            for r in &rows {
                t.row(&[
                    format!("{:.1}", r.mix.delete_pct()),
                    format!("{}/{}/{}", r.mix.deletes, r.mix.inserts, r.mix.updates),
                    format!("{:.1}", r.total_ms.mean),
                    format!("{:.1}", r.total_ms.ci95),
                    format!("{:.1}", ns_to_ms(r.metrics.hash_ns())),
                    format!("{:.1}", ns_to_ms(r.metrics.sign_ns)),
                    format!("{:.1}", ns_to_ms(r.metrics.store_ns)),
                ]);
            }
            emit(
                "Figure 10: time overhead for mixed operations (Setup C)",
                &t,
                args.csv,
            );
        }
        if args.fig11 {
            let mut t = TextTable::new(&["delete %", "records", "checksum rows (bytes)"]);
            for r in &rows {
                t.row(&[
                    format!("{:.1}", r.mix.delete_pct()),
                    r.metrics.records.to_string(),
                    r.metrics.row_bytes.to_string(),
                ]);
            }
            emit(
                "Figure 11: space overhead for mixed operations (Setup C)",
                &t,
                args.csv,
            );
        }
    }

    if let Some(rows) = args.large {
        let r = run_large(cfg.alg, rows);
        let mut t = TextTable::new(&["rows", "nodes", "seconds", "ms/node (paper: 0.02156)"]);
        t.row(&[
            r.rows.to_string(),
            r.nodes.to_string(),
            format!("{:.2}", r.seconds),
            format!("{:.6}", r.ms_per_node),
        ]);
        emit(
            "§5.2: streaming hash of the large Title database",
            &t,
            args.csv,
        );
    }

    if args.chaining {
        let mut t = TextTable::new(&[
            "threads",
            "ops/thread",
            "local chains (ms)",
            "global chain (ms)",
            "speedup",
        ]);
        for threads in [1usize, 2, 4, 8] {
            let r = run_chaining(&cfg, threads, 32);
            t.row(&[
                r.threads.to_string(),
                r.ops_per_thread.to_string(),
                format!("{:.1}", r.local_ms),
                format!("{:.1}", r.global_ms),
                format!("{:.2}x", r.global_ms / r.local_ms),
            ]);
        }
        emit(
            "§3.2 ablation: local vs global checksum chaining",
            &t,
            args.csv,
        );
    }

    if args.ablation {
        let rows = run_ablation(&cfg);
        let mut t = TextTable::new(&[
            "hash",
            "key bits",
            "total (ms)",
            "ci95",
            "hash (ms)",
            "sign (ms)",
            "bytes/record",
        ]);
        for r in &rows {
            t.row(&[
                format!("{:?}", r.alg),
                r.key_bits.to_string(),
                format!("{:.1}", r.total_ms.mean),
                format!("{:.1}", r.total_ms.ci95),
                format!("{:.1}", ns_to_ms(r.metrics.hash_ns())),
                format!("{:.1}", ns_to_ms(r.metrics.sign_ns)),
                r.row_bytes_per_record.to_string(),
            ]);
        }
        emit(
            "Ablation: hash algorithm x RSA key size (100-update workload)",
            &t,
            args.csv,
        );
    }

    if args.verify_cost {
        let rows = run_verify_cost(&cfg, &[1, 10, 100, 1000]);
        let mut t = TextTable::new(&["chain length", "collect+verify (ms)", "ci95"]);
        for r in &rows {
            t.row(&[
                r.chain_len.to_string(),
                format!("{:.3}", r.verify_ms.mean),
                format!("{:.3}", r.verify_ms.ci95),
            ]);
        }
        emit(
            "Extension: recipient verification cost vs history length",
            &t,
            args.csv,
        );
    }

    if args.net {
        let r = run_net_loopback(&cfg, (cfg.runs as u64 * 8).max(16), 4);
        let mut t = TextTable::new(&["mode", "clients", "objects/s", "MiB/s"]);
        t.row(&[
            "serial".into(),
            "1".into(),
            format!("{:.1}", r.serial_objects_per_sec),
            format!("{:.2}", r.serial_mib_per_sec),
        ]);
        t.row(&[
            "parallel".into(),
            r.threads.to_string(),
            format!("{:.1}", r.parallel_objects_per_sec),
            format!("{:.2}", r.parallel_mib_per_sec),
        ]);
        emit(
            &format!(
                "Provenance exchange over loopback TCP ({} records + {} nodes per object, verified on receive)",
                r.records_per_object, r.nodes_per_object
            ),
            &t,
            args.csv,
        );
    }

    if let Some(conns) = args.net_scale {
        let r = run_net_scale(&cfg, conns, (conns as u64) * 8);
        let mut t = TextTable::new(&["connections", "objects", "objects/s", "MiB/s", "p99 (ms)"]);
        t.row(&[
            r.connections.to_string(),
            r.objects.to_string(),
            format!("{:.1}", r.objects_per_sec),
            format!("{:.2}", r.mib_per_sec),
            format!("{:.1}", r.p99_latency_ms),
        ]);
        emit(
            &format!(
                "Event-loop fan-in with cross-connection batch verify ({} records per object)",
                r.records_per_object
            ),
            &t,
            args.csv,
        );
    }

    if args.crash {
        let r = run_recovery(&cfg, (cfg.runs as u64 * 1000).max(2000));
        let mut t = TextTable::new(&[
            "records",
            "clean reopen (ms)",
            "records/s",
            "torn-tail reopen (ms)",
            "quarantine reopen (ms)",
        ]);
        t.row(&[
            r.records.to_string(),
            format!("{:.2}", r.clean_reopen_ms),
            format!("{:.0}", r.clean_records_per_sec),
            format!("{:.2}", r.torn_reopen_ms),
            format!("{:.2}", r.quarantine_reopen_ms),
        ]);
        emit(
            "Durable-store crash recovery: reopen cost by damage class",
            &t,
            args.csv,
        );
    }

    if args.resume {
        let r = run_resume_savings(&cfg, (cfg.runs as u64 * 2000).clamp(1000, 10_000));
        let mut t = TextTable::new(&[
            "cut at",
            "resumed (bytes)",
            "restart (bytes)",
            "saved (bytes)",
        ]);
        for cut in &r.cuts {
            t.row(&[
                format!("{}%", cut.cut_pct),
                cut.resumed_bytes.to_string(),
                cut.restart_bytes.to_string(),
                cut.saved_bytes.to_string(),
            ]);
        }
        emit(
            &format!(
                "RESUME vs restart-from-zero ({} records, {} bytes uncut)",
                r.records, r.full_transfer_bytes
            ),
            &t,
            args.csv,
        );
    }

    if args.replication {
        let r = run_replication(
            &cfg,
            (cfg.runs as u64 * 128).clamp(256, 2048),
            100_000,
            (cfg.runs as u64 * 40).clamp(120, 600),
        );
        let mut t = TextTable::new(&["divergence at leaf", "rounds", "bound (depth+2)"]);
        for p in &r.ae_rounds {
            t.row(&[
                p.position.to_string(),
                p.rounds.to_string(),
                r.ae_rounds_bound.to_string(),
            ]);
        }
        emit(
            &format!(
                "Replication: anti-entropy descent over a {}-object shard (depth {}; converged audit = {} round)",
                r.ae_leaves, r.ae_depth, r.converged_rounds
            ),
            &t,
            args.csv,
        );
        let mut t = TextTable::new(&["replicas", "objects", "objects/s", "sheds", "scaling"]);
        let base = r.fanout.first().map_or(1.0, |p| p.objects_per_sec);
        for p in &r.fanout {
            t.row(&[
                p.replicas.to_string(),
                p.objects.to_string(),
                format!("{:.1}", p.objects_per_sec),
                p.sheds.to_string(),
                format!("{:.2}x", p.objects_per_sec / base),
            ]);
        }
        emit(
            &format!(
                "Replication: verified-read fan-out ({} closed-loop clients, capacity {} conn/replica; catch-up {:.0} records/s over {} records)",
                r.fanout_clients, r.fanout_capacity, r.catchup_records_per_sec, r.catchup_records
            ),
            &t,
            args.csv,
        );
    }

    if let Some(records) = args.query {
        let r = run_query(&cfg, records);
        let mut t = TextTable::new(&["operator", "queries", "ops/s", "p99 (ms)", "slice records"]);
        for o in &r.ops {
            t.row(&[
                o.op.to_string(),
                o.queries.to_string(),
                format!("{:.1}", o.ops_per_sec),
                format!("{:.3}", o.p99_ms),
                format!("{:.1}", o.mean_slice_records),
            ]);
        }
        emit(
            &format!(
                "tep-query: verifiable slices over a {}-record lineage DAG ({} objects, {} participants; generated in {:.0} ms, index built in {:.0} ms)",
                r.records, r.objects, r.participants, r.generate_ms, r.index_build_ms
            ),
            &t,
            args.csv,
        );
    }

    if let Some(records) = args.compaction {
        let r = run_compaction(&cfg, records);
        let mut t = TextTable::new(&[
            "records",
            "bytes before",
            "bytes after",
            "ratio",
            "excised",
            "kept",
            "seal (ms)",
            "compact (ms)",
            "reopen (ms)",
        ]);
        t.row(&[
            (r.records + r.tail_records).to_string(),
            r.bytes_before.to_string(),
            r.bytes_after.to_string(),
            format!("{:.2}x", r.ratio),
            r.excised_frames.to_string(),
            r.kept_frames.to_string(),
            format!("{:.2}", r.seal_ms),
            format!("{:.2}", r.compact_ms),
            format!("{:.2}", r.reopen_ms),
        ]);
        emit(
            &format!(
                "Checkpointed log compaction ({} sealed records + {} tail)",
                r.records, r.tail_records
            ),
            &t,
            args.csv,
        );
        let mut t = TextTable::new(&["proofs", "prove p99 (us)", "verify p99 (us)"]);
        t.row(&[
            r.denial_proofs.to_string(),
            format!("{:.1}", r.denial_prove_p99_us),
            format!("{:.1}", r.denial_verify_p99_us),
        ]);
        emit(
            &format!(
                "Signed non-membership proofs over the {}-record shard tree",
                r.records
            ),
            &t,
            args.csv,
        );
    }

    if let Some(n) = args.tenants {
        let r = run_tenants(&cfg, n);
        let mut t = TextTable::new(&[
            "phase",
            "objects/s",
            "t1 p99 (us)",
            "attacker sheds",
            "victim sheds",
        ]);
        t.row(&[
            "solo".to_string(),
            format!("{:.1}", r.solo_objects_per_sec),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        t.row(&[
            "shared".to_string(),
            format!("{:.1}", r.shared_objects_per_sec),
            format!("{:.1}", r.shared_p99_us),
            "-".to_string(),
            "-".to_string(),
        ]);
        t.row(&[
            "attacked".to_string(),
            "-".to_string(),
            format!("{:.1}", r.attacked_p99_us),
            r.attacker_sheds.to_string(),
            r.victim_sheds.to_string(),
        ]);
        emit(
            &format!(
                "Multi-tenant fairness ({} tenants, {}-record chains, {} fetches/tenant)",
                r.tenants, r.records_per_tenant, r.fetches_per_tenant
            ),
            &t,
            args.csv,
        );
    }

    if args.json {
        let baseline = run_baseline(&cfg);
        let json = baseline.to_json();
        let path = "BENCH_baseline.json";
        match std::fs::write(path, &json) {
            Ok(()) => println!("== hot-path baseline ==\n{json}wrote {path}"),
            Err(e) => {
                eprintln!("repro: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
