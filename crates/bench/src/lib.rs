//! # tep-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§5):
//!
//! | Artifact | Runner | Bench target |
//! |---|---|---|
//! | Table 1 node counts | `tep_workloads::paper_node_count` | `repro --table1` |
//! | Fig 6 hashing time vs DB size | [`experiments::run_fig6`] | `fig6_hashing` |
//! | Fig 7 Basic vs Economical | [`experiments::run_fig7`] | `fig7_basic_vs_economical` |
//! | Fig 8/9 per-op-type time/space | [`experiments::run_setup_b`] | `fig8_op_types` |
//! | Fig 10/11 mixed-op time/space | [`experiments::run_setup_c`] | `fig10_mixed_ops` |
//! | §5.2 streaming large DB | [`experiments::run_large`] | `repro --large` |
//! | §3.2 local vs global chaining | [`experiments::run_chaining`] | `chaining_ablation` |
//! | Verification cost (extension) | [`experiments::run_verify_cost`] | `verify_cost` |
//!
//! The `repro` binary prints each experiment as an aligned text table plus
//! CSV, mirroring the paper's reporting (mean of N runs with 95% CIs).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod stats;
pub mod table;

pub use experiments::{
    fig7_cell_counts, run_ablation, run_chaining, run_fig6, run_fig7, run_fig7_points, run_large,
    run_setup_b, run_setup_b_once, run_setup_c, run_setup_c_once, run_verify_cost, AblationRow,
    ChainingResult, ExperimentConfig, Fig6Row, Fig7Row, LargeResult, SetupBRow, SetupBWorkload,
    SetupCRow, VerifyRow,
};
pub use stats::{ns_to_ms, Summary};
pub use table::TextTable;
