//! Aligned text tables and CSV emission for experiment output.

/// A simple column-aligned text table.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish; quotes fields containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["x", "value"]);
        t.row(&["1".into(), "short".into()]);
        t.row(&["100".into(), "longer-value".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("value"));
        assert!(lines[2].ends_with("short"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
