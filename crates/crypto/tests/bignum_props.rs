//! Property-based tests for the big-integer substrate.
//!
//! These pin down the ring axioms and division invariants that the RSA
//! implementation silently relies on.

use proptest::prelude::*;
use tep_crypto::BigUint;

/// Strategy: a BigUint with up to `max_limbs` random limbs.
fn biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(BigUint::from_limbs)
}

/// Strategy: a nonzero BigUint.
fn biguint_nonzero(max_limbs: usize) -> impl Strategy<Value = BigUint> {
    biguint(max_limbs).prop_filter("nonzero", |n| !n.is_zero())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_commutative(a in biguint(6), b in biguint(6)) {
        prop_assert_eq!(a.add_ref(&b), b.add_ref(&a));
    }

    #[test]
    fn add_associative(a in biguint(4), b in biguint(4), c in biguint(4)) {
        prop_assert_eq!(a.add_ref(&b).add_ref(&c), a.add_ref(&b.add_ref(&c)));
    }

    #[test]
    fn add_sub_roundtrip(a in biguint(6), b in biguint(6)) {
        let sum = a.add_ref(&b);
        prop_assert_eq!(sum.sub_ref(&b), a.clone());
        prop_assert_eq!(sum.sub_ref(&a), b);
    }

    #[test]
    fn mul_commutative(a in biguint(5), b in biguint(5)) {
        prop_assert_eq!(a.mul_ref(&b), b.mul_ref(&a));
    }

    #[test]
    fn mul_associative(a in biguint(3), b in biguint(3), c in biguint(3)) {
        prop_assert_eq!(a.mul_ref(&b).mul_ref(&c), a.mul_ref(&b.mul_ref(&c)));
    }

    #[test]
    fn mul_distributes_over_add(a in biguint(3), b in biguint(3), c in biguint(3)) {
        prop_assert_eq!(
            a.mul_ref(&b.add_ref(&c)),
            a.mul_ref(&b).add_ref(&a.mul_ref(&c))
        );
    }

    #[test]
    fn mul_identity_and_zero(a in biguint(6)) {
        prop_assert_eq!(a.mul_ref(&BigUint::one()), a.clone());
        prop_assert_eq!(a.mul_ref(&BigUint::zero()), BigUint::zero());
    }

    #[test]
    fn div_rem_reconstructs(a in biguint(8), b in biguint_nonzero(5)) {
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(q.mul_ref(&b).add_ref(&r), a);
        prop_assert!(r < b);
    }

    #[test]
    fn div_rem_self_is_one(a in biguint_nonzero(6)) {
        let (q, r) = a.div_rem(&a);
        prop_assert!(q.is_one());
        prop_assert!(r.is_zero());
    }

    #[test]
    fn shift_is_mul_by_power_of_two(a in biguint(4), bits in 0usize..130) {
        let shifted = a.shl_bits(bits);
        let pow = BigUint::one().shl_bits(bits);
        prop_assert_eq!(shifted, a.mul_ref(&pow));
    }

    #[test]
    fn bytes_roundtrip(a in biguint(6)) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_roundtrip(a in biguint(6)) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn modpow_matches_naive(
        b in biguint(3),
        e in biguint(1),
        m in biguint_nonzero(3).prop_filter("odd modulus > 1", |m| !m.is_even() && !m.is_one()),
    ) {
        prop_assert_eq!(b.modpow(&e, &m), b.modpow_naive(&e, &m));
    }

    #[test]
    fn modpow_product_of_exponents(
        b in biguint(2),
        e1 in 0u64..50, e2 in 0u64..50,
        m in biguint_nonzero(2).prop_filter("odd modulus > 1", |m| !m.is_even() && !m.is_one()),
    ) {
        // b^(e1+e2) = b^e1 · b^e2 (mod m)
        let lhs = b.modpow(&BigUint::from_u64(e1 + e2), &m);
        let rhs = b
            .modpow(&BigUint::from_u64(e1), &m)
            .mul_ref(&b.modpow(&BigUint::from_u64(e2), &m))
            .rem_ref(&m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn gcd_divides_both(a in biguint_nonzero(4), b in biguint_nonzero(4)) {
        let g = a.gcd(&b);
        prop_assert!(a.rem_ref(&g).is_zero());
        prop_assert!(b.rem_ref(&g).is_zero());
    }

    #[test]
    fn modinv_is_inverse(
        a in biguint_nonzero(3),
        m in biguint_nonzero(3).prop_filter("m > 1", |m| !m.is_one()),
    ) {
        if let Some(inv) = a.modinv(&m) {
            prop_assert_eq!(a.mul_ref(&inv).rem_ref(&m), BigUint::one());
            prop_assert!(inv < m);
        } else {
            // No inverse implies a nontrivial common factor.
            prop_assert!(!a.gcd(&m).is_one());
        }
    }

    #[test]
    fn ordering_consistent_with_subtraction(a in biguint(5), b in biguint(5)) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }
}
