//! SHA-256 (FIPS PUB 180-4), the recommended modern hash for provenance
//! checksums.

/// Digest size in bytes.
pub const SHA256_OUTPUT_LEN: usize = 32;

const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffer_len > 0 {
            let take = rest.len().min(64 - self.buffer_len);
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&rest[..take]);
            self.buffer_len += take;
            rest = &rest[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                compress_blocks(&mut self.state, &block);
                self.buffer_len = 0;
            }
        }
        // Full blocks straight from the input — no buffer copies.
        let full = rest.len() & !63;
        if full > 0 {
            compress_blocks(&mut self.state, &rest[..full]);
            rest = &rest[full..];
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffer_len = rest.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(self) -> [u8; SHA256_OUTPUT_LEN] {
        let mut state = self.state;
        let tail = crate::sha1::final_blocks(&self.buffer, self.buffer_len, self.total_len);
        compress_blocks(&mut state, tail.as_slice());
        let mut out = [0u8; SHA256_OUTPUT_LEN];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot digest: full blocks are compressed directly from `data` and
    /// the padded tail is built on the stack (see [`crate::sha1::Sha1::digest`]
    /// for why the fixed overhead matters on short provenance inputs).
    pub fn digest(data: &[u8]) -> [u8; SHA256_OUTPUT_LEN] {
        let mut state = H0;
        let full = data.len() & !63;
        if full > 0 {
            compress_blocks(&mut state, &data[..full]);
        }
        let rem = &data[full..];
        let mut buffer = [0u8; 64];
        buffer[..rem.len()].copy_from_slice(rem);
        let tail = crate::sha1::final_blocks(&buffer, rem.len(), data.len() as u64);
        compress_blocks(&mut state, tail.as_slice());
        let mut out = [0u8; SHA256_OUTPUT_LEN];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// Compresses a run of whole 64-byte blocks into `state`.
///
/// Uses a 16-word rolling message schedule (the expanded word is computed in
/// place as each round consumes it) instead of materializing the full
/// 64-word array up front — less stack traffic and a tighter loop body.
fn compress_blocks(state: &mut [u32; 8], blocks: &[u8]) {
    debug_assert_eq!(blocks.len() % 64, 0);
    for block in blocks.chunks_exact(64) {
        let mut w = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

        macro_rules! round {
            ($k:expr, $wi:expr) => {{
                let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
                let ch = g ^ (e & (f ^ g));
                let t1 = h
                    .wrapping_add(s1)
                    .wrapping_add(ch)
                    .wrapping_add($k)
                    .wrapping_add($wi);
                let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
                let maj = (a & b) | (c & (a | b));
                let t2 = s0.wrapping_add(maj);
                h = g;
                g = f;
                f = e;
                e = d.wrapping_add(t1);
                d = c;
                c = b;
                b = a;
                a = t1.wrapping_add(t2);
            }};
        }

        for i in 0..16 {
            round!(K[i], w[i]);
        }
        for (i, &k) in K.iter().enumerate().skip(16) {
            let s = i & 15;
            let w15 = w[(s + 1) & 15];
            let w2 = w[(s + 14) & 15];
            let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
            let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
            w[s] = w[s]
                .wrapping_add(s0)
                .wrapping_add(w[(s + 9) & 15])
                .wrapping_add(s1);
            round!(k, w[s]);
        }

        let add = [a, b, c, d, e, f, g, h];
        for (s, v) in state.iter_mut().zip(add) {
            *s = s.wrapping_add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    #[test]
    fn nist_test_vectors() {
        assert_eq!(
            to_hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            to_hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 10_000];
        for _ in 0..100 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(777).collect();
        for split in [0usize, 1, 31, 63, 64, 65, 400, 776, 777] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split={split}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Sha256::digest(b"a"), Sha256::digest(b"b"));
        assert_ne!(Sha256::digest(b""), Sha256::digest(b"\0"));
        // Concatenation ambiguity check: ("ab","c") vs ("a","bc") hash the
        // same bytes — same digest — which is why the canonical encoding in
        // tep-model length-prefixes fields.
        let mut h1 = Sha256::new();
        h1.update(b"ab");
        h1.update(b"c");
        let mut h2 = Sha256::new();
        h2.update(b"a");
        h2.update(b"bc");
        assert_eq!(h1.finalize(), h2.finalize());
    }
}
