//! # tep-crypto
//!
//! From-scratch cryptographic substrate for tamper-evident database
//! provenance: the primitives the paper assumes in §2.3 ("a suitable
//! public-key infrastructure", cryptographic hash functions, and public-key
//! signatures), implemented without external crypto dependencies.
//!
//! * [`bignum`] — arbitrary-precision unsigned integers with Montgomery
//!   modular exponentiation and Miller–Rabin prime generation.
//! * [`sha1`] / [`sha256`] — FIPS-180 hash functions; [`digest`] selects
//!   between them at runtime.
//! * [`rsa`] — PKCS#1 v1.5 signatures with CRT acceleration (the `S_SKp(·)`
//!   primitive of every provenance checksum).
//! * [`pki`] — simulated certificate authority, participant enrollment, and
//!   the recipient-side key directory.
//!
//! SHA-1 and 1024-bit RSA are supported for fidelity with the paper's 2009
//! evaluation (20-byte digests, 128-byte checksums); SHA-256 and 2048-bit
//! keys are the recommended defaults for anything real.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bignum;
pub mod digest;
pub mod hex;
pub mod pki;
pub mod rsa;
pub mod sha1;
pub mod sha256;

pub use bignum::BigUint;
pub use digest::{HashAlgorithm, Hasher};
pub use pki::{
    Certificate, CertificateAuthority, KeyDirectory, Keyring, Participant, ParticipantId, PkiError,
};
pub use rsa::{KeyPair, RsaError, RsaPrivateKey, RsaPublicKey};
