//! A simulated public-key infrastructure.
//!
//! The paper assumes "a suitable public-key infrastructure, and that each
//! participant is authenticated by a certificate authority" (§2.3). This
//! module provides that substrate: a [`CertificateAuthority`] that issues
//! [`Certificate`]s binding participant identities to RSA public keys, a
//! [`KeyDirectory`] a data recipient uses to resolve and validate signer
//! keys, and a [`Participant`] handle bundling an identity with its signing
//! key.

use crate::digest::HashAlgorithm;
use crate::rsa::{KeyPair, RsaError, RsaPublicKey};
use rand::RngCore;
use std::collections::HashMap;
use std::fmt;
use tep_obs::{Counter, Histogram, Registry};

/// Signer-side instrumentation: `tep_crypto_sign_ns` latency,
/// `tep_crypto_sign_total`, and the shared `tep_crypto_modpow_total`
/// (one private-key modular exponentiation per signature).
#[derive(Clone)]
struct SignObs {
    sign_ns: Histogram,
    signs: Counter,
    modpow: Counter,
}

impl SignObs {
    fn new(registry: &Registry) -> Self {
        SignObs {
            sign_ns: registry.latency_histogram("tep_crypto_sign_ns"),
            signs: registry.counter("tep_crypto_sign_total"),
            modpow: registry.counter("tep_crypto_modpow_total"),
        }
    }
}

/// Recipient-side instrumentation: `tep_crypto_verify_ns` latency,
/// `tep_crypto_verify_total`, and the shared `tep_crypto_modpow_total`
/// (one public-key modular exponentiation per verification).
#[derive(Clone)]
struct VerifyObs {
    verify_ns: Histogram,
    verifies: Counter,
    modpow: Counter,
}

impl VerifyObs {
    fn new(registry: &Registry) -> Self {
        VerifyObs {
            verify_ns: registry.latency_histogram("tep_crypto_verify_ns"),
            verifies: registry.counter("tep_crypto_verify_total"),
            modpow: registry.counter("tep_crypto_modpow_total"),
        }
    }
}

/// Identity of a participant (user, process, transaction, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParticipantId(pub u64);

impl fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Errors from PKI operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PkiError {
    /// The certificate's CA signature did not verify.
    BadCertificate(ParticipantId),
    /// No certificate registered for this participant.
    UnknownParticipant(ParticipantId),
    /// Underlying RSA failure.
    Rsa(RsaError),
}

impl fmt::Display for PkiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PkiError::BadCertificate(p) => write!(f, "certificate for {p} failed verification"),
            PkiError::UnknownParticipant(p) => write!(f, "no certificate for participant {p}"),
            PkiError::Rsa(e) => write!(f, "rsa error: {e}"),
        }
    }
}

impl std::error::Error for PkiError {}

impl From<RsaError> for PkiError {
    fn from(e: RsaError) -> Self {
        PkiError::Rsa(e)
    }
}

/// A certificate binding a [`ParticipantId`] to an RSA public key, signed by
/// the certificate authority.
#[derive(Clone, Debug)]
pub struct Certificate {
    subject: ParticipantId,
    public_key: RsaPublicKey,
    ca_signature: Vec<u8>,
}

impl Certificate {
    /// The participant this certificate vouches for.
    pub fn subject(&self) -> ParticipantId {
        self.subject
    }

    /// The certified public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public_key
    }

    /// Canonical signed payload: `subject || public_key`.
    fn payload(subject: ParticipantId, key: &RsaPublicKey) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"TEP-CERT\x01");
        out.extend_from_slice(&subject.0.to_be_bytes());
        out.extend_from_slice(&key.to_bytes());
        out
    }

    /// Verifies the CA signature against `ca_key`.
    pub fn verify(&self, alg: HashAlgorithm, ca_key: &RsaPublicKey) -> Result<(), PkiError> {
        let payload = Self::payload(self.subject, &self.public_key);
        ca_key
            .verify(alg, &payload, &self.ca_signature)
            .map_err(|_| PkiError::BadCertificate(self.subject))
    }

    /// Stable byte encoding: `subject || len(key) || key || len(sig) || sig`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let key = self.public_key.to_bytes();
        let mut out = Vec::with_capacity(16 + key.len() + self.ca_signature.len());
        out.extend_from_slice(&self.subject.0.to_be_bytes());
        out.extend_from_slice(&(key.len() as u32).to_be_bytes());
        out.extend_from_slice(&key);
        out.extend_from_slice(&(self.ca_signature.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.ca_signature);
        out
    }

    /// Inverse of [`Self::to_bytes`]; returns the certificate and the
    /// remaining input.
    pub fn from_bytes(bytes: &[u8]) -> Option<(Self, &[u8])> {
        if bytes.len() < 8 {
            return None;
        }
        let subject = ParticipantId(u64::from_be_bytes(bytes[..8].try_into().ok()?));
        let rest = &bytes[8..];
        let (key_bytes, rest) = read_u32_prefixed(rest)?;
        let public_key = RsaPublicKey::from_bytes(key_bytes)?;
        let (sig, rest) = read_u32_prefixed(rest)?;
        Some((
            Certificate {
                subject,
                public_key,
                ca_signature: sig.to_vec(),
            },
            rest,
        ))
    }
}

fn read_u32_prefixed(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    if bytes.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes(bytes[..4].try_into().ok()?) as usize;
    let rest = &bytes[4..];
    if rest.len() < len {
        return None;
    }
    Some((&rest[..len], &rest[len..]))
}

/// A serializable bundle of trust material: the CA public key plus a set of
/// participant certificates — what a data recipient needs to verify
/// provenance, packaged for distribution as a single blob/file.
#[derive(Clone, Debug)]
pub struct Keyring {
    ca_key: RsaPublicKey,
    alg: HashAlgorithm,
    certs: Vec<Certificate>,
}

impl Keyring {
    /// Creates a keyring trusting `ca_key`.
    pub fn new(ca_key: RsaPublicKey, alg: HashAlgorithm) -> Self {
        Keyring {
            ca_key,
            alg,
            certs: Vec::new(),
        }
    }

    /// Adds a certificate (validated against the CA on
    /// [`Self::into_directory`], not here).
    pub fn add(&mut self, cert: Certificate) {
        self.certs.push(cert);
    }

    /// Number of certificates.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// `true` when the keyring holds no certificates.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }

    /// Byte encoding: magic, algorithm, CA key, cert count, certs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let ca = self.ca_key.to_bytes();
        let mut out = Vec::new();
        out.extend_from_slice(b"TEPKEYS\x01");
        out.push(self.alg.wire_id());
        out.extend_from_slice(&(ca.len() as u32).to_be_bytes());
        out.extend_from_slice(&ca);
        out.extend_from_slice(&(self.certs.len() as u32).to_be_bytes());
        for cert in &self.certs {
            out.extend_from_slice(&cert.to_bytes());
        }
        out
    }

    /// Inverse of [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let rest = bytes.strip_prefix(b"TEPKEYS\x01")?;
        let (&alg_id, rest) = rest.split_first()?;
        let alg = HashAlgorithm::from_wire_id(alg_id)?;
        let (ca_bytes, rest) = read_u32_prefixed(rest)?;
        let ca_key = RsaPublicKey::from_bytes(ca_bytes)?;
        if rest.len() < 4 {
            return None;
        }
        let count = u32::from_be_bytes(rest[..4].try_into().ok()?) as usize;
        let mut rest = &rest[4..];
        let mut certs = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let (cert, r) = Certificate::from_bytes(rest)?;
            certs.push(cert);
            rest = r;
        }
        if !rest.is_empty() {
            return None;
        }
        Some(Keyring { ca_key, alg, certs })
    }

    /// Validates every certificate and builds a [`KeyDirectory`].
    pub fn into_directory(self) -> Result<KeyDirectory, PkiError> {
        let mut dir = KeyDirectory::new(self.ca_key, self.alg);
        for cert in self.certs {
            dir.register(cert)?;
        }
        Ok(dir)
    }

    /// The hash algorithm the keyring's signatures use.
    pub fn algorithm(&self) -> HashAlgorithm {
        self.alg
    }
}

/// A certificate authority: generates its own key pair and signs
/// participant certificates.
pub struct CertificateAuthority {
    keypair: KeyPair,
    alg: HashAlgorithm,
}

impl CertificateAuthority {
    /// Creates a CA with a fresh `bits`-bit RSA key.
    pub fn new(bits: usize, alg: HashAlgorithm, rng: &mut dyn RngCore) -> Self {
        CertificateAuthority {
            keypair: KeyPair::generate(bits, rng),
            alg,
        }
    }

    /// The CA's public key, distributed out-of-band to recipients.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keypair.public()
    }

    /// The hash algorithm this CA signs with.
    pub fn algorithm(&self) -> HashAlgorithm {
        self.alg
    }

    /// Issues a certificate for `subject`'s `public_key`.
    pub fn issue(&self, subject: ParticipantId, public_key: &RsaPublicKey) -> Certificate {
        let payload = Certificate::payload(subject, public_key);
        let ca_signature = self
            .keypair
            .sign(self.alg, &payload)
            .expect("CA key is large enough for its own digest");
        Certificate {
            subject,
            public_key: public_key.clone(),
            ca_signature,
        }
    }

    /// Convenience: generates a key pair for `subject` and certifies it.
    pub fn enroll(
        &self,
        subject: ParticipantId,
        key_bits: usize,
        rng: &mut dyn RngCore,
    ) -> Participant {
        let keypair = KeyPair::generate(key_bits, rng);
        let certificate = self.issue(subject, keypair.public());
        Participant {
            id: subject,
            keypair,
            certificate,
            obs: None,
        }
    }
}

/// A participant: identity, signing key, and CA-issued certificate.
#[derive(Clone)]
pub struct Participant {
    id: ParticipantId,
    keypair: KeyPair,
    certificate: Certificate,
    obs: Option<SignObs>,
}

impl Participant {
    /// The participant's identity.
    pub fn id(&self) -> ParticipantId {
        self.id
    }

    /// The participant's key pair.
    pub fn keypair(&self) -> &KeyPair {
        &self.keypair
    }

    /// The CA-issued certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// Signs `message` with the participant's key.
    pub fn sign(&self, alg: HashAlgorithm, message: &[u8]) -> Result<Vec<u8>, RsaError> {
        let timer = self.obs.as_ref().map(|o| o.sign_ns.start_timer());
        let sig = self.keypair.sign(alg, message)?;
        drop(timer);
        if let Some(o) = &self.obs {
            o.signs.inc();
            o.modpow.inc();
        }
        Ok(sig)
    }

    /// Attaches metric instrumentation; subsequent [`Participant::sign`]
    /// calls record `tep_crypto_sign_*` into `registry`.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(SignObs::new(registry));
    }
}

impl fmt::Debug for Participant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Participant")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

/// The recipient-side key directory: validates certificates against the CA
/// key and resolves participant → public key for checksum verification.
#[derive(Clone)]
pub struct KeyDirectory {
    ca_key: RsaPublicKey,
    alg: HashAlgorithm,
    certs: HashMap<ParticipantId, Certificate>,
    obs: Option<VerifyObs>,
}

impl KeyDirectory {
    /// Creates a directory trusting `ca_key`.
    pub fn new(ca_key: RsaPublicKey, alg: HashAlgorithm) -> Self {
        KeyDirectory {
            ca_key,
            alg,
            certs: HashMap::new(),
            obs: None,
        }
    }

    /// Attaches metric instrumentation; subsequent
    /// [`KeyDirectory::verify_signature`] calls record `tep_crypto_verify_*`
    /// into `registry`.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(VerifyObs::new(registry));
    }

    /// Resolves `p`'s public key and checks `signature` over `message`,
    /// recording verification latency when instrumentation is attached.
    pub fn verify_signature(
        &self,
        p: ParticipantId,
        alg: HashAlgorithm,
        message: &[u8],
        signature: &[u8],
    ) -> Result<(), PkiError> {
        let key = self.public_key(p)?;
        let timer = self.obs.as_ref().map(|o| o.verify_ns.start_timer());
        let outcome = key.verify(alg, message, signature);
        drop(timer);
        if let Some(o) = &self.obs {
            o.verifies.inc();
            o.modpow.inc();
        }
        outcome.map_err(PkiError::from)
    }

    /// Registers a certificate after verifying the CA signature.
    pub fn register(&mut self, cert: Certificate) -> Result<(), PkiError> {
        cert.verify(self.alg, &self.ca_key)?;
        self.certs.insert(cert.subject(), cert);
        Ok(())
    }

    /// Resolves a participant's verified public key.
    pub fn public_key(&self, p: ParticipantId) -> Result<&RsaPublicKey, PkiError> {
        self.certs
            .get(&p)
            .map(Certificate::public_key)
            .ok_or(PkiError::UnknownParticipant(p))
    }

    /// Number of registered participants.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// `true` when no certificates are registered.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    fn setup() -> (CertificateAuthority, StdRng) {
        let mut rng = StdRng::seed_from_u64(11);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        (ca, rng)
    }

    #[test]
    fn enroll_and_verify_certificate() {
        let (ca, mut rng) = setup();
        let p = ca.enroll(ParticipantId(1), 512, &mut rng);
        p.certificate().verify(ALG, ca.public_key()).unwrap();
        assert_eq!(p.certificate().subject(), ParticipantId(1));
    }

    #[test]
    fn forged_certificate_rejected() {
        let (ca, mut rng) = setup();
        let rogue_ca = CertificateAuthority::new(512, ALG, &mut rng);
        let p = rogue_ca.enroll(ParticipantId(2), 512, &mut rng);
        assert_eq!(
            p.certificate().verify(ALG, ca.public_key()),
            Err(PkiError::BadCertificate(ParticipantId(2)))
        );
    }

    #[test]
    fn certificate_subject_swap_rejected() {
        let (ca, mut rng) = setup();
        let p = ca.enroll(ParticipantId(3), 512, &mut rng);
        let mut cert = p.certificate().clone();
        cert.subject = ParticipantId(4); // claim someone else's key binding
        assert!(cert.verify(ALG, ca.public_key()).is_err());
    }

    #[test]
    fn directory_register_and_lookup() {
        let (ca, mut rng) = setup();
        let p1 = ca.enroll(ParticipantId(1), 512, &mut rng);
        let p2 = ca.enroll(ParticipantId(2), 512, &mut rng);
        let mut dir = KeyDirectory::new(ca.public_key().clone(), ALG);
        assert!(dir.is_empty());
        dir.register(p1.certificate().clone()).unwrap();
        dir.register(p2.certificate().clone()).unwrap();
        assert_eq!(dir.len(), 2);
        assert_eq!(
            dir.public_key(ParticipantId(1)).unwrap(),
            p1.keypair().public()
        );
        assert_eq!(
            dir.public_key(ParticipantId(9)),
            Err(PkiError::UnknownParticipant(ParticipantId(9)))
        );
    }

    #[test]
    fn directory_rejects_untrusted_cert() {
        let (ca, mut rng) = setup();
        let rogue = CertificateAuthority::new(512, ALG, &mut rng);
        let p = rogue.enroll(ParticipantId(5), 512, &mut rng);
        let mut dir = KeyDirectory::new(ca.public_key().clone(), ALG);
        assert!(dir.register(p.certificate().clone()).is_err());
        assert!(dir.is_empty());
    }

    #[test]
    fn certificate_bytes_roundtrip() {
        let (ca, mut rng) = setup();
        let p = ca.enroll(ParticipantId(9), 512, &mut rng);
        let bytes = p.certificate().to_bytes();
        let (cert, rest) = Certificate::from_bytes(&bytes).unwrap();
        assert!(rest.is_empty());
        assert_eq!(cert.subject(), ParticipantId(9));
        assert_eq!(cert.public_key(), p.keypair().public());
        cert.verify(ALG, ca.public_key()).unwrap();
        // Truncation fails cleanly.
        assert!(Certificate::from_bytes(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn keyring_roundtrip_and_validation() {
        let (ca, mut rng) = setup();
        let p1 = ca.enroll(ParticipantId(1), 512, &mut rng);
        let p2 = ca.enroll(ParticipantId(2), 512, &mut rng);
        let mut ring = Keyring::new(ca.public_key().clone(), ALG);
        assert!(ring.is_empty());
        ring.add(p1.certificate().clone());
        ring.add(p2.certificate().clone());
        let bytes = ring.to_bytes();
        let back = Keyring::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.algorithm(), ALG);
        let dir = back.into_directory().unwrap();
        assert_eq!(dir.len(), 2);
        assert_eq!(
            dir.public_key(ParticipantId(1)).unwrap(),
            p1.keypair().public()
        );
        // Corrupt bytes rejected.
        assert!(Keyring::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(Keyring::from_bytes(b"not a keyring").is_none());
    }

    #[test]
    fn keyring_with_rogue_cert_fails_directory_build() {
        let (ca, mut rng) = setup();
        let rogue = CertificateAuthority::new(512, ALG, &mut rng);
        let eve = rogue.enroll(ParticipantId(6), 512, &mut rng);
        let mut ring = Keyring::new(ca.public_key().clone(), ALG);
        ring.add(eve.certificate().clone());
        assert!(ring.into_directory().is_err());
    }

    #[test]
    fn participant_signature_verifies_via_directory() {
        let (ca, mut rng) = setup();
        let p = ca.enroll(ParticipantId(1), 512, &mut rng);
        let mut dir = KeyDirectory::new(ca.public_key().clone(), ALG);
        dir.register(p.certificate().clone()).unwrap();
        let sig = p.sign(ALG, b"record").unwrap();
        dir.public_key(p.id())
            .unwrap()
            .verify(ALG, b"record", &sig)
            .unwrap();
    }
}
