//! Runtime-selectable hash algorithm used throughout the provenance stack.
//!
//! The paper's implementation used `MessageDigest("SHA")` (SHA-1, 20-byte
//! digests). [`HashAlgorithm`] lets the whole stack switch between SHA-1
//! (paper fidelity) and SHA-256 (modern default for new deployments) with a
//! single configuration value.

use crate::sha1::{Sha1, SHA1_OUTPUT_LEN};
use crate::sha256::{Sha256, SHA256_OUTPUT_LEN};
use std::fmt;

/// A digest value stored inline (length + fixed buffer, no heap
/// allocation).
///
/// The provenance hash cache holds one digest per database node; storing
/// them as `Vec<u8>` costs an allocation and a pointer chase per node,
/// which dominates the economical-mode hot path. `Digest` is 33 bytes of
/// plain data and `Copy`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest {
    len: u8,
    bytes: [u8; SHA256_OUTPUT_LEN],
}

impl Digest {
    /// Wraps raw digest bytes.
    ///
    /// # Panics
    /// Panics if `bytes` is longer than 32 bytes.
    pub fn from_slice(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= SHA256_OUTPUT_LEN, "digest too long");
        let mut out = Digest {
            len: bytes.len() as u8,
            bytes: [0u8; SHA256_OUTPUT_LEN],
        };
        out.bytes[..bytes.len()].copy_from_slice(bytes);
        out
    }

    /// The digest bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Copies the digest into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Digest length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` for a zero-length digest (never produced by hashing).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<[u8; SHA1_OUTPUT_LEN]> for Digest {
    fn from(bytes: [u8; SHA1_OUTPUT_LEN]) -> Self {
        Digest::from_slice(&bytes)
    }
}

impl From<[u8; SHA256_OUTPUT_LEN]> for Digest {
    fn from(bytes: [u8; SHA256_OUTPUT_LEN]) -> Self {
        Digest {
            len: SHA256_OUTPUT_LEN as u8,
            bytes,
        }
    }
}

impl PartialEq<[u8]> for Digest {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", crate::hex::to_hex(self.as_slice()))
    }
}

/// Supported cryptographic hash functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum HashAlgorithm {
    /// SHA-1 — what the paper used; kept for reproduction fidelity.
    Sha1,
    /// SHA-256 — the recommended algorithm for new deployments.
    #[default]
    Sha256,
}

impl HashAlgorithm {
    /// Digest length in bytes.
    pub fn output_len(self) -> usize {
        match self {
            HashAlgorithm::Sha1 => SHA1_OUTPUT_LEN,
            HashAlgorithm::Sha256 => SHA256_OUTPUT_LEN,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(self, data: &[u8]) -> Vec<u8> {
        match self {
            HashAlgorithm::Sha1 => Sha1::digest(data).to_vec(),
            HashAlgorithm::Sha256 => Sha256::digest(data).to_vec(),
        }
    }

    /// One-shot digest of `data` as an inline [`Digest`] (no allocation).
    pub fn digest_fixed(self, data: &[u8]) -> Digest {
        match self {
            HashAlgorithm::Sha1 => Sha1::digest(data).into(),
            HashAlgorithm::Sha256 => Sha256::digest(data).into(),
        }
    }

    /// Starts an incremental hasher for this algorithm.
    pub fn hasher(self) -> Hasher {
        match self {
            HashAlgorithm::Sha1 => Hasher::Sha1(Sha1::new()),
            HashAlgorithm::Sha256 => Hasher::Sha256(Sha256::new()),
        }
    }

    /// Stable on-disk identifier (used in storage headers).
    pub fn wire_id(self) -> u8 {
        match self {
            HashAlgorithm::Sha1 => 1,
            HashAlgorithm::Sha256 => 2,
        }
    }

    /// Inverse of [`Self::wire_id`].
    pub fn from_wire_id(id: u8) -> Option<Self> {
        match id {
            1 => Some(HashAlgorithm::Sha1),
            2 => Some(HashAlgorithm::Sha256),
            _ => None,
        }
    }
}

/// Incremental hasher over a runtime-selected algorithm.
#[derive(Clone)]
pub enum Hasher {
    /// SHA-1 state.
    Sha1(Sha1),
    /// SHA-256 state.
    Sha256(Sha256),
}

impl Hasher {
    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        match self {
            Hasher::Sha1(h) => h.update(data),
            Hasher::Sha256(h) => h.update(data),
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(self) -> Vec<u8> {
        match self {
            Hasher::Sha1(h) => h.finalize().to_vec(),
            Hasher::Sha256(h) => h.finalize().to_vec(),
        }
    }

    /// Finishes and returns the digest as an inline [`Digest`].
    pub fn finalize_fixed(self) -> Digest {
        match self {
            Hasher::Sha1(h) => h.finalize().into(),
            Hasher::Sha256(h) => h.finalize().into(),
        }
    }

    /// The algorithm this hasher runs.
    pub fn algorithm(&self) -> HashAlgorithm {
        match self {
            Hasher::Sha1(_) => HashAlgorithm::Sha1,
            Hasher::Sha256(_) => HashAlgorithm::Sha256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_lengths() {
        assert_eq!(HashAlgorithm::Sha1.output_len(), 20);
        assert_eq!(HashAlgorithm::Sha256.output_len(), 32);
        assert_eq!(HashAlgorithm::Sha1.digest(b"x").len(), 20);
        assert_eq!(HashAlgorithm::Sha256.digest(b"x").len(), 32);
    }

    #[test]
    fn incremental_matches_oneshot() {
        for alg in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            let mut h = alg.hasher();
            h.update(b"hello ");
            h.update(b"world");
            assert_eq!(h.finalize(), alg.digest(b"hello world"));
        }
    }

    #[test]
    fn wire_id_roundtrip() {
        for alg in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            assert_eq!(HashAlgorithm::from_wire_id(alg.wire_id()), Some(alg));
        }
        assert_eq!(HashAlgorithm::from_wire_id(0), None);
        assert_eq!(HashAlgorithm::from_wire_id(99), None);
    }

    #[test]
    fn fixed_digest_matches_vec() {
        for alg in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            let fixed = alg.digest_fixed(b"inline");
            assert_eq!(fixed.as_slice(), alg.digest(b"inline").as_slice());
            assert_eq!(fixed.len(), alg.output_len());
            assert!(!fixed.is_empty());
            let mut h = alg.hasher();
            h.update(b"inline");
            assert_eq!(h.finalize_fixed(), fixed);
        }
        assert_ne!(
            HashAlgorithm::Sha256.digest_fixed(b"a"),
            HashAlgorithm::Sha256.digest_fixed(b"b")
        );
    }

    #[test]
    fn algorithm_accessor() {
        assert_eq!(
            HashAlgorithm::Sha1.hasher().algorithm(),
            HashAlgorithm::Sha1
        );
        assert_eq!(
            HashAlgorithm::Sha256.hasher().algorithm(),
            HashAlgorithm::Sha256
        );
    }
}
