//! RSA signatures (PKCS#1 v1.5) built on [`crate::bignum`].
//!
//! This is the `S_SKp(·)` primitive of the paper: hash the message, encode
//! the digest with EMSA-PKCS1-v1_5, and apply the private-key operation.
//! Signing uses the Chinese Remainder Theorem for a ~4× speedup — the
//! signature cost dominates every checksum the provenance layer produces, so
//! this matters for the Figure 8/10 reproductions.
//!
//! A 1024-bit key yields 128-byte signatures, matching the paper's
//! `Checksum binary(128)` column byte-for-byte.

use crate::bignum::{gen_prime, BigUint, MontgomeryCtx};
use crate::digest::HashAlgorithm;
use rand::RngCore;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Errors from RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Message representative is too large for the modulus.
    MessageTooLong,
    /// Signature failed verification.
    BadSignature,
    /// Key parameters are unusable (e.g. modulus too small for the padding).
    InvalidKey(&'static str),
}

impl fmt::Display for RsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsaError::MessageTooLong => write!(f, "message representative exceeds modulus"),
            RsaError::BadSignature => write!(f, "signature verification failed"),
            RsaError::InvalidKey(why) => write!(f, "invalid RSA key: {why}"),
        }
    }
}

impl std::error::Error for RsaError {}

/// DER DigestInfo prefix for SHA-1 (RFC 8017 §9.2 note 1).
const SHA1_PREFIX: &[u8] = &[
    0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04, 0x14,
];

/// DER DigestInfo prefix for SHA-256.
const SHA256_PREFIX: &[u8] = &[
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

fn digest_info_prefix(alg: HashAlgorithm) -> &'static [u8] {
    match alg {
        HashAlgorithm::Sha1 => SHA1_PREFIX,
        HashAlgorithm::Sha256 => SHA256_PREFIX,
    }
}

/// An RSA public key `(n, e)`.
///
/// Carries a lazily built, `Arc`-shared Montgomery context for the modulus:
/// the first verification pays the context setup (one long division for
/// `R² mod n`) and every subsequent verification — including through clones,
/// e.g. a `KeyDirectory` fanned out across verifier threads — reuses it.
#[derive(Clone)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    verify_ctx: Arc<OnceLock<MontgomeryCtx>>,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

impl fmt::Debug for RsaPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RsaPublicKey")
            .field("n", &self.n)
            .field("e", &self.e)
            .finish()
    }
}

impl RsaPublicKey {
    /// Constructs from raw components.
    pub fn new(n: BigUint, e: BigUint) -> Self {
        RsaPublicKey {
            n,
            e,
            verify_ctx: Arc::new(OnceLock::new()),
        }
    }

    /// Modulus size in bytes (also the signature length).
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// The modulus `n`.
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn e(&self) -> &BigUint {
        &self.e
    }

    /// Verifies a PKCS#1 v1.5 signature over `message`.
    pub fn verify(
        &self,
        alg: HashAlgorithm,
        message: &[u8],
        signature: &[u8],
    ) -> Result<(), RsaError> {
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(RsaError::BadSignature);
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return Err(RsaError::BadSignature);
        }
        // Well-formed RSA moduli are odd products of two primes; hostile or
        // corrupted key material (even / degenerate n) takes the total
        // fallback path instead of panicking in the Montgomery setup.
        let em = if self.n.is_even() || self.n.is_one() {
            s.modpow(&self.e, &self.n)
        } else {
            self.verify_ctx
                .get_or_init(|| MontgomeryCtx::new(&self.n))
                .modpow(&s, &self.e)
        };
        let em_bytes = em.to_bytes_be_padded(k).ok_or(RsaError::BadSignature)?;
        let expected = emsa_pkcs1_v15_encode(alg, message, k)?;
        if em_bytes == expected {
            Ok(())
        } else {
            Err(RsaError::BadSignature)
        }
    }

    /// Stable byte encoding: `len(n) || n || len(e) || e` (u32-BE lengths).
    pub fn to_bytes(&self) -> Vec<u8> {
        let nb = self.n.to_bytes_be();
        let eb = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(8 + nb.len() + eb.len());
        out.extend_from_slice(&(nb.len() as u32).to_be_bytes());
        out.extend_from_slice(&nb);
        out.extend_from_slice(&(eb.len() as u32).to_be_bytes());
        out.extend_from_slice(&eb);
        out
    }

    /// Inverse of [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let (n, rest) = read_len_prefixed(bytes)?;
        let (e, rest) = read_len_prefixed(rest)?;
        if !rest.is_empty() {
            return None;
        }
        Some(RsaPublicKey::new(
            BigUint::from_bytes_be(n),
            BigUint::from_bytes_be(e),
        ))
    }
}

fn read_len_prefixed(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    if bytes.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes(bytes[..4].try_into().ok()?) as usize;
    let rest = &bytes[4..];
    if rest.len() < len {
        return None;
    }
    Some((&rest[..len], &rest[len..]))
}

/// An RSA private key with CRT parameters.
///
/// Wrapped in [`Arc`] by [`KeyPair`] so participants can share it cheaply
/// across threads.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
    /// Montgomery contexts for `p` and `q`, precomputed at key generation:
    /// every CRT signing operation reuses them instead of re-deriving
    /// `R² mod p` / `R² mod q` (a long division each) per signature.
    ctx_p: MontgomeryCtx,
    ctx_q: MontgomeryCtx,
}

impl fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print secret material.
        f.debug_struct("RsaPrivateKey")
            .field("modulus_bits", &self.public.n.bit_len())
            .finish_non_exhaustive()
    }
}

impl RsaPrivateKey {
    /// The corresponding public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Signs `message` with PKCS#1 v1.5 over the given hash.
    pub fn sign(&self, alg: HashAlgorithm, message: &[u8]) -> Result<Vec<u8>, RsaError> {
        let k = self.public.modulus_len();
        let em = emsa_pkcs1_v15_encode(alg, message, k)?;
        let m = BigUint::from_bytes_be(&em);
        if m >= self.public.n {
            return Err(RsaError::MessageTooLong);
        }
        let s = self.private_op(&m);
        s.to_bytes_be_padded(k).ok_or(RsaError::MessageTooLong)
    }

    /// Raw private-key operation `m^d mod n` via CRT.
    fn private_op(&self, m: &BigUint) -> BigUint {
        let m1 = self.ctx_p.modpow(m, &self.dp);
        let m2 = self.ctx_q.modpow(m, &self.dq);
        // h = qinv·(m1 - m2) mod p, guarding the subtraction against underflow.
        let m2_mod_p = m2.rem_ref(&self.p);
        let diff = if m1 >= m2_mod_p {
            m1.sub_ref(&m2_mod_p)
        } else {
            m1.add_ref(&self.p).sub_ref(&m2_mod_p)
        };
        let h = self.qinv.mul_ref(&diff).rem_ref(&self.p);
        m2.add_ref(&h.mul_ref(&self.q))
    }

    /// Slow non-CRT private operation, kept for cross-checking in tests.
    #[doc(hidden)]
    pub fn private_op_no_crt(&self, m: &BigUint) -> BigUint {
        m.modpow(&self.d, &self.public.n)
    }
}

/// An RSA key pair; cloning shares the underlying key material.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use tep_crypto::{HashAlgorithm, KeyPair};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let kp = KeyPair::generate(512, &mut rng);
/// let sig = kp.sign(HashAlgorithm::Sha256, b"provenance record").unwrap();
/// assert!(kp.public().verify(HashAlgorithm::Sha256, b"provenance record", &sig).is_ok());
/// assert!(kp.public().verify(HashAlgorithm::Sha256, b"forged", &sig).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct KeyPair {
    secret: Arc<RsaPrivateKey>,
}

impl KeyPair {
    /// Generates a fresh key pair with a `bits`-bit modulus (e = 65537).
    ///
    /// # Panics
    /// Panics if `bits < 512` (the PKCS#1 v1.5 padding needs the room, and
    /// anything smaller is toy-sized even for tests).
    pub fn generate(bits: usize, rng: &mut dyn RngCore) -> Self {
        assert!(bits >= 512, "RSA modulus must be at least 512 bits");
        let e = BigUint::from_u64(65537);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul_ref(&q);
            if n.bit_len() != bits {
                continue;
            }
            let one = BigUint::one();
            let phi = p.sub_ref(&one).mul_ref(&q.sub_ref(&one));
            let Some(d) = e.modinv(&phi) else {
                continue; // gcd(e, phi) != 1; extremely rare — new primes.
            };
            let dp = d.rem_ref(&p.sub_ref(&one));
            let dq = d.rem_ref(&q.sub_ref(&one));
            let Some(qinv) = q.modinv(&p) else {
                continue;
            };
            let public = RsaPublicKey::new(n, e.clone());
            let ctx_p = MontgomeryCtx::new(&p);
            let ctx_q = MontgomeryCtx::new(&q);
            return KeyPair {
                secret: Arc::new(RsaPrivateKey {
                    public,
                    d,
                    p,
                    q,
                    dp,
                    dq,
                    qinv,
                    ctx_p,
                    ctx_q,
                }),
            };
        }
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        self.secret.public()
    }

    /// The private half.
    pub fn secret(&self) -> &RsaPrivateKey {
        &self.secret
    }

    /// Signs `message`; see [`RsaPrivateKey::sign`].
    pub fn sign(&self, alg: HashAlgorithm, message: &[u8]) -> Result<Vec<u8>, RsaError> {
        self.secret.sign(alg, message)
    }
}

/// EMSA-PKCS1-v1_5 encoding (RFC 8017 §9.2):
/// `EM = 0x00 || 0x01 || 0xFF…FF || 0x00 || DigestInfo`.
fn emsa_pkcs1_v15_encode(
    alg: HashAlgorithm,
    message: &[u8],
    em_len: usize,
) -> Result<Vec<u8>, RsaError> {
    let hash = alg.digest(message);
    let prefix = digest_info_prefix(alg);
    let t_len = prefix.len() + hash.len();
    if em_len < t_len + 11 {
        return Err(RsaError::InvalidKey("modulus too small for digest info"));
    }
    let mut em = Vec::with_capacity(em_len);
    em.push(0x00);
    em.push(0x01);
    em.resize(em_len - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(prefix);
    em.extend_from_slice(&hash);
    debug_assert_eq!(em.len(), em_len);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> KeyPair {
        let mut rng = StdRng::seed_from_u64(7);
        KeyPair::generate(512, &mut rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair();
        for alg in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            let sig = kp.sign(alg, b"provenance record").unwrap();
            assert_eq!(sig.len(), kp.public().modulus_len());
            kp.public().verify(alg, b"provenance record", &sig).unwrap();
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = keypair();
        let sig = kp.sign(HashAlgorithm::Sha256, b"original").unwrap();
        assert_eq!(
            kp.public().verify(HashAlgorithm::Sha256, b"forged", &sig),
            Err(RsaError::BadSignature)
        );
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = keypair();
        let mut sig = kp.sign(HashAlgorithm::Sha256, b"msg").unwrap();
        sig[10] ^= 0x01;
        assert_eq!(
            kp.public().verify(HashAlgorithm::Sha256, b"msg", &sig),
            Err(RsaError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = keypair();
        let mut rng = StdRng::seed_from_u64(99);
        let kp2 = KeyPair::generate(512, &mut rng);
        let sig = kp1.sign(HashAlgorithm::Sha256, b"msg").unwrap();
        assert!(kp2
            .public()
            .verify(HashAlgorithm::Sha256, b"msg", &sig)
            .is_err());
    }

    #[test]
    fn wrong_hash_algorithm_rejected() {
        let kp = keypair();
        let sig = kp.sign(HashAlgorithm::Sha1, b"msg").unwrap();
        assert!(kp
            .public()
            .verify(HashAlgorithm::Sha256, b"msg", &sig)
            .is_err());
    }

    #[test]
    fn wrong_length_signature_rejected() {
        let kp = keypair();
        let sig = kp.sign(HashAlgorithm::Sha256, b"msg").unwrap();
        assert!(kp
            .public()
            .verify(HashAlgorithm::Sha256, b"msg", &sig[..sig.len() - 1])
            .is_err());
        let mut long = sig.clone();
        long.push(0);
        assert!(kp
            .public()
            .verify(HashAlgorithm::Sha256, b"msg", &long)
            .is_err());
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let kp = keypair();
        let m = BigUint::from_hex("123456789abcdef00fedcba987654321").unwrap();
        let crt = kp.secret().private_op(&m);
        let plain = kp.secret().private_op_no_crt(&m);
        assert_eq!(crt, plain);
    }

    #[test]
    fn signature_length_tracks_modulus() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = KeyPair::generate(1024, &mut rng);
        let sig = kp.sign(HashAlgorithm::Sha1, b"x").unwrap();
        // 1024-bit key → 128-byte signature, matching the paper's binary(128).
        assert_eq!(sig.len(), 128);
    }

    #[test]
    fn emsa_layout() {
        let em = emsa_pkcs1_v15_encode(HashAlgorithm::Sha256, b"data", 128).unwrap();
        assert_eq!(em.len(), 128);
        assert_eq!(em[0], 0x00);
        assert_eq!(em[1], 0x01);
        let sep = em.iter().skip(2).position(|&b| b == 0x00).unwrap() + 2;
        assert!(em[2..sep].iter().all(|&b| b == 0xff));
        assert!(sep - 2 >= 8, "at least 8 bytes of 0xFF padding");
        assert_eq!(&em[sep + 1..sep + 1 + SHA256_PREFIX.len()], SHA256_PREFIX);
    }

    #[test]
    fn emsa_rejects_tiny_modulus() {
        assert!(matches!(
            emsa_pkcs1_v15_encode(HashAlgorithm::Sha256, b"data", 32),
            Err(RsaError::InvalidKey(_))
        ));
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        let kp = keypair();
        let bytes = kp.public().to_bytes();
        let back = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&back, kp.public());
        assert!(RsaPublicKey::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(RsaPublicKey::from_bytes(&[0, 0]).is_none());
    }

    #[test]
    fn deterministic_signatures() {
        // PKCS#1 v1.5 signing is deterministic — same message, same signature.
        let kp = keypair();
        let s1 = kp.sign(HashAlgorithm::Sha256, b"m").unwrap();
        let s2 = kp.sign(HashAlgorithm::Sha256, b"m").unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn debug_does_not_leak_secrets() {
        let kp = keypair();
        let dbg = format!("{:?}", kp.secret());
        assert!(dbg.contains("modulus_bits"));
        assert!(!dbg.contains(&kp.secret().d.to_hex()));
    }
}
