//! SHA-1 (FIPS PUB 180-1) — the hash the paper uses (`MessageDigest("SHA")`,
//! 20-byte digests).
//!
//! SHA-1 is cryptographically broken for collision resistance today; it is
//! provided for fidelity with the paper's evaluation. Production deployments
//! should select [`crate::digest::HashAlgorithm::Sha256`].

/// Digest size in bytes.
pub const SHA1_OUTPUT_LEN: usize = 20;

const H0: [u32; 5] = [
    0x6745_2301,
    0xefcd_ab89,
    0x98ba_dcfe,
    0x1032_5476,
    0xc3d2_e1f0,
];

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffer_len > 0 {
            let take = rest.len().min(64 - self.buffer_len);
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&rest[..take]);
            self.buffer_len += take;
            rest = &rest[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            rest = tail;
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffer_len = rest.len();
        }
    }

    /// Finishes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; SHA1_OUTPUT_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80, pad with zeros to 56 mod 64, append 64-bit length.
        self.update_padding();
        let mut tail = [0u8; 8];
        tail.copy_from_slice(&bit_len.to_be_bytes());
        self.raw_update(&tail);
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; SHA1_OUTPUT_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience digest.
    pub fn digest(data: &[u8]) -> [u8; SHA1_OUTPUT_LEN] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    fn update_padding(&mut self) {
        let pad_len = if self.buffer_len < 56 {
            56 - self.buffer_len
        } else {
            120 - self.buffer_len
        };
        const PAD: [u8; 64] = {
            let mut p = [0u8; 64];
            p[0] = 0x80;
            p
        };
        self.raw_update(&PAD[..pad_len]);
    }

    /// `update` without advancing `total_len` (used for padding bytes).
    fn raw_update(&mut self, data: &[u8]) {
        let saved = self.total_len;
        self.update(data);
        self.total_len = saved;
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    #[test]
    fn fips_test_vectors() {
        // FIPS 180-1 Appendix A/B and well-known vectors.
        assert_eq!(
            to_hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            to_hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            to_hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            to_hex(&Sha1::digest(
                b"The quick brown fox jumps over the lazy dog"
            )),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 17, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split={split}");
        }
    }

    #[test]
    fn byte_at_a_time() {
        let data = b"tamper-evident provenance";
        let mut h = Sha1::new();
        for &b in data.iter() {
            h.update(&[b]);
        }
        assert_eq!(h.finalize(), Sha1::digest(data));
    }

    #[test]
    fn boundary_lengths() {
        // Lengths around the padding boundary (55/56/57, 63/64/65).
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 121, 127, 128] {
            let data = vec![0xabu8; len];
            let mut h = Sha1::new();
            h.update(&data);
            // Equality with an independently-split computation exercises padding.
            let mut h2 = Sha1::new();
            h2.update(&data[..len / 2]);
            h2.update(&data[len / 2..]);
            assert_eq!(h.finalize(), h2.finalize(), "len={len}");
        }
    }
}
