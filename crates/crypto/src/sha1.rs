//! SHA-1 (FIPS PUB 180-1) — the hash the paper uses (`MessageDigest("SHA")`,
//! 20-byte digests).
//!
//! SHA-1 is cryptographically broken for collision resistance today; it is
//! provided for fidelity with the paper's evaluation. Production deployments
//! should select [`crate::digest::HashAlgorithm::Sha256`].

/// Digest size in bytes.
pub const SHA1_OUTPUT_LEN: usize = 20;

const H0: [u32; 5] = [
    0x6745_2301,
    0xefcd_ab89,
    0x98ba_dcfe,
    0x1032_5476,
    0xc3d2_e1f0,
];

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffer_len > 0 {
            let take = rest.len().min(64 - self.buffer_len);
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&rest[..take]);
            self.buffer_len += take;
            rest = &rest[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                compress_blocks(&mut self.state, &block);
                self.buffer_len = 0;
            }
        }
        // Full blocks straight from the input — no buffer copies.
        let full = rest.len() & !63;
        if full > 0 {
            compress_blocks(&mut self.state, &rest[..full]);
            rest = &rest[full..];
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffer_len = rest.len();
        }
    }

    /// Finishes the hash and returns the 20-byte digest.
    pub fn finalize(self) -> [u8; SHA1_OUTPUT_LEN] {
        let mut state = self.state;
        let tail = final_blocks(&self.buffer, self.buffer_len, self.total_len);
        compress_blocks(&mut state, tail.as_slice());
        let mut out = [0u8; SHA1_OUTPUT_LEN];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot digest: compresses full blocks directly from `data` and
    /// builds the padded tail on the stack, skipping the incremental
    /// hasher's buffering entirely. Provenance checksums hash thousands of
    /// sub-block inputs (node prefixes, digest chains), so the fixed
    /// overhead here is a first-order cost.
    pub fn digest(data: &[u8]) -> [u8; SHA1_OUTPUT_LEN] {
        let mut state = H0;
        let full = data.len() & !63;
        if full > 0 {
            compress_blocks(&mut state, &data[..full]);
        }
        let rem = &data[full..];
        let mut buffer = [0u8; 64];
        buffer[..rem.len()].copy_from_slice(rem);
        let tail = final_blocks(&buffer, rem.len(), data.len() as u64);
        compress_blocks(&mut state, tail.as_slice());
        let mut out = [0u8; SHA1_OUTPUT_LEN];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// Padded final block(s): the buffered tail, `0x80`, zero padding, and the
/// 64-bit message bit length — one block if the tail leaves 8 spare bytes,
/// two otherwise.
pub(crate) struct FinalBlocks {
    bytes: [u8; 128],
    len: usize,
}

impl FinalBlocks {
    pub(crate) fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len]
    }
}

pub(crate) fn final_blocks(buffer: &[u8; 64], buffer_len: usize, total_len: u64) -> FinalBlocks {
    let mut bytes = [0u8; 128];
    bytes[..buffer_len].copy_from_slice(&buffer[..buffer_len]);
    bytes[buffer_len] = 0x80;
    let len = if buffer_len < 56 { 64 } else { 128 };
    let bit_len = total_len.wrapping_mul(8);
    bytes[len - 8..len].copy_from_slice(&bit_len.to_be_bytes());
    FinalBlocks { bytes, len }
}

/// Compresses a run of whole 64-byte blocks into `state`.
///
/// The 80-round loop is unrolled into the four 20-round stages with a
/// 16-word rolling message schedule, eliminating the per-round stage
/// dispatch and the 80-word schedule array of the naive form.
fn compress_blocks(state: &mut [u32; 5], blocks: &[u8]) {
    debug_assert_eq!(blocks.len() % 64, 0);
    let [mut h0, mut h1, mut h2, mut h3, mut h4] = *state;
    for block in blocks.chunks_exact(64) {
        let mut w = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }

        let (mut a, mut b, mut c, mut d, mut e) = (h0, h1, h2, h3, h4);

        macro_rules! schedule {
            ($i:expr) => {{
                let s = $i & 15;
                w[s] = (w[(s + 13) & 15] ^ w[(s + 8) & 15] ^ w[(s + 2) & 15] ^ w[s]).rotate_left(1);
                w[s]
            }};
        }
        macro_rules! round {
            ($f:expr, $k:expr, $wi:expr) => {{
                let tmp = a
                    .rotate_left(5)
                    .wrapping_add($f)
                    .wrapping_add(e)
                    .wrapping_add($k)
                    .wrapping_add($wi);
                e = d;
                d = c;
                c = b.rotate_left(30);
                b = a;
                a = tmp;
            }};
        }

        for &wi in &w {
            round!(d ^ (b & (c ^ d)), 0x5a82_7999, wi);
        }
        for i in 16..20 {
            round!(d ^ (b & (c ^ d)), 0x5a82_7999, schedule!(i));
        }
        for i in 20..40 {
            round!(b ^ c ^ d, 0x6ed9_eba1, schedule!(i));
        }
        for i in 40..60 {
            round!((b & c) | (d & (b | c)), 0x8f1b_bcdc, schedule!(i));
        }
        for i in 60..80 {
            round!(b ^ c ^ d, 0xca62_c1d6, schedule!(i));
        }

        h0 = h0.wrapping_add(a);
        h1 = h1.wrapping_add(b);
        h2 = h2.wrapping_add(c);
        h3 = h3.wrapping_add(d);
        h4 = h4.wrapping_add(e);
    }
    *state = [h0, h1, h2, h3, h4];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    #[test]
    fn fips_test_vectors() {
        // FIPS 180-1 Appendix A/B and well-known vectors.
        assert_eq!(
            to_hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            to_hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            to_hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            to_hex(&Sha1::digest(
                b"The quick brown fox jumps over the lazy dog"
            )),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 17, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split={split}");
        }
    }

    #[test]
    fn byte_at_a_time() {
        let data = b"tamper-evident provenance";
        let mut h = Sha1::new();
        for &b in data.iter() {
            h.update(&[b]);
        }
        assert_eq!(h.finalize(), Sha1::digest(data));
    }

    #[test]
    fn boundary_lengths() {
        // Lengths around the padding boundary (55/56/57, 63/64/65).
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 121, 127, 128] {
            let data = vec![0xabu8; len];
            let mut h = Sha1::new();
            h.update(&data);
            // Equality with an independently-split computation exercises padding.
            let mut h2 = Sha1::new();
            h2.update(&data[..len / 2]);
            h2.update(&data[len / 2..]);
            assert_eq!(h.finalize(), h2.finalize(), "len={len}");
        }
    }
}
