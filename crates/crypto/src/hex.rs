//! Minimal hex encoding/decoding helpers (diagnostics and tests).

/// Encodes bytes as lower-case hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    s
}

/// Decodes a hex string (even length, case-insensitive). `None` on bad input.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let chars = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in chars.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0x00u8, 0x01, 0x7f, 0x80, 0xff];
        assert_eq!(to_hex(&data), "00017f80ff");
        assert_eq!(from_hex("00017f80ff").unwrap(), data);
        assert_eq!(from_hex("00017F80FF").unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(to_hex(&[]), "");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(from_hex("abc").is_none()); // odd length
        assert!(from_hex("zz").is_none()); // bad digit
    }
}
