//! Addition, subtraction, multiplication, and bit shifts for [`BigUint`].

use super::BigUint;
use std::ops::{Add, Mul, Shl, Shr, Sub};

impl BigUint {
    /// `self + other`.
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// `self - other`; panics if the result would be negative.
    pub fn sub_ref(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// Multiplication: schoolbook for small operands, Karatsuba once both
    /// sides reach the crossover (32 limbs).
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        BigUint::from_limbs(super::karatsuba::mul_limbs(&self.limbs, &other.limbs))
    }

    /// `self * m` for a single limb `m`.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let t = (a as u128) * (m as u128) + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// `self << bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self >> bits`.
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let out = if bit_shift == 0 {
            src.to_vec()
        } else {
            let mut out = Vec::with_capacity(src.len());
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
            out
        };
        BigUint::from_limbs(out)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_fn:ident) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$impl_fn(rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$impl_fn(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$impl_fn(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$impl_fn(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_ref);
forward_binop!(Sub, sub, sub_ref);
forward_binop!(Mul, mul, mul_ref);

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn add_small() {
        assert_eq!(n(2) + n(3), n(5));
        assert_eq!(n(0) + n(7), n(7));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let sum = &a + &BigUint::one();
        assert_eq!(sum.limbs(), &[0, 1]);
        let b = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let sum2 = &b + &BigUint::one();
        assert_eq!(sum2.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn sub_basic() {
        assert_eq!(n(9) - n(4), n(5));
        assert_eq!(n(4).checked_sub(&n(4)).unwrap(), BigUint::zero());
        assert!(n(3).checked_sub(&n(4)).is_none());
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = BigUint::from_limbs(vec![0, 1]); // 2^64
        let d = &a - &BigUint::one();
        assert_eq!(d.limbs(), &[u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(1) - n(2);
    }

    #[test]
    fn mul_small() {
        assert_eq!(n(6) * n(7), n(42));
        assert_eq!(n(0) * n(7), BigUint::zero());
    }

    #[test]
    fn mul_cross_limb() {
        let a = BigUint::from_u64(u64::MAX);
        let sq = &a * &a;
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(sq.limbs(), &[1, u64::MAX - 1]);
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = BigUint::from_limbs(vec![0x1234_5678, 0x9abc_def0, 7]);
        assert_eq!(a.mul_u64(12345), &a * &n(12345));
    }

    #[test]
    fn shifts() {
        let a = n(1);
        assert_eq!(a.shl_bits(64).limbs(), &[0, 1]);
        assert_eq!(a.shl_bits(65).limbs(), &[0, 2]);
        let b = BigUint::from_limbs(vec![0, 1]);
        assert_eq!(b.shr_bits(64), n(1));
        assert_eq!(b.shr_bits(63), n(2));
        assert_eq!(b.shr_bits(65), BigUint::zero());
        assert_eq!(n(0b1010).shr_bits(1), n(0b101));
    }

    #[test]
    fn shift_roundtrip() {
        let a = BigUint::from_limbs(vec![0xdead_beef, 0xcafe_babe, 0x1234]);
        for bits in [0, 1, 13, 63, 64, 65, 127, 130] {
            assert_eq!(a.shl_bits(bits).shr_bits(bits), a, "bits={bits}");
        }
    }

    #[test]
    fn distributive_law_spot_check() {
        let a = BigUint::from_limbs(vec![u64::MAX, 3]);
        let b = n(0xffff_0000);
        let c = n(0x1234_5678);
        assert_eq!(&a * &(&b + &c), (&a * &b) + (&a * &c));
    }
}
