//! Long division (Knuth Algorithm D) for [`BigUint`].
//!
//! Division runs on base-2³² digits with `u64` intermediates — the classic
//! `divmnu` formulation from Hacker's Delight — which keeps the quotient-digit
//! estimation simple and well-tested. Limb conversion costs are negligible
//! next to the O(m·n) core loop.

use super::BigUint;

impl BigUint {
    /// Computes `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        let u = to_u32_digits(&self.limbs);
        let v = to_u32_digits(&divisor.limbs);
        let (q, r) = divmnu(&u, &v);
        (from_u32_digits(&q), from_u32_digits(&r))
    }

    /// `self % m`.
    pub fn rem_ref(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// `self / m` (floor).
    pub fn div_ref(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).0
    }
}

impl std::ops::Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.rem_ref(rhs)
    }
}

impl std::ops::Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_ref(rhs)
    }
}

/// Expands u64 limbs into little-endian u32 digits (not normalized).
fn to_u32_digits(limbs: &[u64]) -> Vec<u32> {
    let mut out = Vec::with_capacity(limbs.len() * 2);
    for &l in limbs {
        out.push(l as u32);
        out.push((l >> 32) as u32);
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Packs little-endian u32 digits back into a normalized `BigUint`.
fn from_u32_digits(digits: &[u32]) -> BigUint {
    let mut limbs = Vec::with_capacity(digits.len() / 2 + 1);
    for chunk in digits.chunks(2) {
        let lo = chunk[0] as u64;
        let hi = chunk.get(1).copied().unwrap_or(0) as u64;
        limbs.push(lo | (hi << 32));
    }
    BigUint::from_limbs(limbs)
}

const BASE: u64 = 1 << 32;

/// Knuth Algorithm D: divides `u` by `v` (little-endian u32 digits, both
/// normalized, `u >= v`, `v` non-empty). Returns `(quotient, remainder)`.
fn divmnu(u: &[u32], v: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let m = u.len();
    let n = v.len();
    debug_assert!(n > 0 && m >= n);

    if n == 1 {
        // Short division by a single digit.
        let d = v[0] as u64;
        let mut q = vec![0u32; m];
        let mut rem = 0u64;
        for j in (0..m).rev() {
            let cur = (rem << 32) | u[j] as u64;
            q[j] = (cur / d) as u32;
            rem = cur % d;
        }
        let r = if rem == 0 { vec![] } else { vec![rem as u32] };
        return (trim(q), r);
    }

    // D1: normalize so the divisor's top digit has its high bit set.
    let s = v[n - 1].leading_zeros();
    let mut vn = vec![0u32; n];
    for i in (1..n).rev() {
        vn[i] = shl_digit(v[i], v[i - 1], s);
    }
    vn[0] = v[0] << s;

    let mut un = vec![0u32; m + 1];
    un[m] = if s == 0 {
        0
    } else {
        (u[m - 1] as u64 >> (32 - s)) as u32
    };
    for i in (1..m).rev() {
        un[i] = shl_digit(u[i], u[i - 1], s);
    }
    un[0] = u[0] << s;

    let mut q = vec![0u32; m - n + 1];

    // D2-D7: main loop over quotient digits.
    for j in (0..=(m - n)).rev() {
        // D3: estimate q̂.
        let numer = (un[j + n] as u64) * BASE + un[j + n - 1] as u64;
        let mut qhat = numer / vn[n - 1] as u64;
        let mut rhat = numer % vn[n - 1] as u64;
        loop {
            if qhat >= BASE || qhat * vn[n - 2] as u64 > BASE * rhat + un[j + n - 2] as u64 {
                qhat -= 1;
                rhat += vn[n - 1] as u64;
                if rhat < BASE {
                    continue;
                }
            }
            break;
        }

        // D4: multiply and subtract.
        let mut borrow = 0i64;
        let mut carry = 0u64;
        for i in 0..n {
            let p = qhat * vn[i] as u64 + carry;
            carry = p >> 32;
            let t = un[i + j] as i64 - borrow - (p as u32) as i64;
            un[i + j] = t as u32;
            borrow = if t < 0 { 1 } else { 0 };
        }
        let t = un[j + n] as i64 - borrow - carry as i64;
        un[j + n] = t as u32;

        q[j] = qhat as u32;

        // D6: add back if we subtracted one time too many.
        if t < 0 {
            q[j] -= 1;
            let mut carry = 0u64;
            for i in 0..n {
                let t = un[i + j] as u64 + vn[i] as u64 + carry;
                un[i + j] = t as u32;
                carry = t >> 32;
            }
            un[j + n] = (un[j + n] as u64).wrapping_add(carry) as u32;
        }
    }

    // D8: denormalize the remainder.
    let mut r = vec![0u32; n];
    for i in 0..n {
        let hi = if i + 1 < n { un[i + 1] } else { 0 };
        r[i] = shr_digit(hi, un[i], s);
    }
    (trim(q), trim(r))
}

/// `(hi:lo) << s` keeping the upper 32 bits of `lo` shifted in, for s in 0..32.
fn shl_digit(hi: u32, lo: u32, s: u32) -> u32 {
    if s == 0 {
        hi
    } else {
        (hi << s) | (lo >> (32 - s))
    }
}

/// `(hi:lo) >> s` pulling bits of `hi` down, for s in 0..32.
fn shr_digit(hi: u32, lo: u32, s: u32) -> u32 {
    if s == 0 {
        lo
    } else {
        (lo >> s) | (hi << (32 - s))
    }
}

fn trim(mut v: Vec<u32>) -> Vec<u32> {
    while v.last() == Some(&0) {
        v.pop();
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_division() {
        let (q, r) = n(17).div_rem(&n(5));
        assert_eq!((q, r), (n(3), n(2)));
        let (q, r) = n(4).div_rem(&n(5));
        assert_eq!((q, r), (BigUint::zero(), n(4)));
        let (q, r) = n(20).div_rem(&n(5));
        assert_eq!((q, r), (n(4), BigUint::zero()));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        let _ = n(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn single_digit_divisor_multi_limb() {
        // (2^128 - 1) / 3 has a known closed form; verify via reconstruction.
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let (q, r) = a.div_rem(&n(3));
        assert_eq!(&q * &n(3) + &r, a);
        assert!(r < n(3));
    }

    #[test]
    fn multi_digit_divisor() {
        let a = BigUint::from_hex("123456789abcdef0fedcba9876543210aabbccdd").unwrap();
        let b = BigUint::from_hex("fedcba98765432100").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r < b);
    }

    #[test]
    fn add_back_case() {
        // Construct a case known to trigger the D6 add-back path:
        // u = b^4/2, v = b^2/2 + 1 in base 2^32 triggers qhat overestimation.
        let u = BigUint::from_limbs(vec![0, 0, 0x8000_0000_0000_0000]);
        let v = BigUint::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&q * &v + &r, u);
        assert!(r < v);
    }

    #[test]
    fn exact_division_by_self() {
        let a = BigUint::from_hex("deadbeefcafebabe1234567890").unwrap();
        let (q, r) = a.div_rem(&a);
        assert!(q.is_one());
        assert!(r.is_zero());
    }

    #[test]
    fn reconstruction_over_many_shapes() {
        // Deterministic pseudo-random coverage of limb-length combinations.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for ul in 1..6usize {
            for vl in 1..=ul {
                for _ in 0..50 {
                    let u = BigUint::from_limbs((0..ul).map(|_| next()).collect());
                    let v = BigUint::from_limbs((0..vl).map(|_| next()).collect());
                    if v.is_zero() {
                        continue;
                    }
                    let (q, r) = u.div_rem(&v);
                    assert_eq!(&q * &v + &r, u, "u={u} v={v}");
                    assert!(r < v, "u={u} v={v}");
                }
            }
        }
    }
}
