//! Karatsuba multiplication for large operands.
//!
//! Schoolbook multiplication is O(n²) in the limb count; Karatsuba splits
//! each operand in half and recurses three (not four) times, giving
//! O(n^1.585). With 64-bit limbs the crossover sits around a few dozen
//! limbs, so RSA-2048 operations and the hash-tree experiments stay on
//! schoolbook while multi-thousand-bit arithmetic (e.g. 4096-bit moduli or
//! `R²` precomputations) benefits.

use super::BigUint;

/// Operands with at least this many limbs on both sides go through
/// Karatsuba.
pub(crate) const KARATSUBA_THRESHOLD: usize = 32;

/// Multiplies two limb slices, choosing schoolbook or Karatsuba.
pub(crate) fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        schoolbook(a, b)
    } else {
        karatsuba(a, b)
    }
}

/// O(n·m) schoolbook multiplication of limb slices.
fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = (ai as u128) * (bj as u128) + (out[i + j] as u128) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = (out[k] as u128) + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    out
}

/// Karatsuba: split at `m`, recurse three times, recombine.
fn karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    let m = a.len().max(b.len()) / 2;
    let (a0, a1) = split(a, m);
    let (b0, b1) = split(b, m);

    let z0 = mul_limbs(a0, b0);
    let z2 = mul_limbs(a1, b1);
    // z1 = (a0+a1)(b0+b1) - z0 - z2
    let asum = add_limbs(a0, a1);
    let bsum = add_limbs(b0, b1);
    let mut z1 = mul_limbs(&asum, &bsum);
    sub_assign(&mut z1, &z0);
    sub_assign(&mut z1, &z2);

    // result = z0 + z1·2^(64m) + z2·2^(128m)
    let mut out = vec![0u64; a.len() + b.len()];
    add_at(&mut out, &z0, 0);
    add_at(&mut out, &z1, m);
    add_at(&mut out, &z2, 2 * m);
    out
}

fn split(x: &[u64], m: usize) -> (&[u64], &[u64]) {
    if x.len() <= m {
        (x, &[])
    } else {
        (&x[..m], &x[m..])
    }
}

/// `a + b` over raw limb slices.
fn add_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &l) in long.iter().enumerate() {
        let s = short.get(i).copied().unwrap_or(0);
        let (x, c1) = l.overflowing_add(s);
        let (y, c2) = x.overflowing_add(carry);
        out.push(y);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `acc -= b` in place; `acc` must be ≥ `b` (guaranteed for Karatsuba's z1).
fn sub_assign(acc: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (i, limb) in acc.iter_mut().enumerate() {
        let s = b.get(i).copied().unwrap_or(0);
        let (x, b1) = limb.overflowing_sub(s);
        let (y, b2) = x.overflowing_sub(borrow);
        *limb = y;
        borrow = (b1 as u64) + (b2 as u64);
        if borrow == 0 && i >= b.len() {
            break;
        }
    }
    debug_assert_eq!(borrow, 0, "Karatsuba middle term must be non-negative");
}

/// `acc += val << (64·offset)`; `acc` must be long enough to absorb it.
fn add_at(acc: &mut [u64], val: &[u64], offset: usize) {
    let mut carry = 0u64;
    let mut i = 0;
    while i < val.len() || carry != 0 {
        let idx = offset + i;
        if idx >= acc.len() {
            debug_assert_eq!(carry, 0, "Karatsuba recombination overflow");
            debug_assert!(val[i..].iter().all(|&v| v == 0));
            break;
        }
        let v = val.get(i).copied().unwrap_or(0);
        let (x, c1) = acc[idx].overflowing_add(v);
        let (y, c2) = x.overflowing_add(carry);
        acc[idx] = y;
        carry = (c1 as u64) + (c2 as u64);
        i += 1;
    }
}

impl BigUint {
    /// Forces Karatsuba (test/bench hook; [`BigUint::mul_ref`] dispatches
    /// automatically).
    #[doc(hidden)]
    pub fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        BigUint::from_limbs(karatsuba(&self.limbs, &other.limbs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rnd(limbs: usize, seed: &mut u64) -> BigUint {
        let mut v = Vec::with_capacity(limbs);
        for _ in 0..limbs {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            v.push(*seed);
        }
        BigUint::from_limbs(v)
    }

    #[test]
    fn karatsuba_matches_schoolbook_across_shapes() {
        let mut seed = 0x1234_5678_9abc_def1u64;
        for (la, lb) in [
            (1, 1),
            (2, 3),
            (8, 8),
            (31, 33),
            (32, 32),
            (64, 64),
            (65, 17),
            (100, 3),
        ] {
            let a = rnd(la, &mut seed);
            let b = rnd(lb, &mut seed);
            let school = BigUint::from_limbs(schoolbook(a.limbs(), b.limbs()));
            assert_eq!(a.mul_karatsuba(&b), school, "({la},{lb})");
            assert_eq!(a.mul_ref(&b), school, "dispatch ({la},{lb})");
        }
    }

    #[test]
    fn zero_and_one_edges() {
        let mut seed = 7;
        let a = rnd(40, &mut seed);
        assert_eq!(a.mul_karatsuba(&BigUint::zero()), BigUint::zero());
        assert_eq!(a.mul_karatsuba(&BigUint::one()), a);
    }

    #[test]
    fn large_square_is_consistent() {
        let mut seed = 99;
        let a = rnd(128, &mut seed); // 8192-bit operand
        let sq = a.mul_karatsuba(&a);
        assert_eq!(sq, BigUint::from_limbs(schoolbook(a.limbs(), a.limbs())));
        // Squaring doubles the bit length, give or take the carry.
        let n = a.bit_len();
        assert!(sq.bit_len() == 2 * n || sq.bit_len() == 2 * n - 1);
    }
}
