//! Modular arithmetic: Montgomery multiplication, modular exponentiation,
//! GCD, and modular inverse.
//!
//! [`MontgomeryCtx`] implements the CIOS (coarsely integrated operand
//! scanning) variant of Montgomery multiplication over `u64` limbs, which is
//! what makes RSA signing practical without external crypto crates. Odd
//! moduli only — exactly what RSA and Miller–Rabin need; `modpow` falls back
//! to division-based reduction for even moduli so it stays total.

use super::BigUint;

/// Precomputed Montgomery-domain parameters for a fixed odd modulus.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    n: BigUint,
    /// `-n[0]^{-1} mod 2^64`.
    n0inv: u64,
    /// `R^2 mod n` where `R = 2^(64·k)`.
    rr: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context for odd modulus `n > 1`.
    ///
    /// # Panics
    /// Panics if `n` is even or `n <= 1`.
    pub fn new(n: &BigUint) -> Self {
        assert!(!n.is_even(), "Montgomery modulus must be odd");
        assert!(!n.is_one() && !n.is_zero(), "modulus must exceed 1");
        let k = n.limbs.len();
        let n0inv = inv64(n.limbs[0]).wrapping_neg();
        let rr = BigUint::one().shl_bits(128 * k).rem_ref(n);
        MontgomeryCtx {
            n: n.clone(),
            n0inv,
            rr,
        }
    }

    /// Number of limbs in the modulus.
    pub fn limb_count(&self) -> usize {
        self.n.limbs.len()
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Converts `x < n` into the Montgomery domain (`x·R mod n`).
    pub fn to_mont(&self, x: &BigUint) -> Vec<u64> {
        let mut xl = x.limbs.clone();
        xl.resize(self.n.limbs.len(), 0);
        let mut rr = self.rr.limbs.clone();
        rr.resize(self.n.limbs.len(), 0);
        self.mont_mul(&xl, &rr)
    }

    /// Converts a Montgomery-domain value back to the ordinary domain.
    pub fn from_mont(&self, x: &[u64]) -> BigUint {
        let one = {
            let mut v = vec![0u64; self.n.limbs.len()];
            v[0] = 1;
            v
        };
        BigUint::from_limbs(self.mont_mul(x, &one))
    }

    /// CIOS Montgomery multiplication: returns `a·b·R^{-1} mod n`.
    ///
    /// `a` and `b` must be `k`-limb slices with values `< n`.
    pub fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.n.limbs.len();
        let mut t = vec![0u64; k + 2];
        self.mont_mul_scratch(a, b, &mut t);
        t.truncate(k);
        t
    }

    /// Allocation-free CIOS Montgomery multiplication into caller scratch.
    ///
    /// `t` must be `k + 2` limbs; on return the product `a·b·R^{-1} mod n`
    /// occupies `t[..k]`. Exponentiation loops call this thousands of times
    /// per RSA operation, so keeping the scratch buffer out of the allocator
    /// is a large constant-factor win on the sign/verify hot path.
    pub fn mont_mul_scratch(&self, a: &[u64], b: &[u64], t: &mut [u64]) {
        let k = self.n.limbs.len();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        debug_assert_eq!(t.len(), k + 2);
        let n = &self.n.limbs;
        t.fill(0);
        for &ai in a.iter() {
            // t += ai * b
            let mut c = 0u128;
            for j in 0..k {
                let s = t[j] as u128 + (ai as u128) * (b[j] as u128) + c;
                t[j] = s as u64;
                c = s >> 64;
            }
            let s = t[k] as u128 + c;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // Reduce: make t divisible by 2^64 and shift down one limb.
            let m = t[0].wrapping_mul(self.n0inv);
            let s = t[0] as u128 + (m as u128) * (n[0] as u128);
            let mut c = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + (m as u128) * (n[j] as u128) + c;
                t[j - 1] = s as u64;
                c = s >> 64;
            }
            let s = t[k] as u128 + c;
            t[k - 1] = s as u64;
            t[k] = t[k + 1] + (s >> 64) as u64;
            t[k + 1] = 0;
        }

        // Conditional final subtraction keeps the result < n.
        let needs_sub = t[k] != 0 || ge(&t[..k], n);
        if needs_sub {
            let mut borrow = 0u64;
            for j in 0..k {
                let (d1, b1) = t[j].overflowing_sub(n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                t[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
        }
    }

    /// Modular exponentiation `base^exp mod n` using this precomputed
    /// context.
    ///
    /// Strategy selection:
    /// - small exponents (≤ 32 bits, e.g. the RSA public exponent 65537)
    ///   use plain left-to-right square-and-multiply — building a window
    ///   table would cost more multiplications than it saves;
    /// - larger exponents use a 4-bit fixed window.
    ///
    /// All Montgomery products run through [`Self::mont_mul_scratch`] with
    /// two reused buffers, so an entire exponentiation performs O(1)
    /// allocations.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one();
        }
        let k = self.n.limbs.len();
        let base = base.rem_ref(&self.n);
        let mont_base = self.to_mont(&base);
        let mut scratch = vec![0u64; k + 2];
        let e_bits = exp.bit_len();

        let mut acc: Vec<u64>;
        if e_bits <= 32 {
            // Binary ladder: e_bits-1 squarings + (popcount-1) multiplies.
            acc = mont_base.clone();
            for i in (0..e_bits - 1).rev() {
                self.mont_mul_scratch(&acc, &acc, &mut scratch);
                acc.copy_from_slice(&scratch[..k]);
                if exp.bit(i) {
                    self.mont_mul_scratch(&acc, &mont_base, &mut scratch);
                    acc.copy_from_slice(&scratch[..k]);
                }
            }
        } else {
            const WINDOW: usize = 4;
            // Table of base^1 .. base^(2^W - 1) in the Montgomery domain
            // (index 0 is never multiplied in).
            let mut table: Vec<Vec<u64>> = Vec::with_capacity(1 << WINDOW);
            table.push(self.to_mont(&BigUint::one()));
            table.push(mont_base);
            for i in 2..(1 << WINDOW) {
                self.mont_mul_scratch(&table[i - 1], &table[1], &mut scratch);
                table.push(scratch[..k].to_vec());
            }

            // Process the exponent in 4-bit chunks, most significant first.
            // Squaring the initial `1` for leading chunks is a no-op, so no
            // "started" bookkeeping is needed.
            let chunks = e_bits.div_ceil(WINDOW);
            acc = table[0].clone();
            for chunk in (0..chunks).rev() {
                for _ in 0..WINDOW {
                    self.mont_mul_scratch(&acc, &acc, &mut scratch);
                    acc.copy_from_slice(&scratch[..k]);
                }
                let mut digit = 0usize;
                for b in (0..WINDOW).rev() {
                    digit = (digit << 1) | exp.bit(chunk * WINDOW + b) as usize;
                }
                if digit != 0 {
                    self.mont_mul_scratch(&acc, &table[digit], &mut scratch);
                    acc.copy_from_slice(&scratch[..k]);
                }
            }
        }
        self.from_mont(&acc)
    }
}

/// Limb-slice comparison `a >= b` for equal-length slices.
fn ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x > y;
        }
    }
    true
}

/// Inverse of an odd `u64` modulo 2^64 by Newton iteration.
fn inv64(n: u64) -> u64 {
    debug_assert!(n & 1 == 1);
    let mut x = n; // Correct mod 2^3.
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(n.wrapping_mul(x)));
    }
    debug_assert_eq!(n.wrapping_mul(x), 1);
    x
}

impl BigUint {
    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Odd moduli use windowed Montgomery multiplication
    /// ([`MontgomeryCtx::modpow`]). Even moduli split `m = 2^t · m_odd` and
    /// recombine `self^exp mod m_odd` (Montgomery) with `self^exp mod 2^t`
    /// (truncated square-and-multiply) via the power-of-two CRT, avoiding
    /// the division-based fallback entirely.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow modulus must be nonzero");
        if m.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        if !m.is_even() {
            let ctx = MontgomeryCtx::new(m);
            return ctx.modpow(self, exp);
        }

        // m = 2^t · m_odd with m_odd odd.
        let t = trailing_zero_bits(m);
        let m_odd = m.shr_bits(t);

        // x2 = self^exp mod 2^t (word-truncated square-and-multiply).
        let x2 = pow_mod_pow2(self, exp, t);
        if m_odd.is_one() {
            return x2;
        }

        // x1 = self^exp mod m_odd via Montgomery.
        let ctx = MontgomeryCtx::new(&m_odd);
        let x1 = ctx.modpow(self, exp);

        // CRT: y = x1 + m_odd · ((x2 − x1) · m_odd^{-1} mod 2^t)
        // is the unique value < m with y ≡ x1 (mod m_odd), y ≡ x2 (mod 2^t).
        let minv = inv_mod_pow2(&m_odd, t);
        let diff = mask_low_bits(&x2.add_ref(&pow2(t)).sub_ref(&mask_low_bits(&x1, t)), t);
        let h = mask_low_bits(&diff.mul_ref(&minv), t);
        x1.add_ref(&m_odd.mul_ref(&h))
    }

    /// Square-and-multiply with `div_rem` reduction (any modulus ≥ 1).
    pub fn modpow_naive(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow modulus must be nonzero");
        if m.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem_ref(m);
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul_ref(&base).rem_ref(m);
            }
            base = base.mul_ref(&base).rem_ref(m);
        }
        result
    }

    /// Greatest common divisor (Euclid's algorithm).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = a.rem_ref(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: the `x` with `self·x ≡ 1 (mod m)`, if it exists.
    ///
    /// Returns `None` when `gcd(self, m) != 1` or `m <= 1`.
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // Extended Euclid with sign-tracked coefficients.
        let mut old_r = self.rem_ref(m);
        let mut r = m.clone();
        let mut old_t = Signed::pos(BigUint::one());
        let mut t = Signed::pos(BigUint::zero());
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            let qt = t.mul_mag(&q);
            let next_t = old_t.sub(&qt);
            old_t = std::mem::replace(&mut t, next_t);
        }
        if !old_r.is_one() {
            return None;
        }
        Some(old_t.rem_euclid(m))
    }
}

/// Number of trailing zero bits (i.e. the largest `t` with `2^t | n`).
fn trailing_zero_bits(n: &BigUint) -> usize {
    for (i, &limb) in n.limbs.iter().enumerate() {
        if limb != 0 {
            return i * 64 + limb.trailing_zeros() as usize;
        }
    }
    0
}

/// `2^t` as a `BigUint`.
fn pow2(t: usize) -> BigUint {
    BigUint::one().shl_bits(t)
}

/// Keeps the low `t` bits of `x` (i.e. `x mod 2^t`) without division.
fn mask_low_bits(x: &BigUint, t: usize) -> BigUint {
    let full = t / 64;
    let rem = t % 64;
    let mut limbs: Vec<u64> = x.limbs.iter().copied().take(full + 1).collect();
    if limbs.len() > full {
        if rem == 0 {
            limbs.truncate(full);
        } else {
            limbs[full] &= (1u64 << rem) - 1;
        }
    }
    BigUint::from_limbs(limbs)
}

/// `base^exp mod 2^t` by square-and-multiply with word truncation.
fn pow_mod_pow2(base: &BigUint, exp: &BigUint, t: usize) -> BigUint {
    let mut result = BigUint::one();
    let mut b = mask_low_bits(base, t);
    for i in 0..exp.bit_len() {
        if exp.bit(i) {
            result = mask_low_bits(&result.mul_ref(&b), t);
        }
        b = mask_low_bits(&b.mul_ref(&b), t);
    }
    result
}

/// Inverse of odd `a` modulo `2^t` by Newton–Hensel lifting: each step
/// doubles the number of correct low bits, starting from the word-level
/// inverse of the lowest limb.
fn inv_mod_pow2(a: &BigUint, t: usize) -> BigUint {
    debug_assert!(!a.is_even());
    let two = BigUint::from_u64(2);
    let mut x = BigUint::from_u64(inv64(a.limbs[0]));
    let mut correct = 64usize;
    while correct < t {
        correct *= 2;
        let bits = correct.min(t + 64);
        // x <- x · (2 − a·x) mod 2^bits
        let ax = mask_low_bits(&a.mul_ref(&x), bits);
        let factor = mask_low_bits(&two.add_ref(&pow2(bits)).sub_ref(&ax), bits);
        x = mask_low_bits(&x.mul_ref(&factor), bits);
    }
    mask_low_bits(&x, t)
}

/// Minimal signed big integer used only by the extended Euclid loop.
#[derive(Clone, Debug)]
struct Signed {
    mag: BigUint,
    neg: bool,
}

impl Signed {
    fn pos(mag: BigUint) -> Self {
        Signed { mag, neg: false }
    }

    fn mul_mag(&self, m: &BigUint) -> Signed {
        Signed {
            mag: self.mag.mul_ref(m),
            neg: self.neg && !self.mag.is_zero(),
        }
    }

    fn sub(&self, other: &Signed) -> Signed {
        match (self.neg, other.neg) {
            (false, true) => Signed::pos(self.mag.add_ref(&other.mag)),
            (true, false) => Signed {
                mag: self.mag.add_ref(&other.mag),
                neg: true,
            },
            (sn, _) => {
                // Same signs: subtract magnitudes.
                if self.mag >= other.mag {
                    Signed {
                        neg: sn && self.mag != other.mag,
                        mag: self.mag.sub_ref(&other.mag),
                    }
                } else {
                    Signed {
                        mag: other.mag.sub_ref(&self.mag),
                        neg: !sn,
                    }
                }
            }
        }
    }

    /// Canonical representative in `[0, m)`.
    fn rem_euclid(&self, m: &BigUint) -> BigUint {
        let r = self.mag.rem_ref(m);
        if self.neg && !r.is_zero() {
            m.sub_ref(&r)
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn inv64_on_odd_values() {
        for v in [1u64, 3, 5, 0xdead_beef_1234_5679, u64::MAX] {
            let x = inv64(v);
            assert_eq!(v.wrapping_mul(x), 1);
        }
    }

    #[test]
    fn mont_mul_matches_schoolbook() {
        let m = BigUint::from_hex("f123456789abcdef123456789abcdef1").unwrap();
        let ctx = MontgomeryCtx::new(&m);
        let a = BigUint::from_hex("1234567890abcdef").unwrap();
        let b = BigUint::from_hex("fedcba0987654321aabb").unwrap();
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        let prod = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        assert_eq!(prod, a.mul_ref(&b).rem_ref(&m));
    }

    #[test]
    fn to_from_mont_roundtrip() {
        let m = BigUint::from_hex("deadbeefcafebabedeadbeefcafebabf").unwrap();
        let ctx = MontgomeryCtx::new(&m);
        for hexes in [
            "0",
            "1",
            "2",
            "deadbeef",
            "deadbeefcafebabedeadbeefcafebabe",
        ] {
            let x = BigUint::from_hex(hexes).unwrap().rem_ref(&m);
            let xm = ctx.to_mont(&x);
            assert_eq!(ctx.from_mont(&xm), x);
        }
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn montgomery_rejects_even_modulus() {
        let _ = MontgomeryCtx::new(&n(100));
    }

    #[test]
    fn modpow_small_cases() {
        assert_eq!(n(2).modpow(&n(10), &n(1000)), n(24)); // 1024 mod 1000
        assert_eq!(n(3).modpow(&n(0), &n(7)), n(1));
        assert_eq!(n(0).modpow(&n(5), &n(7)), n(0));
        assert_eq!(n(5).modpow(&n(1), &n(7)), n(5));
        assert_eq!(n(7).modpow(&n(2), &n(49)), n(0));
    }

    #[test]
    fn modpow_fermat_little_theorem() {
        // p prime, a^(p-1) = 1 mod p.
        let p = n(1_000_000_007);
        for a in [2u64, 3, 12345, 999_999_999] {
            assert_eq!(n(a).modpow(&n(1_000_000_006), &p), n(1));
        }
    }

    #[test]
    fn modpow_matches_naive_large() {
        let m = BigUint::from_hex("c3a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5b3").unwrap();
        let b = BigUint::from_hex("1234567890abcdef998877").unwrap();
        let e = BigUint::from_hex("fedcba").unwrap();
        assert_eq!(b.modpow(&e, &m), b.modpow_naive(&e, &m));
    }

    #[test]
    fn modpow_even_modulus_falls_back() {
        let m = n(1 << 20);
        assert_eq!(n(3).modpow(&n(10), &m), n(59049));
        assert_eq!(n(2).modpow(&n(25), &m), BigUint::zero());
    }

    #[test]
    fn modpow_even_modulus_crt_matches_naive() {
        // The even-modulus path splits m = 2^t · m_odd, runs Montgomery on
        // the odd part and square-multiply mod 2^t, then recombines by CRT.
        // Cross-check every branch against the naive ladder.
        let cases: [(u64, u64, u64); 8] = [
            (3, 10, 2),                    // t=1, trivial odd part
            (7, 13, 6),                    // m = 2 · 3
            (12345, 77, 1 << 16),          // pure power of two, even base
            (54321, 99, 3 << 20),          // large t with odd part 3
            (999_983, 65537, 2 * 999_979), // RSA-style exponent
            (5, 0, 12),                    // zero exponent
            (0, 5, 48),                    // zero base
            (1 << 30, 3, 6),               // base larger than modulus
        ];
        for (b, e, m) in cases {
            assert_eq!(
                n(b).modpow(&n(e), &n(m)),
                n(b).modpow_naive(&n(e), &n(m)),
                "b={b} e={e} m={m}"
            );
        }

        // Multi-limb even moduli with both factors large.
        let m = BigUint::from_hex("3b9aca07deadbeefcafef00d00000000").unwrap(); // 2^32 · odd
        let b = BigUint::from_hex("123456789abcdef0123456789abcdef").unwrap();
        let e = BigUint::from_hex("10001").unwrap();
        assert_eq!(b.modpow(&e, &m), b.modpow_naive(&e, &m));

        let m = BigUint::from_hex("fffffffffffffffe").unwrap(); // 2 · large odd
        let e = BigUint::from_hex("abcdef0123").unwrap();
        assert_eq!(b.modpow(&e, &m), b.modpow_naive(&e, &m));
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(31)), n(1));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
    }

    #[test]
    fn modinv_basic() {
        let inv = n(3).modinv(&n(7)).unwrap();
        assert_eq!(inv, n(5)); // 3·5 = 15 ≡ 1 mod 7
        assert!(n(6).modinv(&n(9)).is_none()); // gcd 3
        assert!(n(4).modinv(&n(1)).is_none());
    }

    #[test]
    fn modinv_large() {
        let m =
            BigUint::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
                .unwrap(); // P-256 prime
        let a = BigUint::from_hex("123456789abcdef0123456789abcdef").unwrap();
        let inv = a.modinv(&m).unwrap();
        assert_eq!(a.mul_ref(&inv).rem_ref(&m), BigUint::one());
    }

    #[test]
    fn modinv_of_rsa_style_exponent() {
        // e = 65537 mod a random odd phi-like value must satisfy e·d ≡ 1.
        let phi =
            BigUint::from_hex("6ae2d0e87c9dbcd1f30a9bd2e1aa9cc0a1b2c3d4e5f60718293a4b5c6d7e8f00")
                .unwrap();
        let e = n(65537);
        let d = e.modinv(&phi).unwrap();
        assert_eq!(e.mul_ref(&d).rem_ref(&phi), BigUint::one());
    }
}
