//! Arbitrary-precision unsigned integer arithmetic.
//!
//! [`BigUint`] stores magnitude as little-endian `u64` limbs and provides the
//! arithmetic needed by the RSA implementation in [`crate::rsa`]: addition,
//! subtraction, multiplication, Knuth-D division, Montgomery modular
//! exponentiation, extended-Euclid modular inverse, and Miller–Rabin
//! primality testing.
//!
//! The representation is always *normalized*: no trailing zero limbs, and
//! zero is the empty limb vector. All public constructors and operations
//! maintain this invariant.

mod div;
mod karatsuba;
mod modular;
mod ops;
mod prime;

pub use modular::MontgomeryCtx;
pub use prime::{gen_prime, is_probable_prime};

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Little-endian `u64` limbs; the limb vector never has trailing zeros
/// (zero is represented by an empty vector).
///
/// ```
/// use tep_crypto::BigUint;
///
/// let p = BigUint::from_u64(1_000_000_007); // prime
/// let a = BigUint::from_u64(123_456_789);
/// // Fermat: a^(p-1) ≡ 1 (mod p)
/// let e = p.sub_ref(&BigUint::one());
/// assert!(a.modpow(&e, &p).is_one());
/// // Modular inverse round-trips.
/// let inv = a.modinv(&p).unwrap();
/// assert!(a.mul_ref(&inv).rem_ref(&p).is_one());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Constructs from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Constructs from little-endian limbs (normalizing trailing zeros).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Interprets big-endian bytes as an unsigned integer.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes as minimal-length big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most-significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes as big-endian bytes, left-padded with zeros to `len`.
    ///
    /// Returns `None` if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// `true` iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|&l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (little-endian bit order; out-of-range bits are 0).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// The low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Borrowed view of the limb slice (little-endian).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl BigUint {
    /// Lower-case hexadecimal rendering without leading zeros (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = String::new();
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Parses a hexadecimal string (no prefix). Returns `None` on invalid input.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let bytes: Vec<u8> = {
            // Left-pad to even length so hex pairs align.
            let padded = if s.len() % 2 == 1 {
                format!("0{s}")
            } else {
                s.to_owned()
            };
            let mut out = Vec::with_capacity(padded.len() / 2);
            let chars = padded.as_bytes();
            for pair in chars.chunks(2) {
                let hi = (pair[0] as char).to_digit(16)?;
                let lo = (pair[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
            }
            out
        };
        Some(Self::from_bytes_be(&bytes))
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        Self::from_u64(v as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_normalized() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::from_limbs(vec![0, 0, 0]), BigUint::zero());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
    }

    #[test]
    fn from_u64_roundtrip() {
        for v in [0u64, 1, 2, 255, 256, u64::MAX] {
            let n = BigUint::from_u64(v);
            assert_eq!(n.low_u64(), v);
        }
    }

    #[test]
    fn from_u128_splits_limbs() {
        let v = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        let n = BigUint::from_u128(v);
        assert_eq!(n.limbs(), &[0xfedc_ba98_7654_3210, 0x0123_4567_89ab_cdef]);
    }

    #[test]
    fn bytes_roundtrip() {
        let cases: Vec<Vec<u8>> = vec![
            vec![1],
            vec![0xff],
            vec![1, 0],
            vec![0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11],
            (1..=32).collect(),
        ];
        for bytes in cases {
            let n = BigUint::from_bytes_be(&bytes);
            assert_eq!(n.to_bytes_be(), bytes, "roundtrip failed for {bytes:?}");
        }
    }

    #[test]
    fn leading_zero_bytes_are_dropped() {
        let n = BigUint::from_bytes_be(&[0, 0, 1, 2]);
        assert_eq!(n.to_bytes_be(), vec![1, 2]);
    }

    #[test]
    fn padded_bytes() {
        let n = BigUint::from_u64(0x1234);
        assert_eq!(n.to_bytes_be_padded(4).unwrap(), vec![0, 0, 0x12, 0x34]);
        assert_eq!(n.to_bytes_be_padded(2).unwrap(), vec![0x12, 0x34]);
        assert!(n.to_bytes_be_padded(1).is_none());
    }

    #[test]
    fn bit_len_and_bit() {
        let n = BigUint::from_u64(0b1011);
        assert_eq!(n.bit_len(), 4);
        assert!(n.bit(0));
        assert!(n.bit(1));
        assert!(!n.bit(2));
        assert!(n.bit(3));
        assert!(!n.bit(64));
        let big = BigUint::from_limbs(vec![0, 1]);
        assert_eq!(big.bit_len(), 65);
        assert!(big.bit(64));
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(9);
        let c = BigUint::from_limbs(vec![0, 1]); // 2^64
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            let n = BigUint::from_hex(s).unwrap();
            // from_hex("0") is zero which renders as "0".
            assert_eq!(
                n.to_hex(),
                s.trim_start_matches('0').to_owned().min_nonempty()
            );
        }
        assert!(BigUint::from_hex("xyz").is_none());
        assert!(BigUint::from_hex("").is_none());
    }

    trait MinNonEmpty {
        fn min_nonempty(self) -> String;
    }
    impl MinNonEmpty for String {
        fn min_nonempty(self) -> String {
            if self.is_empty() {
                "0".to_owned()
            } else {
                self
            }
        }
    }

    #[test]
    fn is_even() {
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
        assert!(BigUint::from_u64(2).is_even());
    }
}
