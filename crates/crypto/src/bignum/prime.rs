//! Prime generation and primality testing for RSA key generation.
//!
//! Candidates are filtered by trial division against a small-prime table
//! before running Miller–Rabin rounds with random bases — the standard
//! recipe for generating RSA primes.

use super::BigUint;
use rand::RngCore;

/// Trial-division table: all primes below 1000.
const SMALL_PRIMES: &[u64] = &[
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

impl BigUint {
    /// Uniformly random value with exactly `bits` significant bits
    /// (the top bit is always set); `bits == 0` yields zero.
    pub fn random_bits(bits: usize, rng: &mut dyn RngCore) -> BigUint {
        if bits == 0 {
            return BigUint::zero();
        }
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
        let top_bits = bits - (limbs - 1) * 64;
        // Mask excess bits, then force the top bit so bit_len is exact.
        if top_bits < 64 {
            v[limbs - 1] &= (1u64 << top_bits) - 1;
        }
        v[limbs - 1] |= 1u64 << (top_bits - 1);
        BigUint::from_limbs(v)
    }

    /// Uniformly random value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn random_below(bound: &BigUint, rng: &mut dyn RngCore) -> BigUint {
        assert!(!bound.is_zero(), "random_below bound must be nonzero");
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(64);
        let top_bits = bits - (limbs - 1) * 64;
        let mask = if top_bits == 64 {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        loop {
            let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
            v[limbs - 1] &= mask;
            let candidate = BigUint::from_limbs(v);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// A composite passes all rounds with probability at most `4^-rounds`.
pub fn is_probable_prime(n: &BigUint, rounds: u32, rng: &mut dyn RngCore) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in SMALL_PRIMES {
        let bp = BigUint::from_u64(p);
        if *n == bp {
            return true;
        }
        if n.rem_ref(&bp).is_zero() {
            return false;
        }
    }
    // n is odd and > 997² is not guaranteed, but all small factors are gone;
    // any remaining composite below 1000² would have a factor below 1000.
    if n < &BigUint::from_u64(1_000_000) {
        return true;
    }

    // Write n - 1 = d · 2^s with d odd.
    let n_minus_1 = n.sub_ref(&BigUint::one());
    let s = trailing_zeros(&n_minus_1);
    let d = n_minus_1.shr_bits(s);
    let two = BigUint::from_u64(2);
    let bound = n_minus_1.sub_ref(&two); // bases drawn from [2, n-2]

    'witness: for _ in 0..rounds {
        let a = BigUint::random_below(&bound, rng).add_ref(&two);
        let mut x = a.modpow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.modpow(&two, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The top two bits are set (so products of two such primes have exactly
/// `2·bits` bits, as RSA key generation requires) and the value is odd.
///
/// # Panics
/// Panics if `bits < 8`.
pub fn gen_prime(bits: usize, rng: &mut dyn RngCore) -> BigUint {
    assert!(bits >= 8, "prime size too small: {bits} bits");
    loop {
        let mut candidate = BigUint::random_bits(bits, rng);
        // Set the second-highest bit and make odd.
        candidate = or_bit(candidate, bits - 2);
        candidate = or_bit(candidate, 0);
        // Cheap pre-filter: one round with base 2 (via full MR machinery is
        // fine; trial division inside is the real filter), then 32 rounds.
        if is_probable_prime(&candidate, 32, rng) {
            return candidate;
        }
    }
}

fn or_bit(mut n: BigUint, i: usize) -> BigUint {
    let limb = i / 64;
    if limb >= n.limbs.len() {
        n.limbs.resize(limb + 1, 0);
    }
    n.limbs[limb] |= 1u64 << (i % 64);
    n.normalize();
    n
}

fn trailing_zeros(n: &BigUint) -> usize {
    debug_assert!(!n.is_zero());
    let mut count = 0usize;
    for &l in n.limbs() {
        if l == 0 {
            count += 64;
        } else {
            return count + l.trailing_zeros() as usize;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 997, 1009, 104729, 1_000_000_007] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut r),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 9, 15, 1001, 104730, 1_000_000_007 * 3] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Fermat pseudoprimes that Miller-Rabin must still catch.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut r),
                "Carmichael number {c} should be composite"
            );
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let p = BigUint::one().shl_bits(127).sub_ref(&BigUint::one());
        assert!(is_probable_prime(&p, 16, &mut rng()));
        // 2^128 - 1 is composite.
        let c = BigUint::one().shl_bits(128).sub_ref(&BigUint::one());
        assert!(!is_probable_prime(&c, 16, &mut rng()));
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut r = rng();
        for bits in [1usize, 7, 63, 64, 65, 128, 512] {
            for _ in 0..10 {
                assert_eq!(BigUint::random_bits(bits, &mut r).bit_len(), bits);
            }
        }
        assert!(BigUint::random_bits(0, &mut r).is_zero());
    }

    #[test]
    fn random_below_in_range() {
        let mut r = rng();
        let bound = BigUint::from_u64(1000);
        for _ in 0..200 {
            assert!(BigUint::random_below(&bound, &mut r) < bound);
        }
        // Bound of 1 always yields 0.
        assert!(BigUint::random_below(&BigUint::one(), &mut r).is_zero());
    }

    #[test]
    fn gen_prime_produces_primes_of_right_size() {
        let mut r = rng();
        for bits in [64usize, 128, 256] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
            assert!(p.bit(bits - 2), "second-highest bit must be set");
            assert!(is_probable_prime(&p, 16, &mut r));
        }
    }

    #[test]
    fn trailing_zeros_counts() {
        assert_eq!(trailing_zeros(&BigUint::from_u64(1)), 0);
        assert_eq!(trailing_zeros(&BigUint::from_u64(8)), 3);
        assert_eq!(trailing_zeros(&BigUint::one().shl_bits(100)), 100);
    }
}
