//! Seeded chaos schedules for the transport fault harness.
//!
//! The network soak test needs the same property the crash-consistency
//! harness has: a *deterministic*, seed-driven enumeration of fault points,
//! so a failing run can be replayed exactly and CI can sweep a seed
//! matrix. This module is transport-agnostic — it describes *what* to
//! break ([`WireFault`]) and *where* ([`ChaosPoint::frame`]) without
//! depending on tep-net; the harness maps each point onto its own
//! injection mechanism.
//!
//! The sweep seed comes from `TEP_CHAOS_SEED` (defaulting to the full
//! `{1, 2009, 31337}` matrix, the same seeds the storage harness uses).

/// SplitMix64 — the workspace's standard tiny deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The default chaos seed matrix (shared with the crash harness in CI).
pub const DEFAULT_CHAOS_SEEDS: [u64; 3] = [1, 2009, 31337];

/// Seeds to sweep: the value of env var `var` if set and parseable as one
/// `u64`, otherwise the full [`DEFAULT_CHAOS_SEEDS`] matrix.
pub fn seeds_from_env(var: &str) -> Vec<u64> {
    match std::env::var(var).ok().and_then(|s| s.parse().ok()) {
        Some(one) => vec![one],
        None => DEFAULT_CHAOS_SEEDS.to_vec(),
    }
}

/// A transport-agnostic wire fault: what the chaos harness should do to
/// the stream at its scheduled point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFault {
    /// Close the stream cleanly at a frame boundary.
    CutBoundary,
    /// Close the stream inside a frame (torn frame).
    CutMidFrame,
    /// Flip one bit of a frame without fixing its checksum.
    BitFlip,
    /// Stall longer than the receiver's read timeout.
    Stall,
    /// Drop the connection abruptly, both directions.
    Reset,
}

impl WireFault {
    /// Every fault kind, in schedule order.
    pub const ALL: [WireFault; 5] = [
        WireFault::CutBoundary,
        WireFault::CutMidFrame,
        WireFault::BitFlip,
        WireFault::Stall,
        WireFault::Reset,
    ];
}

/// One scheduled fault: fire `fault` at downstream frame `frame`, seeding
/// the fault's own randomness (torn prefix length, bit position) from
/// `seed`.
#[derive(Clone, Copy, Debug)]
pub struct ChaosPoint {
    /// What to break.
    pub fault: WireFault,
    /// The 0-based downstream frame index to break at.
    pub frame: u64,
    /// Sub-seed for the fault's internal choices — derived from the sweep
    /// seed, the kind, and the frame, so every point is independently
    /// deterministic.
    pub seed: u64,
}

/// The schedule for one sweep seed over a transfer of `frames` downstream
/// frames: cheap faults (cuts, flips, resets) at **every** frame boundary
/// — full coverage, like the crash harness's crash-at-every-op — and
/// expensive faults (stalls, which burn real wall-clock) at `stall_points`
/// seeded frames.
pub fn schedule(seed: u64, frames: u64, stall_points: usize) -> Vec<ChaosPoint> {
    let mut out = Vec::new();
    for (k, &fault) in WireFault::ALL.iter().enumerate() {
        let frames_for_kind: Vec<u64> = if fault == WireFault::Stall {
            let mut rng = seed ^ (k as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            let mut picked: Vec<u64> = (0..stall_points.min(frames as usize))
                .map(|_| splitmix64(&mut rng) % frames.max(1))
                .collect();
            picked.sort_unstable();
            picked.dedup();
            picked
        } else {
            (0..frames).collect()
        };
        for frame in frames_for_kind {
            let mut rng = seed ^ (k as u64) << 32 ^ frame;
            out.push(ChaosPoint {
                fault,
                frame,
                seed: splitmix64(&mut rng),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = schedule(2009, 12, 2);
        let b = schedule(2009, 12, 2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fault, y.fault);
            assert_eq!(x.frame, y.frame);
            assert_eq!(x.seed, y.seed);
        }
        let c = schedule(31337, 12, 2);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.seed != y.seed),
            "different sweep seeds must give different sub-seeds"
        );
    }

    #[test]
    fn cheap_faults_cover_every_frame() {
        let frames = 9u64;
        let sched = schedule(1, frames, 2);
        for fault in [
            WireFault::CutBoundary,
            WireFault::CutMidFrame,
            WireFault::BitFlip,
            WireFault::Reset,
        ] {
            let covered: Vec<u64> = sched
                .iter()
                .filter(|p| p.fault == fault)
                .map(|p| p.frame)
                .collect();
            assert_eq!(covered, (0..frames).collect::<Vec<_>>(), "{fault:?}");
        }
        let stalls = sched.iter().filter(|p| p.fault == WireFault::Stall).count();
        assert!((1..=2).contains(&stalls));
    }

    #[test]
    fn env_seed_overrides_the_matrix() {
        // Not set: full matrix.
        assert_eq!(
            seeds_from_env("TEP_CHAOS_SEED_DEFINITELY_UNSET"),
            DEFAULT_CHAOS_SEEDS.to_vec()
        );
    }
}
