//! The large-scale streaming workload (§5.2): the `Title` table.
//!
//! The paper hashes a single-table database of 18,962,041 rows with two
//! fields — `Document ID (integer)` and `Title (varchar)` — for a total of
//! 56,886,125 nodes (3 per row + table + root), one row at a time. This
//! module generates such a table lazily so databases far larger than memory
//! can be hashed through [`tep_core::streaming`].

use tep_core::streaming::{StreamingDatabaseHasher, StreamingTableHasher};
use tep_crypto::digest::HashAlgorithm;
use tep_model::{ObjectId, Value};

/// The paper's exact row count.
pub const PAPER_TITLE_ROWS: u64 = 18_962_041;

/// Reserved ids: 0 = database root, 1 = the title table.
const ROOT_ID: ObjectId = ObjectId(0);
const TABLE_ID: ObjectId = ObjectId(1);
const FIRST_ROW_BASE: u64 = 2;

/// One generated row of the Title table.
#[derive(Clone, Debug, PartialEq)]
pub struct TitleRow {
    /// Structural row node id.
    pub row_id: ObjectId,
    /// `(cell id, value)` pairs: Document ID then Title, ids increasing.
    pub cells: [(ObjectId, Value); 2],
}

/// Lazily generates Title-table rows with deterministic ids and contents.
pub struct TitleRowIter {
    next: u64,
    rows: u64,
}

impl TitleRowIter {
    /// Iterator over `rows` generated rows.
    pub fn new(rows: u64) -> Self {
        TitleRowIter { next: 0, rows }
    }
}

impl Iterator for TitleRowIter {
    type Item = TitleRow;

    fn next(&mut self) -> Option<TitleRow> {
        if self.next >= self.rows {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let base = FIRST_ROW_BASE + i * 3;
        Some(TitleRow {
            row_id: ObjectId(base),
            cells: [
                (ObjectId(base + 1), Value::Int(i as i64)),
                (
                    ObjectId(base + 2),
                    // Deterministic pseudo-title; length varies with i the
                    // way real titles do.
                    Value::text(format!("Study of subject {} under condition {}", i, i % 97)),
                ),
            ],
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.rows - self.next) as usize;
        (left, Some(left))
    }
}

/// Result of streaming the Title database.
#[derive(Clone, Debug)]
pub struct TitleHashResult {
    /// Hash of the database root (root → table → rows → cells).
    pub hash: Vec<u8>,
    /// Total nodes hashed, including table and root.
    pub nodes: u64,
}

/// Streams and hashes a generated Title database of `rows` rows without
/// materializing it — the paper's §5.2 experiment.
pub fn stream_title_database(alg: HashAlgorithm, rows: u64) -> TitleHashResult {
    let mut table = StreamingTableHasher::new(alg, TABLE_ID, &Value::text("Title"));
    for row in TitleRowIter::new(rows) {
        table
            .add_row(row.row_id, &Value::Null, &row.cells)
            .expect("generated ids are strictly increasing");
    }
    let (table_hash, table_nodes) = table.finish();
    let mut db = StreamingDatabaseHasher::new(alg, ROOT_ID, &Value::text("title-db"));
    db.add_table(TABLE_ID, &table_hash, table_nodes)
        .expect("single table");
    let (hash, nodes) = db.finish();
    TitleHashResult { hash, nodes }
}

/// Node count for a Title database of `rows` rows (3 per row + table + root).
pub fn title_node_count(rows: u64) -> u64 {
    rows * 3 + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_core::hashing::subtree_hash;
    use tep_model::Forest;

    const ALG: HashAlgorithm = HashAlgorithm::Sha1;

    #[test]
    fn paper_row_count_implies_paper_node_count() {
        // 18,962,041 rows → 56,886,125 nodes (§5.2).
        assert_eq!(title_node_count(PAPER_TITLE_ROWS), 56_886_125);
    }

    #[test]
    fn iterator_yields_exact_rows_with_increasing_ids() {
        let rows: Vec<TitleRow> = TitleRowIter::new(5).collect();
        assert_eq!(rows.len(), 5);
        let mut last = ObjectId(0);
        for r in &rows {
            assert!(r.row_id > last);
            assert!(r.cells[0].0 > r.row_id);
            assert!(r.cells[1].0 > r.cells[0].0);
            last = r.cells[1].0;
        }
        assert_eq!(TitleRowIter::new(3).size_hint(), (3, Some(3)));
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<TitleRow> = TitleRowIter::new(10).collect();
        let b: Vec<TitleRow> = TitleRowIter::new(10).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn streamed_hash_matches_materialized_forest() {
        const ROWS: u64 = 200;
        // Materialize the identical structure in a forest.
        let mut f = Forest::new();
        f.insert_with_id(ROOT_ID, Value::text("title-db"), None)
            .unwrap();
        f.insert_with_id(TABLE_ID, Value::text("Title"), Some(ROOT_ID))
            .unwrap();
        for row in TitleRowIter::new(ROWS) {
            f.insert_with_id(row.row_id, Value::Null, Some(TABLE_ID))
                .unwrap();
            for (cid, v) in &row.cells {
                f.insert_with_id(*cid, v.clone(), Some(row.row_id)).unwrap();
            }
        }
        let expected = subtree_hash(ALG, &f, ROOT_ID);

        let result = stream_title_database(ALG, ROWS);
        assert_eq!(result.hash, expected);
        assert_eq!(result.nodes, title_node_count(ROWS));
        assert_eq!(result.nodes as usize, f.len());
    }
}
