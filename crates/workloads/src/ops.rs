//! Complex-operation generators — Table 2 of the paper (Setups A, B, C).
//!
//! Each generator produces a `Vec<PrimitiveOp>` meant to be applied as
//! **one** complex operation via
//! [`tep_core::ProvenanceTracker::complex`]. A [`TablePlan`] mirrors the
//! table's live row set during generation so that mixes containing deletes
//! and inserts (Setup C) never reference rows that an earlier operation in
//! the same batch removed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tep_model::relational::TableHandle;
use tep_model::{ObjectId, PrimitiveOp, Value};

/// A generation-time mirror of a table's structure.
///
/// Tracks live rows/cells and allocates ids for planned inserts without
/// touching the real forest.
#[derive(Clone, Debug)]
pub struct TablePlan {
    table: ObjectId,
    num_attrs: usize,
    rows: Vec<PlannedRow>,
    next_id: u64,
}

#[derive(Clone, Debug)]
struct PlannedRow {
    id: ObjectId,
    cells: Vec<ObjectId>,
}

impl TablePlan {
    /// Builds a plan from a generated table.
    ///
    /// `next_id_hint` must be the forest's next free id
    /// ([`tep_model::Forest::next_id_hint`]) so that planned inserts get the
    /// ids the forest will actually assign.
    pub fn new(handle: &TableHandle, num_attrs: usize, next_id_hint: ObjectId) -> Self {
        TablePlan {
            table: handle.id,
            num_attrs,
            rows: handle
                .rows
                .iter()
                .map(|r| PlannedRow {
                    id: r.id,
                    cells: r.cells.clone(),
                })
                .collect(),
            next_id: next_id_hint.raw(),
        }
    }

    /// Live row count.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn alloc(&mut self) -> ObjectId {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Plans the deletion of the row at `idx`: all its cells, then the row.
    fn plan_delete_row(&mut self, idx: usize, out: &mut Vec<PrimitiveOp>) {
        let row = self.rows.swap_remove(idx);
        for cell in row.cells {
            out.push(PrimitiveOp::Delete { id: cell });
        }
        out.push(PrimitiveOp::Delete { id: row.id });
    }

    /// Plans the insertion of a fresh fully-populated row.
    fn plan_insert_row(&mut self, rng: &mut StdRng, out: &mut Vec<PrimitiveOp>) {
        let row_id = self.alloc();
        out.push(PrimitiveOp::Insert {
            id: Some(row_id),
            value: Value::Null,
            parent: Some(self.table),
        });
        let mut cells = Vec::with_capacity(self.num_attrs);
        for _ in 0..self.num_attrs {
            let cell_id = self.alloc();
            out.push(PrimitiveOp::Insert {
                id: Some(cell_id),
                value: Value::Int(rng.gen_range(0..1_000_000)),
                parent: Some(row_id),
            });
            cells.push(cell_id);
        }
        self.rows.push(PlannedRow { id: row_id, cells });
    }

    /// Plans an update of one random live cell.
    fn plan_update_cell(&mut self, rng: &mut StdRng, out: &mut Vec<PrimitiveOp>) {
        let row = &self.rows[rng.gen_range(0..self.rows.len())];
        let cell = row.cells[rng.gen_range(0..row.cells.len())];
        out.push(PrimitiveOp::Update {
            id: cell,
            value: Value::Int(rng.gen_range(0..1_000_000)),
        });
    }
}

/// **Setup A**: `num_updates` cell updates spread over `num_rows` distinct
/// rows (e.g. "400n updates on 400n cells in 400n rows", "4000n updates on
/// 4000n cells in 4000 rows").
///
/// # Panics
/// Panics if the table has fewer than `num_rows` rows or a row has fewer
/// than `num_updates / num_rows` cells.
pub fn setup_a_updates(
    handle: &TableHandle,
    num_updates: usize,
    num_rows: usize,
    seed: u64,
) -> Vec<PrimitiveOp> {
    assert!(num_rows > 0 && num_rows <= handle.rows.len());
    assert!(
        num_updates >= num_rows,
        "at least one update per chosen row"
    );
    let per_row = num_updates / num_rows;
    let extra = num_updates % num_rows;
    let mut rng = StdRng::seed_from_u64(seed);

    // Choose distinct rows.
    let mut row_indices: Vec<usize> = (0..handle.rows.len()).collect();
    row_indices.shuffle(&mut rng);
    row_indices.truncate(num_rows);

    let mut ops = Vec::with_capacity(num_updates);
    for (i, &ri) in row_indices.iter().enumerate() {
        let row = &handle.rows[ri];
        let want = per_row + usize::from(i < extra);
        assert!(
            want <= row.cells.len(),
            "row has {} cells, need {}",
            row.cells.len(),
            want
        );
        let mut cells: Vec<ObjectId> = row.cells.clone();
        cells.shuffle(&mut rng);
        for &cell in cells.iter().take(want) {
            ops.push(PrimitiveOp::Update {
                id: cell,
                value: Value::Int(rng.gen_range(0..1_000_000)),
            });
        }
    }
    ops
}

/// A batch of primitives applied as **one** complex operation.
pub type ComplexOp = Vec<PrimitiveOp>;

/// **Setup B, all-deletes**: `num_rows` row-delete complex operations, each
/// removing one random row (its cells, then the row node).
pub fn setup_b_delete_rows(plan: &mut TablePlan, num_rows: usize, seed: u64) -> Vec<ComplexOp> {
    assert!(num_rows <= plan.row_count());
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_rows)
        .map(|_| {
            let mut ops = Vec::new();
            let idx = rng.gen_range(0..plan.rows.len());
            plan.plan_delete_row(idx, &mut ops);
            ops
        })
        .collect()
}

/// **Setup B, all-inserts**: `num_rows` row-insert complex operations, each
/// adding one fresh fully-populated row.
pub fn setup_b_insert_rows(plan: &mut TablePlan, num_rows: usize, seed: u64) -> Vec<ComplexOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_rows)
        .map(|_| {
            let mut ops = Vec::new();
            plan.plan_insert_row(&mut rng, &mut ops);
            ops
        })
        .collect()
}

/// **Setup B, all-updates**: `num_updates` cell updates spread evenly over
/// `num_rows` distinct rows, one complex operation per row (e.g. "4000
/// updates of cells in 500 rows" = 500 ops of 8 updates each; "in 4000
/// rows" = 4000 ops of 1 update).
pub fn setup_b_update_cells(
    plan: &TablePlan,
    num_updates: usize,
    num_rows: usize,
    seed: u64,
) -> Vec<ComplexOp> {
    assert!(num_rows > 0 && num_rows <= plan.row_count());
    let per_row = num_updates / num_rows;
    assert!(
        per_row * num_rows == num_updates,
        "updates must divide evenly"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row_indices: Vec<usize> = (0..plan.rows.len()).collect();
    row_indices.shuffle(&mut rng);
    row_indices.truncate(num_rows);

    row_indices
        .iter()
        .map(|&ri| {
            let row = &plan.rows[ri];
            assert!(per_row <= row.cells.len());
            let mut cells = row.cells.clone();
            cells.shuffle(&mut rng);
            cells
                .into_iter()
                .take(per_row)
                .map(|cell| PrimitiveOp::Update {
                    id: cell,
                    value: Value::Int(rng.gen_range(0..1_000_000)),
                })
                .collect()
        })
        .collect()
}

/// One mix of Setup C: counts of row-deletes, row-inserts, and cell-updates
/// forming one 500-operation complex op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixSpec {
    /// Row deletions.
    pub deletes: usize,
    /// Row insertions.
    pub inserts: usize,
    /// Cell updates.
    pub updates: usize,
}

impl MixSpec {
    /// Total operation count.
    pub fn total(&self) -> usize {
        self.deletes + self.inserts + self.updates
    }

    /// Percentage of deletes (the Figure 10/11 x-axis).
    pub fn delete_pct(&self) -> f64 {
        100.0 * self.deletes as f64 / self.total() as f64
    }
}

/// The paper's Setup C mixes (Table 2): 500 operations each, with delete
/// shares of 19.2 %, 36.6 %, 57 %, and 78.2 %.
pub const PAPER_C_MIXES: [MixSpec; 4] = [
    MixSpec {
        deletes: 96,
        inserts: 189,
        updates: 215,
    },
    MixSpec {
        deletes: 183,
        inserts: 152,
        updates: 165,
    },
    MixSpec {
        deletes: 285,
        inserts: 106,
        updates: 109,
    },
    MixSpec {
        deletes: 391,
        inserts: 49,
        updates: 60,
    },
];

/// **Setup C**: a shuffled mix of row deletes, row inserts, and cell
/// updates per `mix` — one complex operation per entry — generated against
/// (and mutating) `plan` so every reference stays valid as the batch
/// evolves.
pub fn setup_c_mix(plan: &mut TablePlan, mix: MixSpec, seed: u64) -> Vec<ComplexOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Build the shuffled schedule of operation kinds.
    let mut kinds: Vec<u8> = std::iter::repeat_n(0u8, mix.deletes)
        .chain(std::iter::repeat_n(1u8, mix.inserts))
        .chain(std::iter::repeat_n(2u8, mix.updates))
        .collect();
    kinds.shuffle(&mut rng);

    kinds
        .into_iter()
        .map(|kind| {
            let mut ops = Vec::new();
            match kind {
                0 => {
                    assert!(plan.row_count() > 0, "table exhausted by deletes");
                    let idx = rng.gen_range(0..plan.rows.len());
                    plan.plan_delete_row(idx, &mut ops);
                }
                1 => plan.plan_insert_row(&mut rng, &mut ops),
                _ => {
                    assert!(plan.row_count() > 0, "no rows left to update");
                    plan.plan_update_cell(&mut rng, &mut ops);
                }
            }
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{build_database, TableSpec};
    use tep_model::Forest;

    const SPEC: TableSpec = TableSpec {
        name: "t",
        num_attrs: 8,
        num_rows: 100,
    };

    fn db_and_plan() -> (Forest, TableHandle, TablePlan) {
        let db = build_database(&[SPEC], 3);
        let handle = db.tables[0].clone();
        let plan = TablePlan::new(&handle, SPEC.num_attrs, db.forest.next_id_hint());
        (db.forest, handle, plan)
    }

    /// Ops must apply cleanly to the forest they were planned against.
    fn apply_all(forest: &mut Forest, ops: &[PrimitiveOp]) {
        for op in ops {
            op.apply(forest)
                .unwrap_or_else(|e| panic!("op {op:?} failed: {e}"));
        }
    }

    #[test]
    fn setup_a_touches_requested_rows_and_cells() {
        let (mut forest, handle, _) = db_and_plan();
        let ops = setup_a_updates(&handle, 40, 10, 7);
        assert_eq!(ops.len(), 40);
        assert!(ops.iter().all(|o| matches!(o, PrimitiveOp::Update { .. })));
        // Updates land on exactly 10 distinct rows, 4 cells each.
        let mut rows_touched = std::collections::HashSet::new();
        let mut cells = std::collections::HashSet::new();
        for op in &ops {
            let PrimitiveOp::Update { id, .. } = op else {
                unreachable!()
            };
            assert!(cells.insert(*id), "cell updated twice");
            let row = handle
                .rows
                .iter()
                .find(|r| r.cells.contains(id))
                .expect("cell belongs to a row");
            rows_touched.insert(row.id);
        }
        assert_eq!(rows_touched.len(), 10);
        apply_all(&mut forest, &ops);
    }

    #[test]
    fn setup_a_uneven_distribution() {
        let (_, handle, _) = db_and_plan();
        // 25 updates over 10 rows → rows get 3 or 2 updates.
        let ops = setup_a_updates(&handle, 25, 10, 9);
        assert_eq!(ops.len(), 25);
    }

    #[test]
    fn setup_b_deletes_apply() {
        let (mut forest, _, mut plan) = db_and_plan();
        let before = forest.len();
        let groups = setup_b_delete_rows(&mut plan, 20, 5);
        // 20 complex ops, each of (8 cells + 1 row) primitive deletes.
        assert_eq!(groups.len(), 20);
        assert!(groups.iter().all(|g| g.len() == 9));
        for g in &groups {
            apply_all(&mut forest, g);
        }
        assert_eq!(forest.len(), before - 20 * 9);
        assert_eq!(plan.row_count(), 80);
    }

    #[test]
    fn setup_b_inserts_apply() {
        let (mut forest, handle, mut plan) = db_and_plan();
        let before = forest.len();
        let groups = setup_b_insert_rows(&mut plan, 15, 5);
        assert_eq!(groups.len(), 15);
        assert!(groups.iter().all(|g| g.len() == 9));
        for g in &groups {
            apply_all(&mut forest, g);
        }
        assert_eq!(forest.len(), before + 15 * 9);
        assert_eq!(forest.node(handle.id).unwrap().child_count(), 115);
    }

    #[test]
    fn setup_b_updates_grouped_per_row() {
        let (mut forest, _, plan) = db_and_plan();
        // 80 updates over 10 rows → 10 complex ops of 8 updates each.
        let groups = setup_b_update_cells(&plan, 80, 10, 5);
        assert_eq!(groups.len(), 10);
        assert!(groups.iter().all(|g| g.len() == 8));
        for g in &groups {
            apply_all(&mut forest, g);
        }
        // 40 updates over 40 rows → 40 singleton ops.
        let groups = setup_b_update_cells(&plan, 40, 40, 6);
        assert_eq!(groups.len(), 40);
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn paper_c_mixes_sum_to_500() {
        let pcts = [19.2, 36.6, 57.0, 78.2];
        for (mix, pct) in PAPER_C_MIXES.iter().zip(pcts) {
            assert_eq!(mix.total(), 500);
            assert!((mix.delete_pct() - pct).abs() < 0.05, "{mix:?}");
        }
    }

    #[test]
    fn setup_c_mixes_apply_cleanly() {
        // Use a table big enough to survive 391 row deletions.
        let spec = TableSpec {
            name: "big",
            num_attrs: 8,
            num_rows: 600,
        };
        for (i, mix) in PAPER_C_MIXES.iter().enumerate() {
            let db = build_database(&[spec], 11);
            let mut forest = db.forest;
            let mut plan = TablePlan::new(&db.tables[0], spec.num_attrs, forest.next_id_hint());
            let groups = setup_c_mix(&mut plan, *mix, 100 + i as u64);
            assert_eq!(groups.len(), 500);
            for g in &groups {
                apply_all(&mut forest, g);
            }
            let expected_rows = 600 - mix.deletes + mix.inserts;
            assert_eq!(plan.row_count(), expected_rows);
            assert_eq!(
                forest.node(db.tables[0].id).unwrap().child_count(),
                expected_rows
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, handle, _) = db_and_plan();
        let a = setup_a_updates(&handle, 16, 4, 42);
        let b = setup_a_updates(&handle, 16, 4, 42);
        assert_eq!(a, b);
        let c = setup_a_updates(&handle, 16, 4, 43);
        assert_ne!(a, c);
    }
}
