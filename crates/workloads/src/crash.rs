//! Recorded workloads for the crash-consistency harness.
//!
//! A crash workload is a deterministic, seeded sequence of append-log
//! operations ([`CrashOp`]) that the harness in
//! `crates/storage/tests/crash_consistency.rs` replays against a
//! fault-injected filesystem, crashing at every write/sync boundary and
//! asserting the durability contract. Payload sizes are deliberately
//! varied (empty, tiny, multi-KiB) so torn writes land in frame headers,
//! payload bodies, and across frame boundaries.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use tep_model::{ObjectId, ParticipantId};
use tep_storage::StoredRecord;

/// One step of a recorded append-log workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashOp {
    /// Append one frame with this payload.
    Append(Vec<u8>),
    /// Flush and fsync; every append before this point is acknowledged
    /// durable once it returns.
    Sync,
}

/// A deterministic append/sync schedule for crash testing.
#[derive(Clone, Debug)]
pub struct CrashWorkload {
    /// The operations, in replay order.
    pub ops: Vec<CrashOp>,
}

impl CrashWorkload {
    /// A workload of `appends` raw frames with varied payload sizes and a
    /// seeded scattering of syncs (always ending with one, so the whole
    /// workload is acknowledged if no fault fires).
    pub fn frames(seed: u64, appends: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ops = Vec::with_capacity(appends + appends / 2 + 1);
        for i in 0..appends {
            let len = match rng.gen_range(0..5u8) {
                0 => 0,
                1 => rng.gen_range(1..16),
                2 => rng.gen_range(16..256),
                3 => rng.gen_range(256..2048),
                _ => rng.gen_range(2048..8192),
            };
            let mut payload = vec![0u8; len];
            rng.fill_bytes(payload.as_mut_slice());
            // Stamp the index so recovered payloads are identifiable even
            // when two random bodies collide.
            if payload.len() >= 8 {
                payload[..8].copy_from_slice(&(i as u64).to_be_bytes());
            }
            ops.push(CrashOp::Append(payload));
            if rng.gen_bool(0.3) {
                ops.push(CrashOp::Sync);
            }
        }
        ops.push(CrashOp::Sync);
        CrashWorkload { ops }
    }

    /// A workload whose payloads are canonical [`StoredRecord`] encodings —
    /// what a durable [`tep_storage::ProvenanceDb`] actually writes — so
    /// the harness can replay it through the store API and compare
    /// record-level recovery, not just frame bytes.
    pub fn records(seed: u64, appends: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_4EC0_11D5_0001);
        let mut ops = Vec::with_capacity(appends + appends / 2 + 1);
        for seq in 0..appends as u64 {
            let record = StoredRecord {
                seq_id: seq,
                participant: ParticipantId(rng.gen_range(1..8)),
                oid: ObjectId(rng.gen_range(1..32)),
                checksum: {
                    let mut c = vec![0u8; 128];
                    rng.fill_bytes(c.as_mut_slice());
                    c
                },
                payload: {
                    let mut p = vec![0u8; rng.gen_range(0..512)];
                    rng.fill_bytes(p.as_mut_slice());
                    p
                },
            };
            ops.push(CrashOp::Append(record.to_bytes()));
            if rng.gen_bool(0.25) {
                ops.push(CrashOp::Sync);
            }
        }
        ops.push(CrashOp::Sync);
        CrashWorkload { ops }
    }

    /// Number of `Append` steps.
    pub fn appends(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, CrashOp::Append(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic_per_seed() {
        assert_eq!(
            CrashWorkload::frames(7, 40).ops,
            CrashWorkload::frames(7, 40).ops
        );
        assert_ne!(
            CrashWorkload::frames(7, 40).ops,
            CrashWorkload::frames(8, 40).ops
        );
        assert_eq!(
            CrashWorkload::records(7, 40).ops,
            CrashWorkload::records(7, 40).ops
        );
    }

    #[test]
    fn workload_ends_with_sync_and_counts_appends() {
        let w = CrashWorkload::frames(1, 25);
        assert_eq!(w.appends(), 25);
        assert_eq!(w.ops.last(), Some(&CrashOp::Sync));

        let r = CrashWorkload::records(1, 25);
        assert_eq!(r.appends(), 25);
        // Record payloads decode back to records.
        for op in &r.ops {
            if let CrashOp::Append(bytes) = op {
                assert!(StoredRecord::from_bytes(bytes).is_ok());
            }
        }
    }

    #[test]
    fn frame_workload_varies_payload_sizes() {
        let w = CrashWorkload::frames(2009, 200);
        let sizes: Vec<usize> = w
            .ops
            .iter()
            .filter_map(|op| match op {
                CrashOp::Append(p) => Some(p.len()),
                CrashOp::Sync => None,
            })
            .collect();
        assert!(sizes.contains(&0), "no empty payloads");
        assert!(sizes.iter().any(|&s| s > 2048), "no large payloads");
    }
}
