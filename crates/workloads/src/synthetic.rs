//! Synthetic tables and databases — Table 1(a)/(b) of the paper.
//!
//! Four all-integer tables of fixed shape, combined into four databases of
//! increasing size. Cell values are drawn from a seeded RNG so every run is
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tep_model::relational::{self, TableHandle};
use tep_model::{Forest, ObjectId, Value};

/// Shape of one synthetic table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableSpec {
    /// Table name.
    pub name: &'static str,
    /// Number of (integer) attributes.
    pub num_attrs: usize,
    /// Number of rows.
    pub num_rows: usize,
}

impl TableSpec {
    /// Nodes contributed by this table: table + rows + cells.
    pub fn node_count(&self) -> usize {
        1 + self.num_rows + self.num_rows * self.num_attrs
    }
}

/// The paper's four synthetic tables (Table 1(a)).
pub const PAPER_TABLES: [TableSpec; 4] = [
    TableSpec {
        name: "table1",
        num_attrs: 8,
        num_rows: 4000,
    },
    TableSpec {
        name: "table2",
        num_attrs: 9,
        num_rows: 3000,
    },
    TableSpec {
        name: "table3",
        num_attrs: 10,
        num_rows: 2000,
    },
    TableSpec {
        name: "table4",
        num_attrs: 5,
        num_rows: 5000,
    },
];

/// A generated synthetic database.
pub struct SyntheticDb {
    /// The back-end database forest.
    pub forest: Forest,
    /// The single database root node.
    pub root: ObjectId,
    /// Handles for each generated table.
    pub tables: Vec<TableHandle>,
}

impl SyntheticDb {
    /// Total node count including the root.
    pub fn node_count(&self) -> usize {
        self.forest.len()
    }
}

/// Builds a database from `specs` with seeded random integer cells.
pub fn build_database(specs: &[TableSpec], seed: u64) -> SyntheticDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut forest = Forest::new();
    let root = relational::create_root(&mut forest, "synthetic-db");
    let tables = specs
        .iter()
        .map(|spec| {
            relational::build_table(
                &mut forest,
                root,
                spec.name,
                spec.num_rows,
                spec.num_attrs,
                |_, _| Value::Int(rng.gen_range(0..1_000_000)),
            )
            .expect("synthetic build cannot fail")
        })
        .collect();
    SyntheticDb {
        forest,
        root,
        tables,
    }
}

/// Builds the paper's database combination `{table1 … table_k}`
/// (Table 1(b)); `k` must be 1–4.
pub fn paper_database(k: usize, seed: u64) -> SyntheticDb {
    assert!((1..=PAPER_TABLES.len()).contains(&k), "k must be 1..=4");
    build_database(&PAPER_TABLES[..k], seed)
}

/// Node counts computed from the Table 1(a) shapes, including the root.
///
/// The paper's Table 1(b) lists 36 002 / 66 000 / 88 004 / 118 006; the
/// shapes imply 36 002 / 66 003 / 88 004 / 118 005 — the two disagreements
/// are off by ≤3 and appear to be transcription artifacts in the paper.
/// Our generator matches the shapes exactly.
pub fn paper_node_count(k: usize) -> usize {
    1 + PAPER_TABLES[..k]
        .iter()
        .map(TableSpec::node_count)
        .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_node_counts() {
        assert_eq!(paper_node_count(1), 36_002); // matches paper exactly
        assert_eq!(paper_node_count(2), 66_003); // paper prints 66 000
        assert_eq!(paper_node_count(3), 88_004); // matches paper exactly
        assert_eq!(paper_node_count(4), 118_005); // paper prints 118 006
    }

    #[test]
    fn built_database_matches_counts() {
        for k in 1..=4 {
            let db = paper_database(k, 42);
            assert_eq!(db.node_count(), paper_node_count(k), "k={k}");
            assert_eq!(db.tables.len(), k);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = paper_database(1, 7);
        let b = paper_database(1, 7);
        let cell = a.tables[0].rows[10].cells[3];
        assert_eq!(
            a.forest.node(cell).unwrap().value(),
            b.forest.node(cell).unwrap().value()
        );
        // A different seed yields different data.
        let c = paper_database(1, 8);
        let differs = a.tables[0]
            .rows
            .iter()
            .zip(&c.tables[0].rows)
            .any(|(ra, rc)| {
                ra.cells.iter().zip(&rc.cells).any(|(&ca, &cc)| {
                    a.forest.node(ca).unwrap().value() != c.forest.node(cc).unwrap().value()
                })
            });
        assert!(differs);
    }

    #[test]
    fn table_shapes_match_spec() {
        let db = paper_database(4, 1);
        for (spec, table) in PAPER_TABLES.iter().zip(&db.tables) {
            assert_eq!(table.rows.len(), spec.num_rows);
            assert!(table.rows.iter().all(|r| r.cells.len() == spec.num_attrs));
            assert_eq!(table.node_count(), spec.node_count());
        }
    }
}
