//! # tep-workloads
//!
//! Synthetic workload generators reproducing the paper's experimental setup
//! (§5.1, Tables 1–2):
//!
//! * [`synthetic`] — the four all-integer tables of Table 1(a) and their
//!   database combinations of Table 1(b) (36 002 … 118 005 nodes).
//! * [`ops`] — complex-operation generators for Experimental Setups **A**
//!   (pure cell-update sweeps), **B** (all-deletes / all-inserts /
//!   all-updates), and **C** (mixed-ratio batches of 500 operations).
//! * [`large`] — the §5.2 larger-than-memory `Title` table (18.9M rows,
//!   56.9M nodes at paper scale), generated lazily for streaming hashing.
//! * [`lineage`] — a clustered, seeded lineage DAG (insert/update/aggregate
//!   mix with faithful seq numbering, dummy signatures) for the `tep-query`
//!   benchmark at millions of records.
//! * [`crash`] — recorded append/sync schedules the crash-consistency
//!   harness replays under fault injection.
//! * [`chaos`] — seeded, transport-agnostic fault schedules the network
//!   chaos harness sweeps (cut/flip/stall/reset at every frame).
//!
//! All generation is seeded and deterministic, so experiment runs are
//! reproducible bit-for-bit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod crash;
pub mod large;
pub mod lineage;
pub mod ops;
pub mod synthetic;

pub use chaos::{schedule, seeds_from_env, ChaosPoint, WireFault, DEFAULT_CHAOS_SEEDS};
pub use crash::{CrashOp, CrashWorkload};
pub use large::{stream_title_database, TitleHashResult, TitleRowIter, PAPER_TITLE_ROWS};
pub use lineage::{build_lineage_db, LineageDag, LINEAGE_CLUSTER_OPS};
pub use ops::{
    setup_a_updates, setup_b_delete_rows, setup_b_insert_rows, setup_b_update_cells, setup_c_mix,
    ComplexOp, MixSpec, TablePlan, PAPER_C_MIXES,
};
pub use synthetic::{
    build_database, paper_database, paper_node_count, SyntheticDb, TableSpec, PAPER_TABLES,
};
