//! Seeded lineage-DAG generator for the query benchmark (`repro --query`).
//!
//! Produces a provenance store whose record log *shape* matches what the
//! paper's multi-participant setting accumulates over time — a mix of
//! inserts, update chains, and aggregations that weave objects into a
//! DAG — at whatever scale the benchmark asks for (the headline run is
//! one million records). The records are structurally faithful (seq-id
//! numbering rules, input chaining via `prev_seq`, canonical encoding)
//! but carry **dummy signatures**: the bench measures index build and
//! traversal throughput of `tep-query`, not RSA, and a 1M-record DAG
//! with real 1024-bit signatures would take hours to mint.
//!
//! ## Clustered shape
//!
//! Derivations are grouped into *clusters* of at most
//! [`LINEAGE_CLUSTER_OPS`] records: every update or aggregation draws its
//! inputs from the objects created in the current cluster only. This
//! mirrors real provenance workloads (each dataset has its own bounded
//! derivation history; unrelated datasets do not feed each other) and
//! guarantees that any object's backward closure fits a query engine's
//! slice cap, so the benchmark exercises the *index* at millions of
//! records while each answer stays a provable, bounded slice.
//!
//! Participants scale with the log (about one per thousand records) so
//! per-participant audit slices also stay bounded at any scale.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::Arc;
use tep_core::{InputRef, ProvenanceRecord, RecordKind};
use tep_crypto::pki::ParticipantId;
use tep_model::ObjectId;
use tep_storage::ProvenanceDb;

/// Records per derivation cluster. Backward closures (and therefore
/// lineage/ancestor slices) are bounded by this.
pub const LINEAGE_CLUSTER_OPS: usize = 48;

/// A generated lineage DAG and the query targets worth benchmarking.
pub struct LineageDag {
    /// The record store, all records appended in generation order.
    pub db: Arc<ProvenanceDb>,
    /// Total records appended.
    pub records: u64,
    /// Distinct objects created.
    pub objects: u64,
    /// Participants the records are attributed to (ids `1..=participants`).
    pub participants: u64,
    /// The closing object of up to 1024 evenly sampled clusters — targets
    /// whose backward closure spans their whole cluster, i.e. the
    /// worst-case (deepest) lineage queries this DAG can pose.
    pub targets: Vec<ObjectId>,
    /// The *first* object of the same sampled clusters — the objects most
    /// downstream derivation flowed from, i.e. the worst-case *forward*
    /// (descendants) queries.
    pub roots: Vec<ObjectId>,
}

fn dummy_bytes(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut b = vec![0u8; len];
    rng.fill_bytes(&mut b);
    b
}

/// Builds a `records`-record lineage DAG, deterministic in `seed`.
///
/// The operation mix is roughly 30% insert / 50% update / 20% aggregate
/// (of 2–4 existing objects), with seq ids following the paper's §2.1
/// numbering: inserts start at 0, updates advance the chain by one, and
/// an aggregate's record is numbered one past the largest input seq.
pub fn build_lineage_db(records: u64, seed: u64) -> LineageDag {
    let mut rng = StdRng::seed_from_u64(seed);
    let participants = (records / 1000).max(4);
    let db = Arc::new(ProvenanceDb::in_memory());

    let mut next_oid = 0u64;
    // Objects of the current cluster, as (oid, head seq).
    let mut cluster: Vec<(ObjectId, u64)> = Vec::new();
    let mut ops_in_cluster = 0usize;
    let mut last_created = ObjectId(0);
    let mut last_agg: Option<ObjectId> = None;
    let mut closers: Vec<ObjectId> = Vec::new();
    let mut firsts: Vec<ObjectId> = Vec::new();

    for _ in 0..records {
        if ops_in_cluster >= LINEAGE_CLUSTER_OPS {
            // Prefer the cluster's last aggregate — the deepest lineage the
            // cluster can pose — over a trailing plain insert.
            closers.push(last_agg.take().unwrap_or(last_created));
            firsts.push(cluster[0].0);
            cluster.clear();
            ops_in_cluster = 0;
        }
        ops_in_cluster += 1;
        let who = ParticipantId(1 + rng.gen_range(0..participants));
        let roll: u32 = rng.gen_range(0..100);

        let (oid, seq, kind, inputs) = if roll < 30 || cluster.len() < 2 {
            next_oid += 1;
            let oid = ObjectId(next_oid);
            cluster.push((oid, 0));
            last_created = oid;
            (oid, 0, RecordKind::Insert, Vec::new())
        } else if roll < 80 {
            let i = rng.gen_range(0..cluster.len());
            let (oid, head) = cluster[i];
            cluster[i].1 = head + 1;
            let input = InputRef {
                oid,
                hash: dummy_bytes(&mut rng, 32),
                prev_seq: Some(head),
            };
            (oid, head + 1, RecordKind::Update, vec![input])
        } else {
            // Aggregate 2–4 distinct cluster objects into a new one.
            let n = rng.gen_range(2..5usize).min(cluster.len());
            let mut picked: Vec<usize> = Vec::with_capacity(n);
            while picked.len() < n {
                let i = rng.gen_range(0..cluster.len());
                if !picked.contains(&i) {
                    picked.push(i);
                }
            }
            let mut inputs: Vec<InputRef> = picked
                .iter()
                .map(|&i| {
                    let (oid, head) = cluster[i];
                    InputRef {
                        oid,
                        hash: dummy_bytes(&mut rng, 32),
                        prev_seq: Some(head),
                    }
                })
                .collect();
            inputs.sort_by_key(|i| i.oid);
            // §2.1: one past the largest input seq.
            let seq = 1 + inputs.iter().filter_map(|i| i.prev_seq).max().unwrap_or(0);
            next_oid += 1;
            let oid = ObjectId(next_oid);
            cluster.push((oid, seq));
            last_created = oid;
            last_agg = Some(oid);
            (oid, seq, RecordKind::Aggregate, inputs)
        };

        let rec = ProvenanceRecord {
            seq_id: seq,
            participant: who,
            kind,
            inputs,
            output_oid: oid,
            output_hash: dummy_bytes(&mut rng, 32),
            annotation: Vec::new(),
            // Sized like a 1024-bit RSA signature, cryptographically dummy.
            checksum: dummy_bytes(&mut rng, 128),
        };
        db.append(rec.to_stored()).expect("in-memory append");
    }
    if ops_in_cluster > 0 {
        closers.push(last_agg.take().unwrap_or(last_created));
        firsts.push(cluster[0].0);
    }

    // Sample at most 1024 clusters, evenly across the log's life.
    let step = (closers.len() / 1024).max(1);
    let sample = |v: &[ObjectId]| v.iter().copied().step_by(step).take(1024).collect();

    LineageDag {
        db,
        records,
        objects: next_oid,
        participants,
        targets: sample(&closers),
        roots: sample(&firsts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = build_lineage_db(3000, 42);
        let b = build_lineage_db(3000, 42);
        assert_eq!(a.records, 3000);
        assert_eq!(a.objects, b.objects);
        let (ra, rb) = (a.db.all_records(), b.db.all_records());
        assert_eq!(ra, rb);
        // A different seed produces a different log.
        let c = build_lineage_db(3000, 43);
        assert_ne!(ra, c.db.all_records());
    }

    #[test]
    fn records_decode_and_follow_seq_rules() {
        let dag = build_lineage_db(2000, 7);
        let mut heads: std::collections::HashMap<ObjectId, u64> = Default::default();
        for stored in dag.db.all_records() {
            let rec = ProvenanceRecord::from_stored(&stored).expect("decodable");
            match rec.kind {
                RecordKind::Insert => assert_eq!(rec.seq_id, 0),
                RecordKind::Update => {
                    let prev = rec.inputs[0].prev_seq.unwrap();
                    assert_eq!(rec.seq_id, prev + 1);
                    assert_eq!(heads[&rec.output_oid], prev);
                }
                RecordKind::Aggregate => {
                    let max = rec.inputs.iter().filter_map(|i| i.prev_seq).max().unwrap();
                    assert_eq!(rec.seq_id, max + 1);
                }
            }
            heads.insert(rec.output_oid, rec.seq_id);
        }
        assert!(!dag.targets.is_empty());
        assert!(dag.participants >= 4);
    }

    #[test]
    fn cluster_bound_caps_backward_closures() {
        use tep_core::slice::{backward_closure, QueryBounds};
        let dag = build_lineage_db(4000, 11);
        for &t in dag.targets.iter().take(16) {
            let latest = dag.db.latest_for(t).unwrap();
            let closure = backward_closure(
                &QueryBounds::default(),
                (t, latest.seq_id),
                LINEAGE_CLUSTER_OPS + 1,
                |oid, seq| {
                    dag.db
                        .records_for(oid)
                        .iter()
                        .find(|r| r.seq_id == seq)
                        .and_then(|r| ProvenanceRecord::from_stored(r).ok())
                },
            );
            assert!(
                !closure.truncated,
                "closure of {t:?} exceeds the cluster bound"
            );
        }
    }
}
